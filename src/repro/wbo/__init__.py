"""Weighted Boolean Optimization front end (soft constraints).

Public surface:

* :class:`SoftConstraint`, :class:`WBOInstance` — the modelling layer.
* :func:`compile_to_pbo`, :func:`decode` — the relaxation-variable
  reduction to PBO and its inverse.
* :class:`WBOSolver`, :func:`solve_wbo` — exact solving, either by
  direct compilation or by the session-driven unsat-core-guided loop.
"""

from .model import (
    CompiledWBO,
    SoftConstraint,
    WBOInstance,
    compile_to_pbo,
    decode,
)
from .solver import MODES, WBOSolver, solve_wbo

__all__ = [
    "CompiledWBO",
    "MODES",
    "SoftConstraint",
    "WBOInstance",
    "WBOSolver",
    "compile_to_pbo",
    "decode",
    "solve_wbo",
]
