"""WBO solving: direct PBO compilation and unsat-core-guided search.

Two modes, both exact:

``direct``
    Compile to PBO (:func:`repro.wbo.model.compile_to_pbo`) and run one
    branch-and-bound solve.  The relaxation variables ride the paper's
    full lower-bounding machinery — cost pruning on the relaxation
    variables *is* the violation-cost bound.

``core-guided``
    The Fu&Malik-style loop of "Algorithms for Weighted Boolean
    Optimization", driven by :class:`repro.incremental.SolverSession`:
    assume every relaxation variable false and call ``solve_under``;
    each UNSAT answer returns an assumption core, whose soft constraints
    get relaxed while the minimum core weight accrues to a lower bound
    (cores are disjoint, so the bound is sound).  Once a model exists,
    the bound either certifies it optimal or a final exact solve —
    warm-started with the incumbent cost — closes the gap.  Learned
    constraints, activity and bound caches persist across the loop's
    calls, which is precisely the session workload.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.options import SolverOptions, UnsupportedOptionError
from ..core.result import (
    OPTIMAL,
    SATISFIABLE,
    SolveResult,
    UNKNOWN,
    UNSATISFIABLE,
)
from ..core.solver import BsoloSolver
from ..core.stats import SolverStats
from ..incremental import SolverSession
from .model import CompiledWBO, WBOInstance, compile_to_pbo, decode

#: Recognized ``mode=`` values.
MODES = ("direct", "core-guided")


class WBOSolver:
    """Exact solver for a :class:`~repro.wbo.model.WBOInstance`."""

    name = "wbo"

    def __init__(
        self,
        wbo: WBOInstance,
        options: Optional[SolverOptions] = None,
        mode: str = "direct",
    ):
        if mode not in MODES:
            raise ValueError(
                "unknown WBO mode %r (choose from %s)" % (mode, ", ".join(MODES))
            )
        self._wbo = wbo
        self._options = options or SolverOptions()
        self._mode = mode
        self._compiled: CompiledWBO = compile_to_pbo(wbo)
        self.name = "wbo-" + ("core" if mode == "core-guided" else "direct")
        #: Unsat cores found by the core-guided loop (soft index tuples).
        self.cores: List[Tuple[int, ...]] = []

    # ------------------------------------------------------------------
    def solve(self) -> SolveResult:
        """Minimize the total violation weight; see the module docstring
        for the two strategies."""
        if self._mode == "direct":
            return self._solve_direct()
        return self._solve_core_guided()

    # ------------------------------------------------------------------
    def _solve_direct(self) -> SolveResult:
        result = BsoloSolver(self._compiled.instance, self._options).solve()
        return self._package(result, result.stats)

    def _solve_core_guided(self) -> SolveResult:
        compiled = self._compiled
        session = SolverSession(compiled.instance, self._options)
        soft_of = {relax: index for index, relax in compiled.relax_var.items()}
        active: Set[int] = set(compiled.relax_var)  # not-yet-relaxed softs
        lower = compiled.base_cost
        stats = SolverStats()
        best: Optional[SolveResult] = None
        while True:
            assumptions = [
                -compiled.relax_var[index] for index in sorted(active)
            ]
            result = session.solve_under(assumptions)
            self._merge_stats(stats, result.stats)
            if result.status == UNKNOWN:
                # Budget expired mid-loop: report the incumbent if any.
                return self._package(best if best is not None else result, stats)
            if result.status == UNSATISFIABLE:
                core = result.core or ()
                core_softs = tuple(
                    soft_of[-literal] for literal in core if -literal in soft_of
                )
                if not core_softs:
                    # Contradiction independent of the softs: the hard
                    # part (or the top bound) is infeasible.
                    return SolveResult(
                        UNSATISFIABLE, stats=stats, solver_name=self.name
                    )
                self.cores.append(core_softs)
                active.difference_update(core_softs)
                # Disjoint cores: each one forces at least its cheapest
                # member to be violated.
                lower += min(
                    self._wbo.soft[index].weight for index in core_softs
                )
                continue
            # A model satisfying every still-active soft constraint.
            best = result
            cost = result.best_cost
            if cost is not None and cost <= lower:
                return self._package(best, stats)  # bound certifies it
            final = session.solve_under((), upper_bound=cost)
            self._merge_stats(stats, final.stats)
            if final.best_assignment is None:
                # The exact pass only *confirmed* the incumbent (its
                # witnessing model is the one we already hold).
                final = SolveResult(
                    final.status if final.status != UNSATISFIABLE else OPTIMAL,
                    best_cost=cost,
                    best_assignment=best.best_assignment,
                    stats=final.stats,
                    solver_name=final.solver_name,
                )
            return self._package(final, stats)

    # ------------------------------------------------------------------
    def _merge_stats(self, total: SolverStats, call: SolverStats) -> None:
        """Accumulate the headline counters across session calls."""
        total.decisions += call.decisions
        total.logic_conflicts += call.logic_conflicts
        total.bound_conflicts += call.bound_conflicts
        total.propagations += call.propagations
        total.elapsed += call.elapsed

    def _package(self, result: SolveResult, stats: SolverStats) -> SolveResult:
        """Translate a PBO result on the compiled instance to WBO shape:
        model projected to the original variables, ``cost`` re-checked
        against the original softs, ``violated_soft`` filled in."""
        if result.best_assignment is None:
            return SolveResult(
                result.status,
                best_cost=result.best_cost,
                stats=stats,
                solver_name=self.name,
            )
        model, cost, violated = decode(self._compiled, result.best_assignment)
        status = result.status
        if status == SATISFIABLE:
            status = OPTIMAL  # constant compiled objective: cost 0 proven
        return SolveResult(
            status,
            best_cost=cost,
            best_assignment=model,
            stats=stats,
            solver_name=self.name,
            violated_soft=violated,
        )


def solve_wbo(
    wbo: WBOInstance,
    options: Optional[SolverOptions] = None,
    mode: str = "direct",
) -> SolveResult:
    """Convenience wrapper: build a :class:`WBOSolver` and run it."""
    return WBOSolver(wbo, options, mode=mode).solve()
