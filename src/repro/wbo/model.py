"""Weighted Boolean Optimization instances and their PBO compilation.

WBO (Manquinho, Marques-Silva & Planes, "Algorithms for Weighted
Boolean Optimization") generalizes MaxSAT and PBO: constraints are
*hard* (must hold) or *soft* (each with a violation weight), and the
goal is a hard-feasible assignment minimizing the total weight of
violated soft constraints.

The classical reduction to PBO relaxes each soft constraint
``sum a_j l_j >= b`` into ``sum a_j l_j + b r >= b`` with a fresh
*relaxation variable* ``r`` (setting ``r`` satisfies the constraint
trivially) and minimizes ``sum w_i r_i``.  :func:`compile_to_pbo`
performs that construction; :func:`decode` maps a PBO model back to
violated soft indices by re-checking the *original* soft constraints —
the relaxation variables over-approximate violation (``r_i`` may be 1
while the constraint happens to hold), so the decoded cost can only be
confirmed, never trusted from ``r`` values alone.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..pb.constraints import Constraint
from ..pb.instance import PBInstance
from ..pb.objective import Objective


class SoftConstraint:
    """A constraint that may be violated at ``weight`` cost."""

    __slots__ = ("constraint", "weight")

    def __init__(self, constraint: Constraint, weight: int):
        if weight <= 0:
            raise ValueError("soft-constraint weight must be positive")
        self.constraint = constraint
        self.weight = weight

    def __repr__(self) -> str:
        return "SoftConstraint(%r, weight=%d)" % (self.constraint, self.weight)


class WBOInstance:
    """Hard constraints + weighted soft constraints over ``1..n``.

    ``top`` (from the ``.wbo`` header's ``soft: <top> ;`` line) is an
    exclusive cost bound: assignments whose total violation weight
    reaches ``top`` are unacceptable.  ``None`` means unbounded.
    """

    def __init__(
        self,
        hard: Sequence[Constraint],
        soft: Sequence[SoftConstraint],
        num_variables: Optional[int] = None,
        top: Optional[int] = None,
        variable_names: Optional[Mapping[int, str]] = None,
    ):
        self.hard: Tuple[Constraint, ...] = tuple(hard)
        self.soft: Tuple[SoftConstraint, ...] = tuple(soft)
        max_var = 0
        for constraint in self.hard:
            for var in constraint.variables:
                max_var = max(max_var, var)
        for entry in self.soft:
            for var in entry.constraint.variables:
                max_var = max(max_var, var)
        if num_variables is not None:
            if num_variables < max_var:
                raise ValueError(
                    "num_variables=%d but variable %d appears"
                    % (num_variables, max_var)
                )
            max_var = num_variables
        self.num_variables = max_var
        self.top = top
        self.variable_names: Dict[int, str] = dict(variable_names or {})

    # ------------------------------------------------------------------
    @property
    def total_weight(self) -> int:
        """Sum of all soft weights (the worst feasible cost + slack)."""
        return sum(entry.weight for entry in self.soft)

    def cost_of(self, assignment: Mapping[int, int]) -> int:
        """Total weight of the soft constraints ``assignment`` violates."""
        return sum(
            entry.weight
            for entry in self.soft
            if not entry.constraint.is_satisfied_by(assignment)
        )

    def violated_soft(self, assignment: Mapping[int, int]) -> Tuple[int, ...]:
        """Indices (into ``self.soft``) of violated soft constraints."""
        return tuple(
            index
            for index, entry in enumerate(self.soft)
            if not entry.constraint.is_satisfied_by(assignment)
        )

    def __repr__(self) -> str:
        return "WBOInstance(hard=%d, soft=%d, vars=%d)" % (
            len(self.hard),
            len(self.soft),
            self.num_variables,
        )


class CompiledWBO:
    """The PBO image of a WBO instance plus the decoding metadata."""

    __slots__ = ("instance", "relax_var", "base_cost", "wbo")

    def __init__(
        self,
        instance: PBInstance,
        relax_var: Dict[int, int],
        base_cost: int,
        wbo: WBOInstance,
    ):
        #: The compiled :class:`PBInstance` (minimize total violation).
        self.instance = instance
        #: soft index -> relaxation variable (absent for tautological
        #: or individually unsatisfiable softs, which need none).
        self.relax_var = relax_var
        #: Weight of softs that are unsatisfiable on their own — paid by
        #: every assignment, carried as the objective offset.
        self.base_cost = base_cost
        self.wbo = wbo


def compile_to_pbo(wbo: WBOInstance) -> CompiledWBO:
    """Relaxation-variable reduction of WBO to PBO (module docstring).

    Tautological softs cost nothing and get no relaxation variable;
    individually unsatisfiable softs cost their weight unconditionally
    (folded into the objective offset).  A finite ``top`` becomes a hard
    cardinality-style bound on the relaxation variables.
    """
    constraints: List[Constraint] = list(wbo.hard)
    relax_var: Dict[int, int] = {}
    costs: Dict[int, int] = {}
    base_cost = 0
    next_var = wbo.num_variables + 1
    for index, entry in enumerate(wbo.soft):
        constraint = entry.constraint
        if constraint.is_tautology:
            continue
        if constraint.is_unsatisfiable:
            base_cost += entry.weight
            continue
        relax = next_var
        next_var += 1
        relax_var[index] = relax
        costs[relax] = entry.weight
        constraints.append(
            Constraint.greater_equal(
                list(constraint.terms) + [(constraint.rhs, relax)],
                constraint.rhs,
            )
        )
    if wbo.top is not None:
        budget = wbo.top - 1 - base_cost
        if budget < 0:
            # Even the unavoidable cost breaks the bound: encode plain
            # unsatisfiability (x1 and not-x1 style empty clause pair).
            constraints.append(Constraint.clause([1]))
            constraints.append(Constraint.clause([-1]))
        else:
            weight_terms = [
                (wbo.soft[index].weight, relax_var[index])
                for index in relax_var
            ]
            if weight_terms:
                constraints.append(
                    Constraint.less_equal(weight_terms, budget)
                )
    instance = PBInstance(
        constraints,
        Objective(costs, offset=base_cost),
        num_variables=max(wbo.num_variables, next_var - 1),
        variable_names=wbo.variable_names,
    )
    return CompiledWBO(instance, relax_var, base_cost, wbo)


def decode(
    compiled: CompiledWBO, assignment: Mapping[int, int]
) -> Tuple[Dict[int, int], int, Tuple[int, ...]]:
    """Project a PBO model back to WBO terms.

    Returns ``(model, cost, violated)``: the assignment restricted to
    the original variables, its total violation weight, and the violated
    soft indices — all computed against the *original* soft constraints,
    never trusted from the relaxation variables.
    """
    wbo = compiled.wbo
    model = {
        var: value
        for var, value in assignment.items()
        if var <= wbo.num_variables
    }
    violated = wbo.violated_soft(model)
    cost = sum(wbo.soft[index].weight for index in violated)
    return model, cost, violated
