"""Covering-problem reductions (paper's synthesis-set simplifications)."""

from .reductions import ReductionResult, reduce_covering

__all__ = ["ReductionResult", "reduce_covering"]
