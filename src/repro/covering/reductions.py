"""Classical covering-matrix reductions (paper references [5, 7, 15]).

"We also used simplification techniques described in [7, 15] in the
synthesis benchmark set."  When every constraint is a clause the
instance is a (binate) covering problem and the classical reductions of
Coudert / Villa et al. apply:

* **essential clause**: a unit clause forces its literal;
* **clause subsumption**: a clause whose literal set contains another
  clause's is redundant and can be dropped (duplicates too);
* **pure polarity**: a variable occurring only complemented can be fixed
  to 0 (satisfies every occurrence, costs nothing); one occurring only
  positively *with zero cost* can be fixed to 1;
* **column dominance** (unate columns): if variable ``j`` covers every
  clause ``k`` covers, both occur only positively, and
  ``cost(j) <= cost(k)``, then some optimal solution avoids ``k`` —
  fix ``x_k = 0``.  (Cost ties break by index to avoid symmetric
  elimination.)

All rules preserve *at least one* optimal solution (and satisfiability),
the standard guarantee for branch-and-bound preprocessing of covering
problems.  The reducer iterates to a fixed point under substitution of
the forced assignments.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..pb.instance import PBInstance


class ReductionResult:
    """Outcome of covering reduction."""

    __slots__ = ("forced", "dropped_indices", "rounds", "conflict")

    def __init__(
        self,
        forced: Dict[int, int],
        dropped_indices: Set[int],
        rounds: int,
        conflict: bool,
    ):
        #: Variable -> forced 0/1 value.
        self.forced = forced
        #: Indices (into ``instance.constraints``) of redundant clauses.
        self.dropped_indices = dropped_indices
        #: Fixed-point iterations used.
        self.rounds = rounds
        #: True when the reductions proved the instance unsatisfiable
        #: (complementary unit clauses).
        self.conflict = conflict

    @property
    def forced_literals(self) -> List[int]:
        """The forced assignments as signed literals, sorted by variable."""
        return [var if value else -var for var, value in sorted(self.forced.items())]

    def __repr__(self) -> str:
        return "ReductionResult(forced=%d, dropped=%d, rounds=%d)" % (
            len(self.forced),
            len(self.dropped_indices),
            self.rounds,
        )


def reduce_covering(instance: PBInstance, max_rounds: int = 10) -> ReductionResult:
    """Apply the covering reductions to a clause-only instance.

    Raises :class:`ValueError` when some constraint is not a clause —
    callers should check :attr:`PBInstance.is_covering` first.
    """
    if not instance.is_covering:
        raise ValueError("covering reductions require a clause-only instance")
    costs = instance.objective.costs

    # live clause state: index -> set of literals (None = dropped/satisfied)
    clauses: List[Optional[Set[int]]] = [
        set(constraint.literals) for constraint in instance.constraints
    ]
    forced: Dict[int, int] = {}
    dropped: Set[int] = set()
    conflict = False

    def assign(literal: int) -> bool:
        """Record a forced literal; returns False on contradiction."""
        var = literal if literal > 0 else -literal
        value = 1 if literal > 0 else 0
        previous = forced.get(var)
        if previous is not None:
            return previous == value
        forced[var] = value
        for index, clause in enumerate(clauses):
            if clause is None:
                continue
            if literal in clause:
                clauses[index] = None  # satisfied; not "dropped": satisfied
            elif -literal in clause:
                clause.discard(-literal)
        return True

    rounds = 0
    changed = True
    while changed and rounds < max_rounds and not conflict:
        rounds += 1
        changed = False

        # 1. empty clauses = contradiction; unit clauses force literals
        for index, clause in enumerate(clauses):
            if clause is None:
                continue
            if not clause:
                conflict = True
                break
            if len(clause) == 1:
                literal = next(iter(clause))
                if not assign(literal):
                    conflict = True
                    break
                changed = True
        if conflict:
            break

        # 2. subsumption / duplicates
        live = [
            (index, frozenset(clause))
            for index, clause in enumerate(clauses)
            if clause is not None
        ]
        live.sort(key=lambda item: len(item[1]))
        kept: List[Tuple[int, FrozenSet[int]]] = []
        for index, literals in live:
            redundant = any(
                small <= literals for _, small in kept if len(small) <= len(literals)
            )
            if redundant:
                clauses[index] = None
                dropped.add(index)
                changed = True
            else:
                kept.append((index, literals))

        # 3. polarity analysis
        positive_rows: Dict[int, Set[int]] = {}
        negative_rows: Dict[int, Set[int]] = {}
        for index, clause in enumerate(clauses):
            if clause is None:
                continue
            for literal in clause:
                var = abs(literal)
                target = positive_rows if literal > 0 else negative_rows
                target.setdefault(var, set()).add(index)
        for var in list(positive_rows.keys() | negative_rows.keys()):
            if var in forced:
                continue
            pos = positive_rows.get(var, set())
            neg = negative_rows.get(var, set())
            if not pos and neg:
                # only complemented occurrences: 0 satisfies them for free
                if not assign(-var):
                    conflict = True
                    break
                changed = True
            elif pos and not neg and costs.get(var, 0) == 0:
                if not assign(var):
                    conflict = True
                    break
                changed = True
        if conflict:
            break

        # 4. column dominance among unate-positive variables
        unate = [
            var
            for var in positive_rows
            if var not in negative_rows and var not in forced
        ]
        unate.sort()
        for k in unate:
            rows_k = positive_rows[k]
            if not rows_k:
                continue
            cost_k = costs.get(k, 0)
            for j in unate:
                if j == k or j in forced:
                    continue
                cost_j = costs.get(j, 0)
                if cost_j > cost_k:
                    continue
                if cost_j == cost_k and j > k:
                    continue  # break ties by index, avoid mutual elimination
                if rows_k <= positive_rows[j]:
                    if not assign(-k):
                        conflict = True
                    changed = True
                    break
            if conflict:
                break

    return ReductionResult(forced, dropped, rounds, conflict)
