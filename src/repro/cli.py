"""Command-line interface: ``bsolo [options] instance.opb``.

Solves an OPB file with any registered solver configuration and prints a
result summary.  Mirrors the way the original bsolo prototype was driven
in the paper's experiments.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments.runner import SOLVER_NAMES, run_one
from .pb.opb import parse_file


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bsolo",
        description=(
            "Pseudo-boolean optimizer with lower bounding "
            "(reproduction of Manquinho & Marques-Silva, DATE 2005)"
        ),
    )
    parser.add_argument("instance", help="path to an .opb file")
    parser.add_argument(
        "--solver",
        default="bsolo-lpr",
        choices=SOLVER_NAMES,
        help="solver configuration (default: bsolo-lpr)",
    )
    parser.add_argument(
        "--time-limit",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget (default: unlimited)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print search statistics",
    )
    parser.add_argument(
        "--model",
        action="store_true",
        help="print the best assignment as a literal list",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    instance = parse_file(args.instance)
    record = run_one(args.solver, instance, args.instance, args.time_limit)
    result = record.result

    print("s %s" % result.status.upper())
    if result.best_cost is not None:
        print("o %d" % result.best_cost)
    if args.model and result.best_assignment:
        literals = [
            ("x%d" % var) if value else ("-x%d" % var)
            for var, value in sorted(result.best_assignment.items())
        ]
        print("v " + " ".join(literals))
    print("c time %.3fs" % record.seconds)
    if args.stats:
        for key, value in sorted(result.stats.as_dict().items()):
            print("c %s %s" % (key, value))
    return 0 if result.solved else 1


if __name__ == "__main__":
    sys.exit(main())
