"""Command-line interface: ``bsolo [options] instance.opb``.

Solves an OPB file with any registered solver configuration and prints a
result summary.  Mirrors the way the original bsolo prototype was driven
in the paper's experiments, plus the observability surface: ``--trace``
writes a JSONL search-event trace, ``--profile`` prints the per-phase
wall-time breakdown, ``--stats-json`` persists machine-readable stats,
and ``--progress`` prints periodic ``c``-prefixed heartbeats.

``--proof FILE.pbp`` makes the run *certifying*: the solver records a
cutting-planes derivation of its answer that the independent checker
(``python -m repro certify instance.opb FILE.pbp``, implemented by
:func:`certify_main`) can replay without trusting any search code.  See
``docs/PROOFS.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from .api import available_solvers, solver_descriptions
from .engine import available_engines, engine_descriptions
from .experiments.runner import run_one
from .obs.report import format_profile
from .obs.trace import JsonlTracer
from .pb.opb import parse_file


def build_parser() -> argparse.ArgumentParser:
    """The ``bsolo`` argument parser (solver list in the epilog)."""
    solver_lines = "\n".join(
        "  %-16s %s" % (name, description)
        for name, description in solver_descriptions().items()
    )
    engine_lines = "\n".join(
        "  %-16s %s" % (name, description)
        for name, description in engine_descriptions().items()
    )
    parser = argparse.ArgumentParser(
        prog="bsolo",
        description=(
            "Pseudo-boolean optimizer with lower bounding "
            "(reproduction of Manquinho & Marques-Silva, DATE 2005)"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="registered solvers:\n%s\n\npropagation backends:\n%s\n\n"
               "Table 1 aliases: pbs, galena, cplex, scherzo"
               % (solver_lines, engine_lines),
    )
    parser.add_argument(
        "instance", help="path to an .opb (or, with --wbo, .wbo) file"
    )
    parser.add_argument(
        "--wbo",
        action="store_true",
        help=(
            "treat the instance as a WBO soft-constraint file and "
            "minimize the total violation weight (implied by a .wbo "
            "extension)"
        ),
    )
    parser.add_argument(
        "--wbo-mode",
        default="direct",
        choices=["direct", "core-guided"],
        metavar="MODE",
        help=(
            "WBO strategy: 'direct' PBO compilation or the session-driven "
            "unsat-'core-guided' loop (default: direct)"
        ),
    )
    parser.add_argument(
        "--solver",
        default="bsolo-lpr",
        choices=available_solvers(include_aliases=True),
        metavar="NAME",
        help="registered solver name (default: bsolo-lpr); see the list below",
    )
    parser.add_argument(
        "--portfolio",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run an N-worker parallel portfolio (diversified solver "
            "configurations with incumbent exchange) instead of --solver"
        ),
    )
    parser.add_argument(
        "--propagation",
        default="counter",
        choices=available_engines(),
        metavar="ENGINE",
        help=(
            "propagation backend (default: counter); see the list below"
        ),
    )
    parser.add_argument(
        "--time-limit",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget (default: unlimited)",
    )
    parser.add_argument(
        "--lb-schedule",
        default="static",
        choices=["static", "adaptive"],
        metavar="POLICY",
        help=(
            "bound-call scheduling policy (bsolo-* solvers): 'static' "
            "bounds every lb-frequency-th node, 'adaptive' tunes the "
            "interval from the recent prune rate (default: static)"
        ),
    )
    parser.add_argument(
        "--cold-bounds",
        action="store_true",
        help=(
            "disable the incremental bounders (trail-delta MIS cache, "
            "warm-started simplex) and recompute every bound from scratch"
        ),
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print search statistics",
    )
    parser.add_argument(
        "--stats-json",
        metavar="FILE",
        default=None,
        help="write status, cost and full stats as one JSON object",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE.jsonl",
        default=None,
        help=(
            "write a JSONL search-event trace (bsolo-* and pbs solvers; "
            "one event per line, run-header first, result last)"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect per-phase wall times and print the profile table",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print a 'c progress' line every N conflicts (bsolo-* solvers)",
    )
    parser.add_argument(
        "--progress-interval",
        type=int,
        default=1000,
        metavar="N",
        help="conflicts between progress reports (default: 1000)",
    )
    parser.add_argument(
        "--model",
        action="store_true",
        help="print the best assignment as a literal list",
    )
    parser.add_argument(
        "--proof",
        metavar="FILE.pbp",
        default=None,
        help=(
            "write a checkable cutting-planes proof of the answer "
            "(bsolo-* solvers); verify it afterwards with "
            "'python -m repro certify INSTANCE FILE.pbp'"
        ),
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help=(
            "collect solver metrics (counters/gauges/histograms) and "
            "write the text exposition to FILE ('-' for stdout as "
            "c-prefixed lines); with --portfolio the workers' snapshots "
            "are merged"
        ),
    )
    parser.add_argument(
        "--hotspot",
        metavar="FILE",
        default=None,
        help=(
            "profile the solve with the per-phase hotspot profiler, "
            "write collapsed stacks (flamegraph input) to FILE and print "
            "the top self-time table (single-solver runs only)"
        ),
    )
    return parser


def _format_stat(value: Any) -> str:
    """Deterministic rendering: floats always get 6 decimals."""
    if isinstance(value, float):
        return "%.6f" % value
    return str(value)


def _print_stats(stats: Dict[str, Any], prefix: str = "") -> None:
    """Flatten nested stat dicts into sorted ``c key value`` lines."""
    for key, value in sorted(stats.items()):
        name = prefix + key
        if isinstance(value, dict):
            _print_stats(value, prefix=name + ".")
            continue
        print("c %s %s" % (name, _format_stat(value)))


def _print_progress(stats, best, lower) -> None:
    print(
        "c progress conflicts=%d decisions=%d best=%s lower=%s"
        % (
            stats.conflicts,
            stats.decisions,
            "-" if best is None else best,
            "-" if lower is None else lower,
        )
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Solve one OPB instance; returns 0 when the run finished solved."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.progress_interval < 1:
        parser.error("--progress-interval must be >= 1")
    if args.portfolio is not None and args.portfolio < 1:
        parser.error("--portfolio must be >= 1")
    if args.portfolio is not None and args.hotspot:
        parser.error(
            "--hotspot is not supported with --portfolio (the profiler "
            "cannot cross the worker process boundary)"
        )
    if args.proof and args.portfolio is not None:
        parser.error(
            "--proof is not supported with --portfolio (proof sinks cannot "
            "cross the worker process boundary)"
        )
    if args.proof and not args.solver.startswith("bsolo"):
        parser.error(
            "--proof requires a bsolo-* solver (solver %r does not log "
            "derivations)" % args.solver
        )
    if args.wbo or args.instance.endswith(".wbo"):
        return _wbo_main(parser, args)
    instance = parse_file(args.instance)

    registry = None
    if args.metrics:
        from .obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
    hotspot = None

    if args.portfolio is not None:
        import time as _time

        from .portfolio import PortfolioSolver

        solver = PortfolioSolver(
            instance, workers=args.portfolio, time_limit=args.time_limit,
            trace_path=args.trace, metrics=registry,
        )
        started = _time.monotonic()
        result = solver.solve()
        seconds = _time.monotonic() - started
        solver_label = "portfolio-%d" % args.portfolio
        print("c portfolio workers=%d winner=%s incumbents_shared=%d failures=%d"
              % (args.portfolio, result.stats.winner,
                 result.stats.incumbents_shared, result.stats.failures))
        if args.trace:
            print("c trace merged=%s (per-worker: %s.w<id>); inspect with "
                  "'python -m repro obs report %s'"
                  % (args.trace, args.trace, args.trace))
    else:
        tracer = None
        if args.trace:
            try:
                tracer = JsonlTracer(args.trace)
            except OSError as exc:
                parser.error("cannot open --trace file: %s" % exc)
            tracer.instance_label = args.instance
        proof_logger = None
        if args.proof:
            from .certify import ProofLogger

            try:
                proof_logger = ProofLogger(args.proof)
            except OSError as exc:
                parser.error("cannot open --proof file: %s" % exc)
        if args.hotspot:
            from .obs.prof import HotspotProfiler

            hotspot = HotspotProfiler()
        try:
            record = run_one(
                args.solver,
                instance,
                args.instance,
                args.time_limit,
                tracer=tracer,
                profile=args.profile or bool(args.hotspot),
                on_progress=_print_progress if args.progress else None,
                progress_interval=args.progress_interval,
                propagation=args.propagation,
                lb_schedule=args.lb_schedule,
                incremental_bounds=not args.cold_bounds,
                proof=proof_logger,
                metrics=registry,
                hotspot=hotspot,
            )
        finally:
            if tracer is not None:
                tracer.close()
            if proof_logger is not None:
                proof_logger.close()
        result = record.result
        seconds = record.seconds
        solver_label = args.solver
        if proof_logger is not None:
            print(
                "c proof file=%s steps=%d"
                % (args.proof, proof_logger.steps_logged)
            )

    print("s %s" % result.status.upper())
    if result.best_cost is not None:
        print("o %d" % result.best_cost)
    if args.model and result.best_assignment:
        literals = [
            ("x%d" % var) if value else ("-x%d" % var)
            for var, value in sorted(result.best_assignment.items())
        ]
        print("v " + " ".join(literals))
    print("c time %.3fs" % seconds)
    if args.profile:
        counters = {
            "uncertified_prunes": getattr(
                result.stats, "uncertified_prunes", 0
            ),
        }
        for line in format_profile(
            result.stats.phase_times, result.stats.elapsed, counters=counters
        ).splitlines():
            print("c " + line)
    if hotspot is not None:
        from .obs.prof import format_hotspots

        try:
            with open(args.hotspot, "w") as sink:
                hotspot.write_collapsed(sink)
        except OSError as exc:
            print("c hotspot write failed: %s" % exc, file=sys.stderr)
        else:
            print("c hotspot collapsed stacks written to %s" % args.hotspot)
        for line in format_hotspots(hotspot).splitlines():
            print("c " + line)
    if registry is not None:
        text = registry.render_text()
        if args.metrics == "-":
            for line in text.splitlines():
                print("c " + line)
        else:
            try:
                with open(args.metrics, "w") as sink:
                    sink.write(text)
            except OSError as exc:
                print("c metrics write failed: %s" % exc, file=sys.stderr)
            else:
                print("c metrics written to %s" % args.metrics)
    if args.stats:
        _print_stats(result.stats.as_dict())
    if args.stats_json:
        payload = {
            "instance": args.instance,
            "solver": solver_label,
            "status": result.status,
            "cost": result.best_cost,
            "seconds": round(seconds, 6),
            "stats": result.stats.as_dict(),
        }
        with open(args.stats_json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0 if result.solved else 1


def _wbo_main(parser: argparse.ArgumentParser, args) -> int:
    """The ``--wbo`` path of :func:`main`: soft-constraint solving.

    Supports the core flags (``--time-limit``, ``--propagation``,
    ``--wbo-mode``, ``--stats``, ``--stats-json``, ``--model``); the
    single-solver instruments and the portfolio do not apply to the
    two-level WBO search and are rejected rather than ignored.
    """
    import time as _time

    from .core.options import SolverOptions
    from .pb.opb import parse_wbo_file
    from .wbo import WBOSolver

    for flag, name in (
        (args.portfolio, "--portfolio"),
        (args.proof, "--proof"),
        (args.trace, "--trace"),
        (args.hotspot, "--hotspot"),
        (args.metrics, "--metrics"),
    ):
        if flag:
            parser.error("%s is not supported with --wbo" % name)
    try:
        wbo = parse_wbo_file(args.instance)
    except OSError as exc:
        parser.error("cannot read instance: %s" % exc)
    options = SolverOptions(
        time_limit=args.time_limit,
        propagation=args.propagation,
        lb_schedule=args.lb_schedule,
        incremental_bounds=not args.cold_bounds,
    )
    solver = WBOSolver(wbo, options, mode=args.wbo_mode)
    started = _time.monotonic()
    result = solver.solve()
    seconds = _time.monotonic() - started
    print("c wbo mode=%s hard=%d soft=%d cores=%d"
          % (args.wbo_mode, len(wbo.hard), len(wbo.soft), len(solver.cores)))
    print("s %s" % result.status.upper())
    if result.cost is not None:
        print("o %d" % result.cost)
    if result.violated_soft is not None:
        print("c violated_soft %s"
              % (" ".join(map(str, result.violated_soft)) or "-"))
    if args.model and result.best_assignment:
        literals = [
            ("x%d" % var) if value else ("-x%d" % var)
            for var, value in sorted(result.best_assignment.items())
        ]
        print("v " + " ".join(literals))
    print("c time %.3fs" % seconds)
    if args.stats:
        _print_stats(result.stats.as_dict())
    if args.stats_json:
        payload = {
            "instance": args.instance,
            "solver": result.solver_name,
            "status": result.status,
            "cost": result.cost,
            "violated_soft": list(result.violated_soft or ()),
            "seconds": round(seconds, 6),
            "stats": result.stats.as_dict(),
        }
        with open(args.stats_json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0 if result.solved else 1


def certify_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro certify instance.opb proof.pbp``.

    Replays a proof log against the parsed instance with the independent
    checker (:mod:`repro.certify` — no search code imported) and reports
    the verdict.  Exit codes: 0 the proof verifies, 1 it verifies but
    claims no answer (``e unknown``), 2 it is rejected.
    """
    from .certify import CheckOutcome, ProofChecker, ProofError

    parser = argparse.ArgumentParser(
        prog="bsolo certify",
        description=(
            "Independently verify a cutting-planes proof log produced by "
            "a 'bsolo --proof' run (see docs/PROOFS.md)"
        ),
    )
    parser.add_argument("instance", help="path to the .opb file that was solved")
    parser.add_argument("proof", help="path to the .pbp proof log")
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the verdict lines; rely on the exit code",
    )
    args = parser.parse_args(argv)

    try:
        instance = parse_file(args.instance)
    except OSError as exc:
        parser.error("cannot read instance: %s" % exc)
    checker = ProofChecker(instance)
    try:
        outcome: CheckOutcome = checker.check_file(args.proof)
    except OSError as exc:
        parser.error("cannot read proof: %s" % exc)
    except ProofError as exc:
        if not args.quiet:
            print("s NOT VERIFIED")
            print("c %s" % exc)
        return 2

    if not args.quiet:
        print("s VERIFIED")
        claim = outcome.status
        if outcome.cost is not None:
            claim += " %d" % outcome.cost
        print("c claim %s" % claim)
        print("c steps %d" % outcome.steps)
        if outcome.conditional:
            print("c conditional yes (proof contains assumption steps)")
    return 0 if outcome.certified else 1


def obs_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro obs {merge,report} ...``.

    ``merge OUT IN [IN ...]`` merges per-worker JSONL traces into one
    worker-tagged, clock-aligned timeline (what ``--portfolio --trace``
    does automatically).  ``report TRACE`` prints a human summary: the
    per-worker table with phase totals and the straggler line for merged
    timelines, the progress/summary view for single-solver traces.
    """
    from .obs.merge import format_worker_report, merge_trace_files
    from .obs.report import format_progress, trace_summary
    from .obs.trace import read_trace

    parser = argparse.ArgumentParser(
        prog="bsolo obs",
        description="Inspect and merge JSONL search traces",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    merge_parser = commands.add_parser(
        "merge", help="merge per-worker traces into one timeline"
    )
    merge_parser.add_argument("output", help="merged timeline to write")
    merge_parser.add_argument(
        "inputs", nargs="+",
        help="per-worker trace files (worker ids follow argument order)",
    )
    report_parser = commands.add_parser(
        "report", help="summarise a trace (merged or single-solver)"
    )
    report_parser.add_argument("trace", help="JSONL trace file to summarise")
    args = parser.parse_args(argv)

    if args.command == "merge":
        try:
            count = merge_trace_files(args.output, args.inputs)
        except (OSError, ValueError) as exc:
            parser.error(str(exc))
        print("merged %d records from %d traces into %s"
              % (count, len(args.inputs), args.output))
        return 0

    try:
        records = read_trace(args.trace)
    except (OSError, ValueError) as exc:
        parser.error(str(exc))
    if any("worker_id" in record for record in records):
        print(format_worker_report(records))
    else:
        summary = trace_summary(records)
        for key, value in sorted(summary.items()):
            print("%s: %s" % (key, value))
        progress = format_progress(records)
        if progress:
            print(progress)
    return 0


if __name__ == "__main__":
    sys.exit(main())
