"""``python -m repro`` — alias for the ``bsolo`` command-line interface.

Three subcommands are recognized before the solver CLI: ``certify``
dispatches to the independent proof checker
(``python -m repro certify instance.opb proof.pbp``), ``obs``
dispatches to the trace tooling
(``python -m repro obs {merge,report} ...``) and ``serve`` starts the
async solve service (``python -m repro serve --port 8080``; protocol
reference in docs/SERVICE.md).
"""

import sys

from .cli import certify_main, main, obs_main

if __name__ == "__main__":
    argv = sys.argv[1:]
    if argv and argv[0] == "certify":
        sys.exit(certify_main(argv[1:]))
    if argv and argv[0] == "obs":
        sys.exit(obs_main(argv[1:]))
    if argv and argv[0] == "serve":
        from .service import serve_main

        sys.exit(serve_main(argv[1:]))
    sys.exit(main(argv))
