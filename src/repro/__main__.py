"""``python -m repro`` — alias for the ``bsolo`` command-line interface.

One subcommand is recognized before the solver CLI: ``certify``, which
dispatches to the independent proof checker
(``python -m repro certify instance.opb proof.pbp``).
"""

import sys

from .cli import certify_main, main

if __name__ == "__main__":
    argv = sys.argv[1:]
    if argv and argv[0] == "certify":
        sys.exit(certify_main(argv[1:]))
    sys.exit(main(argv))
