"""Linear-programming relaxation lower bounding (paper Sections 3.1, 4.2).

``z*_lpr <= z*_cp``: the LP optimum over ``0 <= x <= 1`` bounds the PB
optimum from below, and since the PB optimum is integral the bound can be
rounded up.  Besides the bound value, this module extracts

* the *fractional* LP values, which drive the paper's branching rule
  (Section 5: branch on the variable closest to 0.5), and
* the set ``S`` of tight constraints (zero LP slack), whose currently
  false literals form the explanation ``w_pl`` of a bound conflict
  (Section 4.2, eq. 9).
"""

from __future__ import annotations

import math
import time
from typing import Dict, Mapping, Optional, Sequence

from ..pb.constraints import Constraint
from ..pb.instance import PBInstance
from .simplex import INFEASIBLE, OPTIMAL, SimplexSolver
from .standard_form import build_lp_data


class LowerBound:
    """A lower bound on the cost of completing the current assignment."""

    __slots__ = ("value", "infeasible", "explanation", "fractional", "duals_by_row", "iterations")

    def __init__(
        self,
        value: int,
        infeasible: bool = False,
        explanation: Sequence[Constraint] = (),
        fractional: Optional[Mapping[int, float]] = None,
        duals_by_row: Optional[Mapping[Constraint, float]] = None,
        iterations: int = 0,
    ):
        #: ``P.lower``: integer lower bound on the *remaining* cost.
        self.value = value
        #: True when the relaxation itself is infeasible.
        self.infeasible = infeasible
        #: Constraints responsible for the bound (the paper's set ``S``).
        self.explanation = list(explanation)
        #: LP value per free variable (only meaningful for LPR).
        self.fractional: Dict[int, float] = dict(fractional or {})
        #: Dual value per binding constraint (warm start for Lagrangian).
        self.duals_by_row: Dict[Constraint, float] = dict(duals_by_row or {})
        #: Work spent (simplex or subgradient iterations).
        self.iterations = iterations

    def __repr__(self) -> str:
        if self.infeasible:
            return "LowerBound(infeasible)"
        return "LowerBound(%d)" % self.value


def integer_floor_bound(lp_objective: float) -> int:
    """Round an LP bound up to the next integer, guarding float noise."""
    return int(math.ceil(lp_objective - 1e-6))


class LPRelaxationBound:
    """Lower bound estimation via linear-programming relaxation."""

    name = "lpr"

    def __init__(self, instance: PBInstance, max_iterations: int = 20000, tight_tol: float = 1e-6):
        self._instance = instance
        self._max_iterations = max_iterations
        self._tight_tol = tight_tol
        self.num_calls = 0
        self.total_iterations = 0
        self.total_seconds = 0.0

    def stats_dict(self) -> Dict[str, float]:
        """Structured per-bounder stats (merged into ``SolverStats``)."""
        return {
            "calls": self.num_calls,
            "iterations": self.total_iterations,
            "seconds": round(self.total_seconds, 6),
        }

    def compute(
        self,
        fixed: Mapping[int, int],
        extra_constraints: Sequence[Constraint] = (),
    ) -> LowerBound:
        """``P.lower`` for the sub-problem under the partial assignment.

        ``extra_constraints`` lets the solver include learned knapsack
        cuts in the relaxation (Section 5) without mutating the instance.
        """
        started = time.perf_counter()
        try:
            return self._compute(fixed, extra_constraints)
        finally:
            self.total_seconds += time.perf_counter() - started

    def _compute(
        self,
        fixed: Mapping[int, int],
        extra_constraints: Sequence[Constraint] = (),
    ) -> LowerBound:
        self.num_calls += 1
        data = build_lp_data(self._instance, fixed, extra_constraints)
        if data is None:
            return LowerBound(0, infeasible=True)
        if data.num_rows == 0:
            # Nothing left to satisfy: remaining cost is simply 0.
            return LowerBound(0)
        solver = SimplexSolver(
            data.c, data.A, data.b, data.senses,
            upper=[1.0] * data.num_columns,
            max_iterations=self._max_iterations,
        )
        result = solver.solve()
        self.total_iterations += result.iterations
        if result.status == INFEASIBLE:
            return LowerBound(0, infeasible=True, iterations=result.iterations)
        if result.status != OPTIMAL:
            # Iteration limit: fall back to the trivial bound 0 (sound).
            return LowerBound(0, iterations=result.iterations)
        value = integer_floor_bound(result.objective)
        tight = result.tight_rows(self._tight_tol)
        explanation = [data.rows[i] for i in tight]
        duals_by_row = {
            data.rows[i]: float(result.duals[i])
            for i in range(data.num_rows)
            if i < len(result.duals)
        }
        fractional = {
            data.columns[j]: float(result.x[j]) for j in range(data.num_columns)
        }
        return LowerBound(
            value,
            explanation=explanation,
            fractional=fractional,
            duals_by_row=duals_by_row,
            iterations=result.iterations,
        )


def root_lpr_bound(instance: PBInstance) -> int:
    """LPR bound of the whole instance (no assignments): ``ceil(z*_lpr)``."""
    return LPRelaxationBound(instance).compute({}).value
