"""Linear-programming relaxation lower bounding (paper Sections 3.1, 4.2).

``z*_lpr <= z*_cp``: the LP optimum over ``0 <= x <= 1`` bounds the PB
optimum from below, and since the PB optimum is integral the bound can be
rounded up.  Besides the bound value, this module extracts

* the *fractional* LP values, which drive the paper's branching rule
  (Section 5: branch on the variable closest to 0.5), and
* the set ``S`` of tight constraints (zero LP slack), whose currently
  false literals form the explanation ``w_pl`` of a bound conflict
  (Section 4.2, eq. 9).

Warm starts
-----------
The cold path rebuilds :func:`~repro.lp.standard_form.build_lp_data` and
cold-starts the simplex (Phase I included) at every search node.  With
``warm=True`` the bounder instead keeps ONE persistent
:class:`~repro.lp.simplex.SimplexSolver` over the whole instance
(:func:`~repro.lp.standard_form.build_full_lp_data`): a search node is
applied as variable-bound clamps (``x_j in [v, v]``) plus relaxer-column
toggles for the rows the cold builder would drop, and the LP is re-solved
from the previous basis by the bounded dual simplex
(:meth:`~repro.lp.simplex.SimplexSolver.warm_resolve`).  The node bound
is then ``ceil(full_optimum - P.path)`` — provably equal to the cold
``ceil(reduced_optimum)`` because the full and reduced LPs describe the
same polytope over the free columns (the relaxer caps make dropped rows
vacuous for every 0/1 completion).

Only an OPTIMAL warm outcome is trusted.  Anything else — dual
unboundedness (likely infeasible), iteration limit, numerical breakdown,
or a changed cut list — falls back to the cold path, which re-derives
the exact classification; the model is rebuilt lazily afterwards.
Consecutive nodes differ by a handful of assignments, so the usual warm
call is a few dual pivots instead of a full two-phase solve.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..pb.constraints import Constraint
from ..pb.instance import PBInstance
from .simplex import INFEASIBLE, OPTIMAL, SimplexSolver
from .standard_form import build_full_lp_data, build_lp_data, row_is_dropped
from .tolerances import TIGHT_TOL, ceil_guarded


class LowerBound:
    """A lower bound on the cost of completing the current assignment."""

    __slots__ = ("value", "infeasible", "explanation", "fractional", "duals_by_row", "iterations")

    def __init__(
        self,
        value: int,
        infeasible: bool = False,
        explanation: Sequence[Constraint] = (),
        fractional: Optional[Mapping[int, float]] = None,
        duals_by_row: Optional[Mapping[Constraint, float]] = None,
        iterations: int = 0,
    ):
        #: ``P.lower``: integer lower bound on the *remaining* cost.
        self.value = value
        #: True when the relaxation itself is infeasible.
        self.infeasible = infeasible
        #: Constraints responsible for the bound (the paper's set ``S``).
        self.explanation = list(explanation)
        #: LP value per free variable (only meaningful for LPR).
        self.fractional: Dict[int, float] = dict(fractional or {})
        #: Dual value per binding constraint (warm start for Lagrangian).
        self.duals_by_row: Dict[Constraint, float] = dict(duals_by_row or {})
        #: Work spent (simplex or subgradient iterations).
        self.iterations = iterations

    def __repr__(self) -> str:
        if self.infeasible:
            return "LowerBound(infeasible)"
        return "LowerBound(%d)" % self.value


def integer_ceil_bound(lp_objective: float) -> int:
    """Round an LP bound *up* to the next integer, guarding float noise."""
    return ceil_guarded(lp_objective)


class _WarmModel:
    """The persistent LP behind a warm :class:`LPRelaxationBound`."""

    __slots__ = ("data", "solver", "applied", "active", "path", "extras_key")

    def __init__(self, data, solver, applied, active, path, extras_key):
        self.data = data
        self.solver: SimplexSolver = solver
        #: var -> value currently clamped into the LP bounds.
        self.applied: Dict[int, int] = applied
        #: row index -> False when its relaxer is open (row dropped).
        self.active: List[bool] = active
        #: objective cost of the applied fixed-to-1 variables (``P.path``).
        self.path = path
        self.extras_key: Tuple[Constraint, ...] = extras_key


class LPRelaxationBound:
    """Lower bound estimation via linear-programming relaxation."""

    name = "lpr"

    def __init__(
        self,
        instance: PBInstance,
        max_iterations: int = 20000,
        tight_tol: float = TIGHT_TOL,
        warm: bool = True,
        metrics=None,
    ):
        self._instance = instance
        self._max_iterations = max_iterations
        self._tight_tol = tight_tol
        self._warm = warm
        self._costs = instance.objective.costs
        self._model: Optional[_WarmModel] = None
        self._delta = None  # TrailDelta once attach_trail() is called
        self._broken = False  # root relaxation unusable: stay cold
        self.num_calls = 0
        self.total_iterations = 0
        self.total_batch_pivots = 0
        self.total_seconds = 0.0
        self.warm_calls = 0
        self.cold_calls = 0
        self.warm_fallbacks = 0
        # Metrics (optional): pivot counters resolved once, fed with the
        # per-call deltas after each compute.
        live = metrics if (metrics is not None and metrics.enabled) else None
        self._m_pivots = (
            live.counter("lp_pivots", "Simplex pivots performed by the LP bounder")
            if live is not None
            else None
        )
        self._m_batch_pivots = (
            live.counter(
                "lp_batch_pivots",
                "Simplex pivots applied via the batched array kernels",
            )
            if live is not None
            else None
        )

    # ------------------------------------------------------------------
    def attach_trail(self, trail) -> None:
        """Enable delta-driven node application: future warm calls clamp
        only the columns of variables assigned/unassigned since the
        previous call instead of diffing the whole ``fixed`` mapping."""
        self._delta = trail.register_delta()
        self._model = None  # rebuild so model state and feed are in sync

    def detach_trail(self, trail) -> None:
        """Reverse of :meth:`attach_trail`: stop consuming the trail's
        change feed (sessions detach a bounder before rebuilding it on
        structural changes, else the dead delta is fed forever)."""
        if self._delta is not None:
            trail.unregister_delta(self._delta)
            self._delta = None

    def stats_dict(self) -> Dict[str, float]:
        """Structured per-bounder stats (merged into ``SolverStats``)."""
        return {
            "calls": self.num_calls,
            "iterations": self.total_iterations,
            "batch_pivots": self.total_batch_pivots,
            "seconds": round(self.total_seconds, 6),
            "warm_calls": self.warm_calls,
            "cold_calls": self.cold_calls,
            "warm_fallbacks": self.warm_fallbacks,
        }

    def compute(
        self,
        fixed: Mapping[int, int],
        extra_constraints: Sequence[Constraint] = (),
    ) -> LowerBound:
        """``P.lower`` for the sub-problem under the partial assignment.

        ``extra_constraints`` lets the solver include learned knapsack
        cuts in the relaxation (Section 5) without mutating the instance.
        """
        started = time.perf_counter()
        iterations_before = self.total_iterations
        batch_before = self.total_batch_pivots
        try:
            return self._compute(fixed, extra_constraints)
        finally:
            self.total_seconds += time.perf_counter() - started
            if self._m_pivots is not None:
                delta = self.total_iterations - iterations_before
                if delta:
                    self._m_pivots.inc(delta)
                batch_delta = self.total_batch_pivots - batch_before
                if batch_delta and self._m_batch_pivots is not None:
                    self._m_batch_pivots.inc(batch_delta)

    def _compute(
        self,
        fixed: Mapping[int, int],
        extra_constraints: Sequence[Constraint] = (),
    ) -> LowerBound:
        self.num_calls += 1
        if self._warm:
            outcome = self._compute_warm(fixed, extra_constraints)
            if outcome is not None:
                self.warm_calls += 1
                return outcome
            self.warm_fallbacks += 1
        self.cold_calls += 1
        return self._compute_cold(fixed, extra_constraints)

    # ------------------------------------------------------------------
    # Warm path
    # ------------------------------------------------------------------
    def _build_model(self, extras_key: Tuple[Constraint, ...]) -> Optional[_WarmModel]:
        """Cold-build the persistent LP at the *root* (no clamps) and run
        the one full two-phase solve the model ever needs.  The root
        relaxation of any satisfiable instance is feasible, so building
        here never depends on the (possibly infeasible) current node."""
        data = build_full_lp_data(self._instance, extras_key)
        num_vars = data.num_vars
        total = num_vars + data.num_rows
        upper = [1.0] * num_vars + [0.0] * data.num_rows
        solver = SimplexSolver(
            data.c,
            data.A,
            data.b,
            data.senses,
            upper=upper,
            max_iterations=self._max_iterations,
            lower=[0.0] * total,
        )
        result = solver.solve()
        self.total_iterations += result.iterations
        self.total_batch_pivots += solver.batch_pivots
        if result.status != OPTIMAL:
            return None  # root LP infeasible or stuck: warm is hopeless
        model = _WarmModel(data, solver, {}, [True] * data.num_rows, 0, extras_key)
        self._model = model
        return model

    def _apply_node(
        self, model: _WarmModel, fixed: Mapping[int, int], changed: Set[int]
    ) -> None:
        """Clamp the difference between the model's applied assignment
        and ``fixed`` into the LP bounds, toggling relaxer columns for
        rows whose dropped-status changed."""
        if not changed:
            return
        data = model.data
        solver = model.solver
        touched_rows: Set[int] = set()
        for var in changed:
            new = fixed.get(var)
            old = model.applied.get(var)
            if new == old:
                continue
            j = data.column_of.get(var)
            if j is not None:
                if new is None:
                    solver.set_column_bounds(j, 0.0, 1.0)
                else:
                    solver.set_column_bounds(j, float(new), float(new))
            if old == 1:
                model.path -= self._costs.get(var, 0)
            if new == 1:
                model.path += self._costs.get(var, 0)
            if new is None:
                model.applied.pop(var, None)
            else:
                model.applied[var] = new
            touched_rows.update(data.rows_of_var.get(var, ()))
        for i in touched_rows:
            now_active = not row_is_dropped(data.rows[i], fixed)
            if now_active != model.active[i]:
                cap = 0.0 if now_active else data.relax_cap[i]
                solver.set_column_bounds(data.relaxer_col[i], 0.0, cap)
                model.active[i] = now_active

    def _compute_warm(
        self,
        fixed: Mapping[int, int],
        extra_constraints: Sequence[Constraint],
    ) -> Optional[LowerBound]:
        if self._broken:
            return None
        extras_key = tuple(extra_constraints)
        model = self._model
        if model is None or model.extras_key != extras_key:
            # Stale basis (first call, learned cuts changed, or a prior
            # fallback): rebuild cold once at the root, then stay warm.
            self._model = None
            model = self._build_model(extras_key)
            if model is None:
                # Root relaxation infeasible/stuck — adding cuts or
                # node clamps cannot fix that, so stop trying warm.
                self._broken = True
                return None
            if self._delta is not None:
                self._delta.drain()  # the model starts from the root
            changed: Set[int] = set(fixed) | set(model.applied)
        elif self._delta is not None:
            changed = self._delta.drain()
        else:
            changed = {
                var
                for var in set(fixed) | set(model.applied)
                if fixed.get(var) != model.applied.get(var)
            }
        self._apply_node(model, fixed, changed)
        batch_before = model.solver.batch_pivots
        result = model.solver.warm_resolve()
        self.total_iterations += result.iterations
        self.total_batch_pivots += model.solver.batch_pivots - batch_before
        if result.status != OPTIMAL:
            # Only a certified optimum is trusted; infeasible/limit
            # outcomes are re-derived by the exact cold path.  An
            # INFEASIBLE verdict says nothing bad about the basis (the
            # node's LP simply has no point), so the model is kept for
            # the next node; anything else means the basis is stale.
            if result.status != INFEASIBLE:
                self._model = None
            return None
        data = model.data
        value = integer_ceil_bound(result.objective - model.path)
        tight = set(result.tight_rows(self._tight_tol))
        explanation = [
            data.rows[i] for i in tight if model.active[i]
        ]
        duals_by_row = {
            data.rows[i]: float(result.duals[i])
            for i in range(data.num_rows)
            if model.active[i]
        }
        applied = model.applied
        fractional = {
            var: float(result.x[j])
            for j, var in enumerate(data.columns)
            if var not in applied
        }
        return LowerBound(
            max(value, 0),
            explanation=explanation,
            fractional=fractional,
            duals_by_row=duals_by_row,
            iterations=result.iterations,
        )

    # ------------------------------------------------------------------
    # Cold path (also the reference for the differential tests)
    # ------------------------------------------------------------------
    def _compute_cold(
        self,
        fixed: Mapping[int, int],
        extra_constraints: Sequence[Constraint] = (),
    ) -> LowerBound:
        data = build_lp_data(self._instance, fixed, extra_constraints)
        if data is None:
            return LowerBound(0, infeasible=True)
        if data.num_rows == 0:
            # Nothing left to satisfy: remaining cost is simply 0.
            return LowerBound(0)
        solver = SimplexSolver(
            data.c, data.A, data.b, data.senses,
            upper=[1.0] * data.num_columns,
            max_iterations=self._max_iterations,
        )
        result = solver.solve()
        self.total_iterations += result.iterations
        self.total_batch_pivots += solver.batch_pivots
        if result.status == INFEASIBLE:
            return LowerBound(0, infeasible=True, iterations=result.iterations)
        if result.status != OPTIMAL:
            # Iteration limit: fall back to the trivial bound 0 (sound).
            return LowerBound(0, iterations=result.iterations)
        value = integer_ceil_bound(result.objective)
        tight = result.tight_rows(self._tight_tol)
        explanation = [data.rows[i] for i in tight]
        duals_by_row = {
            data.rows[i]: float(result.duals[i])
            for i in range(data.num_rows)
            if i < len(result.duals)
        }
        fractional = {
            data.columns[j]: float(result.x[j]) for j in range(data.num_columns)
        }
        return LowerBound(
            value,
            explanation=explanation,
            fractional=fractional,
            duals_by_row=duals_by_row,
            iterations=result.iterations,
        )


def root_lpr_bound(
    instance: PBInstance, bounder: Optional[LPRelaxationBound] = None
) -> int:
    """LPR bound of the whole instance (no assignments): ``ceil(z*_lpr)``.

    Pass a pre-built ``bounder`` to reuse its persistent warm model
    instead of constructing (and discarding) a fresh relaxation.
    """
    if bounder is None:
        bounder = LPRelaxationBound(instance, warm=False)
    return bounder.compute({}).value
