"""Building LP data from pseudo-boolean instances.

Paper Section 2: "The linear integer programming formulation for the
constraints can be obtained if we replace literals ~x_j by 1 - x_j."
This module performs that substitution, optionally under a partial
assignment (fixed variables substituted out), producing the dense
``(c, A, b, senses)`` data the simplex solver consumes, together with a
map from LP rows/columns back to the original constraints/variables.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..pb.constraints import Constraint
from ..pb.instance import PBInstance
from .simplex import GE


class LPData:
    """Dense relaxation data plus the bookkeeping to map back."""

    __slots__ = ("c", "A", "b", "senses", "columns", "column_of", "rows")

    def __init__(self, c, A, b, senses, columns, column_of, rows):
        self.c = c
        self.A = A
        self.b = b
        self.senses = senses
        #: LP column index -> original variable index.
        self.columns: List[int] = columns
        #: original variable index -> LP column index.
        self.column_of: Dict[int, int] = column_of
        #: LP row index -> original constraint.
        self.rows: List[Constraint] = rows

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    @property
    def num_rows(self) -> int:
        return len(self.rows)


def build_lp_data(
    instance: PBInstance,
    fixed: Optional[Mapping[int, int]] = None,
    extra_constraints: Sequence[Constraint] = (),
) -> Optional[LPData]:
    """LP relaxation data for the sub-problem under ``fixed``.

    Constraints already satisfied by ``fixed`` are dropped; fixed
    variables are substituted into the remaining rows.  The objective
    covers only free variables (the paper's ``P.lower`` estimates the cost
    of satisfying "the constraints not yet satisfied"; the cost of fixed
    assignments is ``P.path`` and accounted separately).

    Returns ``None`` when some constraint is already violated by ``fixed``
    (callers treat that as a logic conflict, not a bound conflict).
    """
    fixed = fixed or {}
    columns: List[int] = []
    column_of: Dict[int, int] = {}

    def column(var: int) -> int:
        index = column_of.get(var)
        if index is None:
            index = len(columns)
            column_of[var] = index
            columns.append(var)
        return index

    rows: List[Constraint] = []
    row_coeffs: List[Dict[int, float]] = []
    row_rhs: List[float] = []
    all_constraints = list(instance.constraints) + list(extra_constraints)
    for constraint in all_constraints:
        coeffs: Dict[int, float] = {}
        rhs = float(constraint.rhs)
        satisfied = False
        max_supply = 0.0
        # ``rhs`` is adjusted in-loop both by fixed-true literals and by
        # the ~x -> 1-x substitution, so ``rhs <= 0`` mid-loop means the
        # *remaining* integer-form rhs is non-positive: the row is
        # satisfied by zero-filling every free variable.  Dropping such a
        # row only relaxes the LP (sound for lower bounding), and the
        # MILP baseline's zero-fill completion satisfies it by the same
        # argument.
        for coef, lit in constraint.terms:
            var = lit if lit > 0 else -lit
            value = fixed.get(var)
            if value is not None:
                lit_true = (value == 1) == (lit > 0)
                if lit_true:
                    rhs -= coef
                    if rhs <= 0:
                        satisfied = True
                        break
                continue
            # ~x -> 1 - x
            if lit > 0:
                coeffs[var] = coeffs.get(var, 0.0) + coef
            else:
                coeffs[var] = coeffs.get(var, 0.0) - coef
                rhs -= coef
            max_supply += coef
        if satisfied:
            continue
        if not coeffs:
            if rhs > 1e-9:
                return None  # violated by the fixing alone
            continue
        # Max achievable lhs: positive weights at 1, negative at 0 -> sum of
        # positive weights.  If even that cannot reach rhs, it is violated.
        achievable = sum(w for w in coeffs.values() if w > 0)
        if achievable < rhs - 1e-9:
            return None
        for var in coeffs:
            column(var)
        rows.append(constraint)
        row_coeffs.append(coeffs)
        row_rhs.append(rhs)

    n = len(columns)
    m = len(rows)
    A = np.zeros((m, n))
    for i, coeffs in enumerate(row_coeffs):
        for var, weight in coeffs.items():
            A[i, column_of[var]] = weight
    b = np.asarray(row_rhs)
    c = np.zeros(n)
    for var, cost in instance.objective.costs.items():
        if var in column_of:
            c[column_of[var]] = float(cost)
    # Free costed variables that appear in no remaining row still belong in
    # the LP (their optimal value is simply 0) -- they are omitted, which
    # is equivalent and smaller.
    senses = [GE] * m
    return LPData(c, A, b, senses, columns, column_of, rows)
