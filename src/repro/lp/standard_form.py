"""Building LP data from pseudo-boolean instances.

Paper Section 2: "The linear integer programming formulation for the
constraints can be obtained if we replace literals ~x_j by 1 - x_j."
This module performs that substitution, optionally under a partial
assignment (fixed variables substituted out), producing the dense
``(c, A, b, senses)`` data the simplex solver consumes, together with a
map from LP rows/columns back to the original constraints/variables.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..pb.constraints import Constraint
from ..pb.instance import PBInstance
from .simplex import GE


class FullLPData:
    """Whole-instance relaxation data for the warm-started bounder.

    Unlike :class:`LPData` this is built *once* (no partial assignment
    baked in): every constraint becomes a row in integer form and every
    variable of the rows — plus every costed variable — becomes a
    column.  Search-node state is applied afterwards through variable
    bounds (fixing ``x_j`` to ``v`` is the box ``[v, v]``).

    Per-node the cold builder *drops* rows whose remaining right-hand
    side is non-positive (satisfiable for free).  A persistent model
    cannot drop rows, so each row carries a dedicated *relaxer column*:
    cost 0, coefficient +1 in its row only, normally locked to
    ``[0, 0]``.  Opening it to ``[0, relax_cap[i]]`` makes row ``i``
    vacuous (the cap covers the worst case of every 0/1 completion), so
    toggling relaxer bounds reproduces the cold builder's row dropping
    exactly — same polytope over the shared columns, hence bit-equal
    optima.
    """

    __slots__ = (
        "c",
        "A",
        "b",
        "senses",
        "columns",
        "column_of",
        "rows",
        "relaxer_col",
        "relax_cap",
        "rows_of_var",
    )

    def __init__(self, c, A, b, senses, columns, column_of, rows, relaxer_col, relax_cap, rows_of_var):
        self.c = c
        self.A = A
        self.b = b
        self.senses = senses
        #: LP column index -> original variable (structural prefix only).
        self.columns: List[int] = columns
        #: original variable index -> LP column index.
        self.column_of: Dict[int, int] = column_of
        #: LP row index -> original constraint.
        self.rows: List[Constraint] = rows
        #: row index -> its relaxer column index.
        self.relaxer_col: List[int] = relaxer_col
        #: row index -> relaxer upper bound that makes the row vacuous.
        self.relax_cap: List[float] = relax_cap
        #: variable -> row indices it appears in (for delta invalidation).
        self.rows_of_var: Dict[int, List[int]] = rows_of_var

    @property
    def num_vars(self) -> int:
        """Number of structural variables."""
        return len(self.columns)

    @property
    def num_rows(self) -> int:
        """Number of constraint rows."""
        return len(self.rows)


def row_is_dropped(constraint: Constraint, fixed: Mapping[int, int]) -> bool:
    """Whether :func:`build_lp_data` would drop this row under ``fixed``.

    Replicates the builder's logic exactly (the warm bounder's relaxer
    toggles must match it row-for-row): the running rhs absorbs both
    fixed-true coefficients and the ``~x -> 1 - x`` substitution of
    *free* negated literals, but the drop test fires only right after a
    fixed-true subtraction — so a row whose rhs goes non-positive purely
    through free negated literals is kept.  A row with no free terms at
    all is dropped when satisfied (its violation is reported separately).
    """
    rhs = constraint.rhs
    has_free = False
    for coef, lit in constraint.terms:
        var = lit if lit > 0 else -lit
        value = fixed.get(var)
        if value is not None:
            if (value == 1) == (lit > 0):
                rhs -= coef
                if rhs <= 0:
                    return True
            continue
        has_free = True
        if lit < 0:
            rhs -= coef
    if not has_free:
        return rhs <= 1e-9
    return False


def build_full_lp_data(
    instance: PBInstance,
    extra_constraints: Sequence[Constraint] = (),
) -> FullLPData:
    """Whole-instance LP data (see :class:`FullLPData`).

    Never returns ``None``: root-level infeasibility simply surfaces as
    an infeasible LP, which the warm bounder hands back to the cold path
    for exact classification.
    """
    columns: List[int] = []
    column_of: Dict[int, int] = {}

    def column(var: int) -> int:
        index = column_of.get(var)
        if index is None:
            index = len(columns)
            column_of[var] = index
            columns.append(var)
        return index

    rows: List[Constraint] = []
    row_coeffs: List[Dict[int, float]] = []
    row_rhs: List[float] = []
    for constraint in list(instance.constraints) + list(extra_constraints):
        coeffs: Dict[int, float] = {}
        rhs = float(constraint.rhs)
        for coef, lit in constraint.terms:
            var = lit if lit > 0 else -lit
            if lit > 0:
                coeffs[var] = coeffs.get(var, 0.0) + coef
            else:
                coeffs[var] = coeffs.get(var, 0.0) - coef
                rhs -= coef
        for var in coeffs:
            column(var)
        rows.append(constraint)
        row_coeffs.append(coeffs)
        row_rhs.append(rhs)
    # Costed variables outside every row still carry objective weight
    # (their cost belongs to P.path when fixed to 1, and the warm bound
    # subtracts the whole path from the whole-LP optimum).
    for var in sorted(instance.objective.costs):
        column(var)

    num_vars = len(columns)
    m = len(rows)
    n = num_vars + m  # one relaxer column per row
    A = np.zeros((m, n))
    relaxer_col: List[int] = []
    relax_cap: List[float] = []
    rows_of_var: Dict[int, List[int]] = {}
    for i, coeffs in enumerate(row_coeffs):
        for var, weight in coeffs.items():
            A[i, column_of[var]] = weight
            rows_of_var.setdefault(var, []).append(i)
        A[i, num_vars + i] = 1.0
        relaxer_col.append(num_vars + i)
        worst = sum(w for w in coeffs.values() if w < 0)
        relax_cap.append(max(0.0, row_rhs[i] - worst))
    b = np.asarray(row_rhs)
    c = np.zeros(n)
    for var, cost in instance.objective.costs.items():
        c[column_of[var]] = float(cost)
    senses = [GE] * m
    return FullLPData(
        c, A, b, senses, columns, column_of, rows, relaxer_col, relax_cap, rows_of_var
    )


class LPData:
    """Dense relaxation data plus the bookkeeping to map back."""

    __slots__ = ("c", "A", "b", "senses", "columns", "column_of", "rows")

    def __init__(self, c, A, b, senses, columns, column_of, rows):
        self.c = c
        self.A = A
        self.b = b
        self.senses = senses
        #: LP column index -> original variable index.
        self.columns: List[int] = columns
        #: original variable index -> LP column index.
        self.column_of: Dict[int, int] = column_of
        #: LP row index -> original constraint.
        self.rows: List[Constraint] = rows

    @property
    def num_columns(self) -> int:
        """Number of LP columns (variables)."""
        return len(self.columns)

    @property
    def num_rows(self) -> int:
        """Number of constraint rows."""
        return len(self.rows)


def build_lp_data(
    instance: PBInstance,
    fixed: Optional[Mapping[int, int]] = None,
    extra_constraints: Sequence[Constraint] = (),
) -> Optional[LPData]:
    """LP relaxation data for the sub-problem under ``fixed``.

    Constraints already satisfied by ``fixed`` are dropped; fixed
    variables are substituted into the remaining rows.  The objective
    covers only free variables (the paper's ``P.lower`` estimates the cost
    of satisfying "the constraints not yet satisfied"; the cost of fixed
    assignments is ``P.path`` and accounted separately).

    Returns ``None`` when some constraint is already violated by ``fixed``
    (callers treat that as a logic conflict, not a bound conflict).
    """
    fixed = fixed or {}
    columns: List[int] = []
    column_of: Dict[int, int] = {}

    def column(var: int) -> int:
        index = column_of.get(var)
        if index is None:
            index = len(columns)
            column_of[var] = index
            columns.append(var)
        return index

    rows: List[Constraint] = []
    row_coeffs: List[Dict[int, float]] = []
    row_rhs: List[float] = []
    all_constraints = list(instance.constraints) + list(extra_constraints)
    for constraint in all_constraints:
        coeffs: Dict[int, float] = {}
        rhs = float(constraint.rhs)
        satisfied = False
        max_supply = 0.0
        # ``rhs`` is adjusted in-loop both by fixed-true literals and by
        # the ~x -> 1-x substitution, so ``rhs <= 0`` mid-loop means the
        # *remaining* integer-form rhs is non-positive: the row is
        # satisfied by zero-filling every free variable.  Dropping such a
        # row only relaxes the LP (sound for lower bounding), and the
        # MILP baseline's zero-fill completion satisfies it by the same
        # argument.
        for coef, lit in constraint.terms:
            var = lit if lit > 0 else -lit
            value = fixed.get(var)
            if value is not None:
                lit_true = (value == 1) == (lit > 0)
                if lit_true:
                    rhs -= coef
                    if rhs <= 0:
                        satisfied = True
                        break
                continue
            # ~x -> 1 - x
            if lit > 0:
                coeffs[var] = coeffs.get(var, 0.0) + coef
            else:
                coeffs[var] = coeffs.get(var, 0.0) - coef
                rhs -= coef
            max_supply += coef
        if satisfied:
            continue
        if not coeffs:
            if rhs > 1e-9:
                return None  # violated by the fixing alone
            continue
        # Max achievable lhs: positive weights at 1, negative at 0 -> sum of
        # positive weights.  If even that cannot reach rhs, it is violated.
        achievable = sum(w for w in coeffs.values() if w > 0)
        if achievable < rhs - 1e-9:
            return None
        for var in coeffs:
            column(var)
        rows.append(constraint)
        row_coeffs.append(coeffs)
        row_rhs.append(rhs)

    n = len(columns)
    m = len(rows)
    A = np.zeros((m, n))
    for i, coeffs in enumerate(row_coeffs):
        for var, weight in coeffs.items():
            A[i, column_of[var]] = weight
    b = np.asarray(row_rhs)
    c = np.zeros(n)
    for var, cost in instance.objective.costs.items():
        if var in column_of:
            c[column_of[var]] = float(cost)
    # Free costed variables that appear in no remaining row still belong in
    # the LP (their optimal value is simply 0) -- they are omitted, which
    # is equivalent and smaller.
    senses = [GE] * m
    return LPData(c, A, b, senses, columns, column_of, rows)
