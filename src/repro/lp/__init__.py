"""LP substrate: bounded simplex and the LPR lower bound (Section 3.1)."""

from .relaxation import (
    LowerBound,
    LPRelaxationBound,
    integer_ceil_bound,
    root_lpr_bound,
)
from .tolerances import FEAS_TOL, ROUND_EPS, TIGHT_TOL, ceil_guarded
from .simplex import (
    EQ,
    GE,
    INFEASIBLE,
    ITERATION_LIMIT,
    LE,
    LPResult,
    OPTIMAL,
    SimplexSolver,
    UNBOUNDED,
    solve_lp,
)
from .standard_form import FullLPData, LPData, build_full_lp_data, build_lp_data

__all__ = [
    "EQ",
    "FEAS_TOL",
    "FullLPData",
    "GE",
    "INFEASIBLE",
    "ITERATION_LIMIT",
    "LE",
    "LPData",
    "LPRelaxationBound",
    "LPResult",
    "LowerBound",
    "OPTIMAL",
    "ROUND_EPS",
    "SimplexSolver",
    "TIGHT_TOL",
    "UNBOUNDED",
    "build_full_lp_data",
    "build_lp_data",
    "ceil_guarded",
    "integer_ceil_bound",
    "root_lpr_bound",
    "solve_lp",
]
