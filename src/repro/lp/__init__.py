"""LP substrate: bounded simplex and the LPR lower bound (Section 3.1)."""

from .relaxation import LowerBound, LPRelaxationBound, integer_floor_bound, root_lpr_bound
from .simplex import (
    EQ,
    GE,
    INFEASIBLE,
    ITERATION_LIMIT,
    LE,
    LPResult,
    OPTIMAL,
    SimplexSolver,
    UNBOUNDED,
    solve_lp,
)
from .standard_form import LPData, build_lp_data

__all__ = [
    "EQ",
    "GE",
    "INFEASIBLE",
    "ITERATION_LIMIT",
    "LE",
    "LPData",
    "LPRelaxationBound",
    "LPResult",
    "LowerBound",
    "OPTIMAL",
    "SimplexSolver",
    "UNBOUNDED",
    "build_lp_data",
    "integer_floor_bound",
    "root_lpr_bound",
    "solve_lp",
]
