"""Bounded-variable two-phase revised simplex (dense, from scratch).

Solves::

    minimize    c . x
    subject to  A x  {>=, <=, =}  b     (row-wise senses)
                0 <= x_j <= u_j         (u_j may be +inf)

This is the LP substrate behind the paper's linear-programming relaxation
lower bound (Section 3.1): relaxing ``x in {0,1}`` to ``0 <= x <= 1``.

Implementation notes
--------------------
* Surplus/slack columns turn every row into an equality; phase 1 adds one
  artificial column per row and minimizes their sum.  In phase 2 the
  artificials stay in the tableau *locked to the range [0, 0]* — the
  bounded ratio test then keeps them at zero and kicks them out of the
  basis on contact, which sidesteps the classical drive-out procedure.
* The basis inverse is maintained explicitly with product-form (eta)
  updates and refactorized periodically for numerical hygiene.
* Dantzig pricing with an automatic switch to Bland's rule after a stall,
  which guarantees termination on degenerate instances.

The solver reports primal values, row activities/slacks (used for the
paper's eq. 9 bound-conflict explanations) and duals (used to warm-start
the Lagrangian multipliers).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

#: Row senses.
GE = ">="
LE = "<="
EQ = "="

#: Solution statuses.
OPTIMAL = "optimal"
INFEASIBLE = "infeasible"
UNBOUNDED = "unbounded"
ITERATION_LIMIT = "iteration_limit"

_TOL = 1e-9
_STALL_LIMIT = 200  # Dantzig iterations without progress before Bland

_AT_LOWER = 0
_AT_UPPER = 1
_BASIC = 2


class LPResult:
    """Outcome of an LP solve."""

    __slots__ = ("status", "objective", "x", "duals", "activities", "slacks", "iterations")

    def __init__(self, status, objective, x, duals, activities, slacks, iterations):
        #: One of OPTIMAL / INFEASIBLE / UNBOUNDED / ITERATION_LIMIT.
        self.status = status
        #: Optimal objective value (None unless OPTIMAL).
        self.objective = objective
        #: Structural variable values, numpy array of length n.
        self.x = x
        #: Dual value per row (y, from c_B B^-1), numpy array of length m.
        self.duals = duals
        #: Row activities ``A_i x``.
        self.activities = activities
        #: Row slacks: ``A_i x - b_i`` for >=, ``b_i - A_i x`` for <=, 0 for =.
        self.slacks = slacks
        #: Simplex iterations over both phases.
        self.iterations = iterations

    def tight_rows(self, tol: float = 1e-7) -> List[int]:
        """Indices of rows with (near-)zero slack — the binding constraints.

        These are the paper's set ``S`` (Section 4.2): the constraints that
        actually limit the relaxation value.
        """
        if self.slacks is None:
            return []
        return [i for i, s in enumerate(self.slacks) if s <= tol]

    def __repr__(self) -> str:
        return "LPResult(%s, objective=%r)" % (self.status, self.objective)


class SimplexSolver:
    """Reusable simplex solver for one LP instance."""

    def __init__(
        self,
        c: Sequence[float],
        A: Sequence[Sequence[float]],
        b: Sequence[float],
        senses: Sequence[str],
        upper: Optional[Sequence[float]] = None,
        max_iterations: int = 20000,
    ):
        self.c = np.asarray(c, dtype=float)
        self.A = np.asarray(A, dtype=float)
        if self.A.ndim != 2:
            self.A = self.A.reshape((len(b), -1))
        self.b = np.asarray(b, dtype=float)
        self.senses = list(senses)
        self.n = self.c.shape[0]
        self.m = self.b.shape[0]
        if self.A.shape != (self.m, self.n):
            raise ValueError("A must be %dx%d, got %r" % (self.m, self.n, self.A.shape))
        for sense in self.senses:
            if sense not in (GE, LE, EQ):
                raise ValueError("unknown sense %r" % sense)
        if upper is None:
            upper = [math.inf] * self.n
        self.upper = np.asarray(upper, dtype=float)
        if self.upper.shape != (self.n,):
            raise ValueError("upper bounds must have length %d" % self.n)
        if np.any(self.upper < 0):
            raise ValueError("upper bounds must be non-negative")
        self.max_iterations = max_iterations
        self._iterations = 0

    # ------------------------------------------------------------------
    def solve(self) -> LPResult:
        try:
            return self._solve()
        except np.linalg.LinAlgError:
            # Total numerical breakdown: report as an iteration-limit
            # outcome; callers fall back to the trivial bound.
            return LPResult(
                ITERATION_LIMIT, None, None, None, None, None, self._iterations
            )

    def _solve(self) -> LPResult:
        n, m = self.n, self.m
        # Build the extended tableau: structural | slack/surplus | artificial.
        num_slack = sum(1 for s in self.senses if s != EQ)
        total = n + num_slack + m
        T = np.zeros((m, total))
        T[:, :n] = self.A
        upper = np.full(total, math.inf)
        upper[:n] = self.upper
        col = n
        self._slack_col = [-1] * m
        for i, sense in enumerate(self.senses):
            if sense == GE:
                T[i, col] = -1.0  # surplus
                self._slack_col[i] = col
                col += 1
            elif sense == LE:
                T[i, col] = 1.0  # slack
                self._slack_col[i] = col
                col += 1
        art_start = col
        status = np.full(total, _AT_LOWER, dtype=int)

        # Crash start: put each bounded structural variable at whichever
        # bound reduces the total >=-row residual (for covering-style LPs
        # this alone reaches feasibility and phase 1 becomes a no-op).
        sense_sign = np.array(
            [1.0 if s == GE else (-1.0 if s == LE else 0.0) for s in self.senses]
        )
        score = sense_sign @ self.A
        for j in range(n):
            if score[j] > 0 and math.isfinite(self.upper[j]) and self.upper[j] > 0:
                status[j] = _AT_UPPER

        start_x = np.where(status[:n] == _AT_UPPER, self.upper, 0.0)
        residual = self.b - self.A @ start_x
        basis: List[int] = []
        needs_artificial = False
        for i, sense in enumerate(self.senses):
            slack_col = self._slack_col[i]
            slack_feasible = (
                (sense == GE and residual[i] <= 0.0)
                or (sense == LE and residual[i] >= 0.0)
            )
            if slack_feasible:
                basis.append(slack_col)
                status[slack_col] = _BASIC
                T[i, art_start + i] = 1.0  # unused artificial, kept square
            else:
                T[i, art_start + i] = 1.0 if residual[i] >= 0 else -1.0
                basis.append(art_start + i)
                status[art_start + i] = _BASIC
                needs_artificial = True

        self._T = T
        self._upper = upper
        self._status = status
        self._basis = basis
        self._total = total
        self._art_start = art_start
        self._iterations = 0

        if needs_artificial:
            # Phase 1: minimize the artificial sum.
            phase1_cost = np.zeros(total)
            phase1_cost[art_start:] = 1.0
            outcome = self._optimize(phase1_cost)
            if outcome == ITERATION_LIMIT:
                return self._result(ITERATION_LIMIT)
            phase1_value = self._objective_value(phase1_cost)
            if phase1_value > 1e-6:
                return self._result(INFEASIBLE)
        # Phase 2: lock artificials into [0, 0] and minimize the real cost.
        self._upper[art_start:] = 0.0
        phase2_cost = np.zeros(total)
        phase2_cost[: self.n] = self.c
        outcome = self._optimize(phase2_cost)
        if outcome == UNBOUNDED:
            return self._result(UNBOUNDED)
        if outcome == ITERATION_LIMIT:
            return self._result(ITERATION_LIMIT)
        return self._result(OPTIMAL, cost=phase2_cost)

    # ------------------------------------------------------------------
    def _factorize(self) -> None:
        B = self._T[:, self._basis]
        try:
            self._Binv = np.linalg.inv(B)
        except np.linalg.LinAlgError:
            # Accumulated eta updates can drive the basis numerically
            # singular; the pseudo-inverse keeps the iteration moving and
            # the iteration limit bounds the damage.
            self._Binv = np.linalg.pinv(B)

    def _basic_values(self) -> np.ndarray:
        nonbasic_value = np.where(self._status == _AT_UPPER, self._upper, 0.0)
        nonbasic_value[self._basis] = 0.0
        rhs = self.b - self._T @ nonbasic_value
        return self._Binv @ rhs

    def _objective_value(self, cost: np.ndarray) -> float:
        values = np.where(self._status == _AT_UPPER, self._upper, 0.0)
        values[self._basis] = self._basic_values()
        return float(cost @ values)

    def _optimize(self, cost: np.ndarray) -> str:
        self._factorize()
        x_b = self._basic_values()
        stall = 0
        use_bland = False
        refactor_counter = 0
        while True:
            if self._iterations >= self.max_iterations:
                return ITERATION_LIMIT
            self._iterations += 1
            refactor_counter += 1
            if refactor_counter >= 60:
                self._factorize()
                x_b = self._basic_values()
                refactor_counter = 0

            y = cost[self._basis] @ self._Binv
            reduced = cost - y @ self._T

            entering = self._pick_entering(reduced, use_bland)
            if entering is None:
                return OPTIMAL

            direction = 1.0 if self._status[entering] == _AT_LOWER else -1.0
            w = self._Binv @ self._T[:, entering]

            # Bounded ratio test (vectorized).
            t_max = self._upper[entering]  # bound-flip distance (l=0)
            leaving = -1
            leaving_to_upper = False
            step = direction * w
            with np.errstate(divide="ignore", invalid="ignore"):
                down = np.where(step > _TOL, x_b / step, np.inf)
                caps = self._upper[self._basis]
                up = np.where(step < -_TOL, (caps - x_b) / (-step), np.inf)
            down_min = down.min() if down.size else math.inf
            up_min = up.min() if up.size else math.inf
            if down_min < t_max - _TOL and down_min <= up_min:
                # among (near-)ties pick the largest pivot for stability
                ties = np.nonzero(down <= down_min + 1e-9)[0]
                leaving = int(ties[np.abs(step[ties]).argmax()])
                leaving_to_upper = False
                t_max = down_min
            elif up_min < t_max - _TOL:
                ties = np.nonzero(up <= up_min + 1e-9)[0]
                leaving = int(ties[np.abs(step[ties]).argmax()])
                leaving_to_upper = True
                t_max = up_min
            if math.isinf(t_max):
                return UNBOUNDED
            t_max = max(t_max, 0.0)

            if leaving < 0:
                # Bound flip: entering jumps to its other bound.
                x_b -= direction * t_max * w
                self._status[entering] = (
                    _AT_UPPER if self._status[entering] == _AT_LOWER else _AT_LOWER
                )
            else:
                entering_value = (
                    0.0 if self._status[entering] == _AT_LOWER
                    else self._upper[entering]
                ) + direction * t_max
                x_b -= direction * t_max * w
                leaving_var = self._basis[leaving]
                self._status[leaving_var] = _AT_UPPER if leaving_to_upper else _AT_LOWER
                self._basis[leaving] = entering
                self._status[entering] = _BASIC
                x_b[leaving] = entering_value
                self._eta_update(leaving, w)

            # Objective change = reduced cost * signed step (Dantzig
            # improvement test for the anti-cycling stall counter).
            if reduced[entering] * direction * t_max < -1e-12:
                stall = 0
                use_bland = False
            else:
                stall += 1
                if stall > _STALL_LIMIT:
                    use_bland = True

    def _pick_entering(self, reduced: np.ndarray, use_bland: bool) -> Optional[int]:
        at_lower = self._status == _AT_LOWER
        at_upper = self._status == _AT_UPPER
        score = np.where(at_lower, -reduced, 0.0)
        score = np.where(at_upper, reduced, score)
        if use_bland:
            eligible = np.nonzero(score > _TOL)[0]
            return int(eligible[0]) if eligible.size else None
        j = int(score.argmax())
        return j if score[j] > _TOL else None

    def _eta_update(self, row: int, w: np.ndarray) -> None:
        """Product-form update of the explicit inverse after a pivot."""
        pivot = w[row]
        if abs(pivot) < 1e-12:  # pragma: no cover - defensive
            self._factorize()
            return
        self._Binv[row, :] /= pivot
        factors = w.copy()
        factors[row] = 0.0
        self._Binv -= np.outer(factors, self._Binv[row, :])

    # ------------------------------------------------------------------
    def _result(self, status: str, cost: Optional[np.ndarray] = None) -> LPResult:
        if status != OPTIMAL:
            return LPResult(status, None, None, None, None, None, self._iterations)
        values = np.where(self._status == _AT_UPPER, self._upper, 0.0)
        values[self._basis] = self._basic_values()
        x = values[: self.n].copy()
        # Numerical clean-up: clamp into the box.
        finite = np.isfinite(self.upper)
        x[finite] = np.minimum(x[finite], self.upper[finite])
        x = np.maximum(x, 0.0)
        objective = float(self.c @ x)
        activities = self.A @ x
        slacks = np.zeros(self.m)
        for i, sense in enumerate(self.senses):
            if sense == GE:
                slacks[i] = activities[i] - self.b[i]
            elif sense == LE:
                slacks[i] = self.b[i] - activities[i]
        cost_full = np.zeros(self._total)
        cost_full[: self.n] = self.c
        duals = cost_full[self._basis] @ self._Binv
        return LPResult(
            OPTIMAL, objective, x, np.asarray(duals), activities, slacks, self._iterations
        )


def solve_lp(
    c: Sequence[float],
    A: Sequence[Sequence[float]],
    b: Sequence[float],
    senses: Sequence[str],
    upper: Optional[Sequence[float]] = None,
    max_iterations: int = 20000,
) -> LPResult:
    """One-shot convenience wrapper around :class:`SimplexSolver`."""
    return SimplexSolver(c, A, b, senses, upper, max_iterations).solve()
