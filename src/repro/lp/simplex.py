"""Bounded-variable two-phase revised simplex (dense, from scratch).

Solves::

    minimize    c . x
    subject to  A x  {>=, <=, =}  b     (row-wise senses)
                l_j <= x_j <= u_j       (l_j finite >= 0, u_j may be +inf)

This is the LP substrate behind the paper's linear-programming relaxation
lower bound (Section 3.1): relaxing ``x in {0,1}`` to ``0 <= x <= 1``.

Implementation notes
--------------------
* Surplus/slack columns turn every row into an equality; phase 1 adds one
  artificial column per row and minimizes their sum.  In phase 2 the
  artificials stay in the tableau *locked to the range [0, 0]* — the
  bounded ratio test then keeps them at zero and kicks them out of the
  basis on contact, which sidesteps the classical drive-out procedure.
* The basis inverse is maintained explicitly with product-form (eta)
  updates and refactorized periodically for numerical hygiene.
* Dantzig pricing with an automatic switch to Bland's rule after a stall,
  which guarantees termination on degenerate instances.
* Pivots are *batched array kernels*: the basis lives in an int array,
  reduced costs and basic values are maintained incrementally by rank-1
  row updates after each pivot (one ``Binv`` row times the tableau)
  instead of the full ``c_B B^-1 T`` re-price per iteration, and both
  are recomputed from scratch at every periodic refactorization so
  incremental drift cannot outlive a refactor interval.  The bounded
  ratio test was already vectorized; the incremental pricing is what
  turns the warm-start iteration win into a wall-clock win (the
  ``lp_batch_pivots`` observability counter tracks these cheap pivots).

Warm starts
-----------
:meth:`SimplexSolver.set_column_bounds` tightens or relaxes one
structural column's box and :meth:`SimplexSolver.warm_resolve`
re-optimizes from the previous basis.  Changing bounds leaves the
reduced costs — and therefore dual feasibility of an optimal basis —
untouched, so the repair is a textbook *bounded dual simplex*: pick the
basic variable with the largest bound violation, price its tableau row,
enter the column with the smallest dual ratio, repeat until primal
feasible, then let the ordinary primal phase 2 certify optimality.  The
branch-and-bound lower bounder leans on this: fixing a variable at a
search node is a pair of bound changes, and consecutive nodes need a
handful of dual pivots instead of a full two-phase solve.  Any hiccup
(iteration cap, dual unboundedness, numerical breakdown) is reported so
the caller can fall back to a cold solve.

The solver reports primal values, row activities/slacks (used for the
paper's eq. 9 bound-conflict explanations) and duals (used to warm-start
the Lagrangian multipliers).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from .tolerances import FEAS_TOL, TIGHT_TOL

#: Row senses.
GE = ">="
LE = "<="
EQ = "="

#: Solution statuses.
OPTIMAL = "optimal"
INFEASIBLE = "infeasible"
UNBOUNDED = "unbounded"
ITERATION_LIMIT = "iteration_limit"

_TOL = 1e-9
_PRIMAL_FEAS_TOL = 1e-7  # basic-value bound violation treated as zero
_STALL_LIMIT = 200  # Dantzig iterations without progress before Bland

_AT_LOWER = 0
_AT_UPPER = 1
_BASIC = 2


class LPResult:
    """Outcome of an LP solve."""

    __slots__ = ("status", "objective", "x", "duals", "activities", "slacks", "iterations")

    def __init__(self, status, objective, x, duals, activities, slacks, iterations):
        #: One of OPTIMAL / INFEASIBLE / UNBOUNDED / ITERATION_LIMIT.
        self.status = status
        #: Optimal objective value (None unless OPTIMAL).
        self.objective = objective
        #: Structural variable values, numpy array of length n.
        self.x = x
        #: Dual value per row (y, from c_B B^-1), numpy array of length m.
        self.duals = duals
        #: Row activities ``A_i x``.
        self.activities = activities
        #: Row slacks: ``A_i x - b_i`` for >=, ``b_i - A_i x`` for <=, 0 for =.
        self.slacks = slacks
        #: Simplex iterations over both phases.
        self.iterations = iterations

    def tight_rows(self, tol: float = TIGHT_TOL) -> List[int]:
        """Indices of rows with (near-)zero slack — the binding constraints.

        These are the paper's set ``S`` (Section 4.2): the constraints that
        actually limit the relaxation value.
        """
        if self.slacks is None:
            return []
        return [i for i, s in enumerate(self.slacks) if s <= tol]

    def __repr__(self) -> str:
        return "LPResult(%s, objective=%r)" % (self.status, self.objective)


class SimplexSolver:
    """Reusable simplex solver for one LP instance."""

    def __init__(
        self,
        c: Sequence[float],
        A: Sequence[Sequence[float]],
        b: Sequence[float],
        senses: Sequence[str],
        upper: Optional[Sequence[float]] = None,
        max_iterations: int = 20000,
        lower: Optional[Sequence[float]] = None,
    ):
        self.c = np.asarray(c, dtype=float)
        self.A = np.asarray(A, dtype=float)
        if self.A.ndim != 2:
            self.A = self.A.reshape((len(b), -1))
        self.b = np.asarray(b, dtype=float)
        self.senses = list(senses)
        self.n = self.c.shape[0]
        self.m = self.b.shape[0]
        if self.A.shape != (self.m, self.n):
            raise ValueError("A must be %dx%d, got %r" % (self.m, self.n, self.A.shape))
        for sense in self.senses:
            if sense not in (GE, LE, EQ):
                raise ValueError("unknown sense %r" % sense)
        if upper is None:
            upper = [math.inf] * self.n
        self.upper = np.asarray(upper, dtype=float)
        if self.upper.shape != (self.n,):
            raise ValueError("upper bounds must have length %d" % self.n)
        if np.any(self.upper < 0):
            raise ValueError("upper bounds must be non-negative")
        if lower is None:
            lower = [0.0] * self.n
        self.lower = np.asarray(lower, dtype=float)
        if self.lower.shape != (self.n,):
            raise ValueError("lower bounds must have length %d" % self.n)
        if np.any(self.lower < 0) or not np.all(np.isfinite(self.lower)):
            raise ValueError("lower bounds must be finite and non-negative")
        if np.any(self.lower > self.upper):
            raise ValueError("lower bounds must not exceed upper bounds")
        self.max_iterations = max_iterations
        self._iterations = 0
        self._basis: Optional[np.ndarray] = None
        #: Pivots applied through the incremental (rank-1) pricing
        #: kernels rather than a full re-price — the batched-pivot
        #: figure surfaced as the ``lp_batch_pivots`` metric.
        self.batch_pivots = 0

    # ------------------------------------------------------------------
    def solve(self) -> LPResult:
        """Run the (possibly warm-started) simplex; numerically-failed
        runs degrade to an unsolved LPResult instead of raising."""
        try:
            return self._solve()
        except np.linalg.LinAlgError:
            # Total numerical breakdown: report as an iteration-limit
            # outcome; callers fall back to the trivial bound.
            self._basis = None
            return LPResult(
                ITERATION_LIMIT, None, None, None, None, None, self._iterations
            )

    def _solve(self) -> LPResult:
        n, m = self.n, self.m
        # Build the extended tableau: structural | slack/surplus | artificial.
        num_slack = sum(1 for s in self.senses if s != EQ)
        total = n + num_slack + m
        T = np.zeros((m, total))
        T[:, :n] = self.A
        upper = np.full(total, math.inf)
        upper[:n] = self.upper
        lower = np.zeros(total)
        lower[:n] = self.lower
        col = n
        self._slack_col = [-1] * m
        for i, sense in enumerate(self.senses):
            if sense == GE:
                T[i, col] = -1.0  # surplus
                self._slack_col[i] = col
                col += 1
            elif sense == LE:
                T[i, col] = 1.0  # slack
                self._slack_col[i] = col
                col += 1
        art_start = col
        status = np.full(total, _AT_LOWER, dtype=int)

        # Crash start: put each bounded structural variable at whichever
        # bound reduces the total >=-row residual (for covering-style LPs
        # this alone reaches feasibility and phase 1 becomes a no-op).
        sense_sign = np.array(
            [1.0 if s == GE else (-1.0 if s == LE else 0.0) for s in self.senses]
        )
        score = sense_sign @ self.A
        for j in range(n):
            if (
                score[j] > 0
                and math.isfinite(self.upper[j])
                and self.upper[j] > self.lower[j]
            ):
                status[j] = _AT_UPPER

        start_x = np.where(status[:n] == _AT_UPPER, self.upper, self.lower)
        residual = self.b - self.A @ start_x
        basis: List[int] = []
        needs_artificial = False
        for i, sense in enumerate(self.senses):
            slack_col = self._slack_col[i]
            slack_feasible = (
                (sense == GE and residual[i] <= 0.0)
                or (sense == LE and residual[i] >= 0.0)
            )
            if slack_feasible:
                basis.append(slack_col)
                status[slack_col] = _BASIC
                T[i, art_start + i] = 1.0  # unused artificial, kept square
            else:
                T[i, art_start + i] = 1.0 if residual[i] >= 0 else -1.0
                basis.append(art_start + i)
                status[art_start + i] = _BASIC
                needs_artificial = True

        self._T = T
        self._upper = upper
        self._lower = lower
        self._status = status
        # int array: pivots index/assign it without list<->array copies
        self._basis = np.asarray(basis, dtype=np.intp)
        self._total = total
        self._art_start = art_start
        self._iterations = 0

        if needs_artificial:
            # Phase 1: minimize the artificial sum.
            phase1_cost = np.zeros(total)
            phase1_cost[art_start:] = 1.0
            outcome = self._optimize(phase1_cost)
            if outcome == ITERATION_LIMIT:
                return self._result(ITERATION_LIMIT)
            phase1_value = self._objective_value(phase1_cost)
            if phase1_value > FEAS_TOL:
                return self._result(INFEASIBLE)
        # Phase 2: lock artificials into [0, 0] and minimize the real cost.
        self._upper[art_start:] = 0.0
        phase2_cost = np.zeros(total)
        phase2_cost[: self.n] = self.c
        outcome = self._optimize(phase2_cost)
        if outcome == UNBOUNDED:
            return self._result(UNBOUNDED)
        if outcome == ITERATION_LIMIT:
            return self._result(ITERATION_LIMIT)
        return self._result(OPTIMAL, cost=phase2_cost)

    # ------------------------------------------------------------------
    # Warm-start API (bound tightening)
    # ------------------------------------------------------------------
    def set_column_bounds(self, j: int, lower: float, upper: float) -> None:
        """Change structural column ``j``'s box ``[lower, upper]``.

        Cheap bookkeeping only: call :meth:`warm_resolve` afterwards to
        re-optimize from the previous basis (or :meth:`solve` to restart
        cold).  ``lower`` must stay finite and ``0 <= lower <= upper``.
        """
        if not (0.0 <= lower <= upper) or not math.isfinite(lower):
            raise ValueError(
                "invalid bounds [%r, %r] for column %d" % (lower, upper, j)
            )
        self.lower[j] = lower
        self.upper[j] = upper
        if self._basis is not None and hasattr(self, "_lower"):
            self._lower[j] = lower
            self._upper[j] = upper

    @property
    def has_basis(self) -> bool:
        """Whether a previous :meth:`solve` left a reusable basis."""
        return self._basis is not None

    def warm_resolve(self) -> LPResult:
        """Re-optimize after :meth:`set_column_bounds` changes.

        Runs the bounded dual simplex from the existing basis until
        primal feasibility, then the primal phase 2 to certify the
        optimum.  Requires a prior :meth:`solve`; without one this
        simply solves cold.  Statuses other than OPTIMAL / INFEASIBLE
        mean the warm start failed (stale or degenerate basis) — callers
        should fall back to :meth:`solve`.
        """
        if self._basis is None:
            return self.solve()
        self._iterations = 0
        cost = np.zeros(self._total)
        cost[: self.n] = self.c
        try:
            outcome = self._dual_repair(cost)
            if outcome == OPTIMAL:
                # Certify: bound changes kept dual feasibility, so this
                # usually prices once and exits without pivoting.
                outcome = self._optimize(cost)
        except np.linalg.LinAlgError:
            self._basis = None
            return LPResult(
                ITERATION_LIMIT, None, None, None, None, None, self._iterations
            )
        if outcome == OPTIMAL:
            return self._result(OPTIMAL, cost=cost)
        if outcome == INFEASIBLE:
            return self._result(INFEASIBLE)
        return self._result(outcome)

    def _dual_repair(self, cost: np.ndarray) -> str:
        """Bounded dual simplex: restore primal feasibility after bound
        changes while preserving dual feasibility (reduced-cost signs)."""
        self._factorize()
        T = self._T
        lower = self._lower
        upper = self._upper
        status = self._status
        y = cost[self._basis] @ self._Binv
        d = cost - y @ T

        # Freed columns may sit on a dual-infeasible bound (they carried
        # no sign condition while fixed): move them to the bound their
        # reduced cost prefers.  Columns whose bounds did not change kept
        # a valid status — d is unchanged by bound edits — and columns
        # with l == u have no choice.
        basic_mask = np.zeros(self._total, dtype=bool)
        basic_mask[self._basis] = True
        boxed = (~basic_mask) & (upper > lower)
        flip_up = boxed & (status == _AT_LOWER) & (d < -_TOL) & np.isfinite(upper)
        flip_down = boxed & (status == _AT_UPPER) & (d > _TOL)
        status[flip_up] = _AT_UPPER
        status[flip_down] = _AT_LOWER

        if self._basis.size == 0:
            return OPTIMAL  # no rows: primal feasibility is vacuous
        basis_arr = self._basis
        # Basic values are computed once (after the bound flips above)
        # and then maintained incrementally: each pivot applies the
        # rank-1 update ``x_b -= step * w`` instead of re-solving
        # ``Binv (b - N x_N)`` — the dual repair loop runs on whole
        # rows, never per-element.  A periodic refactorization recomputes
        # both x_b and d from scratch to wash out accumulated drift.
        x_b = self._basic_values()
        refactor_counter = 0
        while True:
            if self._iterations >= self.max_iterations:
                return ITERATION_LIMIT
            if refactor_counter >= 60:
                self._factorize()
                x_b = self._basic_values()
                y = cost[basis_arr] @ self._Binv
                d = cost - y @ T
                refactor_counter = 0
            viol_low = lower[basis_arr] - x_b
            viol_up = x_b - upper[basis_arr]
            viol = np.maximum(viol_low, viol_up)
            r = int(viol.argmax())
            if viol[r] <= _PRIMAL_FEAS_TOL:
                return OPTIMAL  # primal feasible again
            self._iterations += 1
            refactor_counter += 1
            below = viol_low[r] >= viol_up[r]
            alpha = self._Binv[r] @ T  # tableau row of the leaving basic

            # Entering eligibility: moving x_j off its bound must push
            # the leaving basic toward the violated bound
            # (d x_Br / d x_j = -alpha_j).
            at_lower = boxed & (status == _AT_LOWER)
            at_upper = boxed & (status == _AT_UPPER)
            if below:
                eligible = (at_lower & (alpha < -_TOL)) | (at_upper & (alpha > _TOL))
            else:
                eligible = (at_lower & (alpha > _TOL)) | (at_upper & (alpha < -_TOL))
            candidates = np.nonzero(eligible)[0]
            if candidates.size == 0:
                return INFEASIBLE  # dual unbounded: no feasible repair
            ratios = np.abs(d[candidates]) / np.abs(alpha[candidates])
            best = ratios.min()
            ties = candidates[np.nonzero(ratios <= best + 1e-9)[0]]
            entering = int(ties[np.abs(alpha[ties]).argmax()])

            leaving = int(self._basis[r])
            target = lower[basis_arr[r]] if below else upper[basis_arr[r]]
            step = -(target - x_b[r]) / alpha[entering]  # signed move of entering
            w = self._Binv @ T[:, entering]
            entering_value = (
                lower[entering] if status[entering] == _AT_LOWER else upper[entering]
            ) + step

            status[leaving] = _AT_LOWER if below else _AT_UPPER
            self._basis[r] = entering
            status[entering] = _BASIC
            # Dual update keeps reduced-cost signs consistent without a
            # full re-price; the primal values get the matching rank-1
            # update (w[r] == alpha[entering], so row r lands exactly on
            # the violated bound before the entering value overwrites it).
            d -= (d[entering] / alpha[entering]) * alpha
            d[entering] = 0.0
            x_b -= step * w
            # entering_value may overshoot its own box; the next loop
            # round treats it as the new violation to repair.
            x_b[r] = entering_value
            self._eta_update(r, w)
            self.batch_pivots += 1
            basic_mask[leaving] = False
            basic_mask[entering] = True
            boxed = (~basic_mask) & (upper > lower)

    # ------------------------------------------------------------------
    def _factorize(self) -> None:
        B = self._T[:, self._basis]
        try:
            self._Binv = np.linalg.inv(B)
        except np.linalg.LinAlgError:
            # Accumulated eta updates can drive the basis numerically
            # singular; the pseudo-inverse keeps the iteration moving and
            # the iteration limit bounds the damage.
            self._Binv = np.linalg.pinv(B)

    def _nonbasic_values(self) -> np.ndarray:
        values = np.where(self._status == _AT_UPPER, self._upper, self._lower)
        values[self._basis] = 0.0
        return values

    def _basic_values(self) -> np.ndarray:
        rhs = self.b - self._T @ self._nonbasic_values()
        return self._Binv @ rhs

    def _objective_value(self, cost: np.ndarray) -> float:
        values = np.where(self._status == _AT_UPPER, self._upper, self._lower)
        values[self._basis] = self._basic_values()
        return float(cost @ values)

    def _optimize(self, cost: np.ndarray) -> str:
        self._factorize()
        x_b = self._basic_values()
        # Full price once; every pivot below patches `reduced` with a
        # rank-1 row update (pivot row of the updated inverse times the
        # tableau) — the classic ``d -= d_j * alpha_r`` identity — so the
        # per-iteration ``c_B B^-1 T`` matmul disappears.  Refactor
        # points recompute from scratch, bounding numerical drift.
        y = cost[self._basis] @ self._Binv
        reduced = cost - y @ self._T
        stall = 0
        use_bland = False
        refactor_counter = 0
        while True:
            if self._iterations >= self.max_iterations:
                return ITERATION_LIMIT
            self._iterations += 1
            refactor_counter += 1
            if refactor_counter >= 60:
                self._factorize()
                x_b = self._basic_values()
                y = cost[self._basis] @ self._Binv
                reduced = cost - y @ self._T
                refactor_counter = 0

            entering = self._pick_entering(reduced, use_bland)
            if entering is None:
                return OPTIMAL

            direction = 1.0 if self._status[entering] == _AT_LOWER else -1.0
            entering_reduced = reduced[entering]  # pre-pivot, for the stall test
            w = self._Binv @ self._T[:, entering]

            # Bounded ratio test (vectorized).
            t_max = self._upper[entering] - self._lower[entering]  # bound flip
            leaving = -1
            leaving_to_upper = False
            step = direction * w
            basis_arr = self._basis
            with np.errstate(divide="ignore", invalid="ignore"):
                floors = self._lower[basis_arr]
                down = np.where(step > _TOL, (x_b - floors) / step, np.inf)
                caps = self._upper[basis_arr]
                up = np.where(step < -_TOL, (caps - x_b) / (-step), np.inf)
            down_min = down.min() if down.size else math.inf
            up_min = up.min() if up.size else math.inf
            if down_min < t_max - _TOL and down_min <= up_min:
                # among (near-)ties pick the largest pivot for stability
                ties = np.nonzero(down <= down_min + 1e-9)[0]
                leaving = int(ties[np.abs(step[ties]).argmax()])
                leaving_to_upper = False
                t_max = down_min
            elif up_min < t_max - _TOL:
                ties = np.nonzero(up <= up_min + 1e-9)[0]
                leaving = int(ties[np.abs(step[ties]).argmax()])
                leaving_to_upper = True
                t_max = up_min
            if math.isinf(t_max):
                return UNBOUNDED
            t_max = max(t_max, 0.0)

            if leaving < 0:
                # Bound flip: entering jumps to its other bound.
                x_b -= direction * t_max * w
                self._status[entering] = (
                    _AT_UPPER if self._status[entering] == _AT_LOWER else _AT_LOWER
                )
            else:
                entering_value = (
                    self._lower[entering]
                    if self._status[entering] == _AT_LOWER
                    else self._upper[entering]
                ) + direction * t_max
                x_b -= direction * t_max * w
                leaving_var = int(self._basis[leaving])
                self._status[leaving_var] = _AT_UPPER if leaving_to_upper else _AT_LOWER
                self._basis[leaving] = entering
                self._status[entering] = _BASIC
                x_b[leaving] = entering_value
                self._eta_update(leaving, w)
                # Patch the reduced costs through the updated pivot row
                # instead of re-pricing next iteration.
                alpha_row = self._Binv[leaving] @ self._T
                reduced = reduced - reduced[entering] * alpha_row
                reduced[entering] = 0.0
                self.batch_pivots += 1

            # Objective change = reduced cost * signed step (Dantzig
            # improvement test for the anti-cycling stall counter).
            if entering_reduced * direction * t_max < -1e-12:
                stall = 0
                use_bland = False
            else:
                stall += 1
                if stall > _STALL_LIMIT:
                    use_bland = True

    def _pick_entering(self, reduced: np.ndarray, use_bland: bool) -> Optional[int]:
        movable = self._upper > self._lower
        at_lower = (self._status == _AT_LOWER) & movable
        at_upper = (self._status == _AT_UPPER) & movable
        score = np.where(at_lower, -reduced, 0.0)
        score = np.where(at_upper, reduced, score)
        if use_bland:
            eligible = np.nonzero(score > _TOL)[0]
            return int(eligible[0]) if eligible.size else None
        j = int(score.argmax())
        return j if score[j] > _TOL else None

    def _eta_update(self, row: int, w: np.ndarray) -> None:
        """Product-form update of the explicit inverse after a pivot."""
        pivot = w[row]
        if abs(pivot) < 1e-12:  # pragma: no cover - defensive
            self._factorize()
            return
        self._Binv[row, :] /= pivot
        factors = w.copy()
        factors[row] = 0.0
        self._Binv -= np.outer(factors, self._Binv[row, :])

    # ------------------------------------------------------------------
    def _result(self, status: str, cost: Optional[np.ndarray] = None) -> LPResult:
        if status != OPTIMAL:
            return LPResult(status, None, None, None, None, None, self._iterations)
        values = np.where(self._status == _AT_UPPER, self._upper, self._lower)
        values[self._basis] = self._basic_values()
        x = values[: self.n].copy()
        # Numerical clean-up: clamp into the box.
        finite = np.isfinite(self.upper)
        x[finite] = np.minimum(x[finite], self.upper[finite])
        x = np.maximum(x, self.lower)
        objective = float(self.c @ x)
        activities = self.A @ x
        slacks = np.zeros(self.m)
        for i, sense in enumerate(self.senses):
            if sense == GE:
                slacks[i] = activities[i] - self.b[i]
            elif sense == LE:
                slacks[i] = self.b[i] - activities[i]
        cost_full = np.zeros(self._total)
        cost_full[: self.n] = self.c
        duals = cost_full[self._basis] @ self._Binv
        return LPResult(
            OPTIMAL, objective, x, np.asarray(duals), activities, slacks, self._iterations
        )


def solve_lp(
    c: Sequence[float],
    A: Sequence[Sequence[float]],
    b: Sequence[float],
    senses: Sequence[str],
    upper: Optional[Sequence[float]] = None,
    max_iterations: int = 20000,
    lower: Optional[Sequence[float]] = None,
) -> LPResult:
    """One-shot convenience wrapper around :class:`SimplexSolver`."""
    return SimplexSolver(c, A, b, senses, upper, max_iterations, lower=lower).solve()
