"""Shared floating-point tolerances for the bounding substrate.

Every bounder rounds a fractional relaxation value up to an integer and
every LP consumer classifies rows as tight/slack; historically each file
carried its own ``1e-6`` literal and nothing stopped the rounding guard
and the tight-row guard from drifting apart.  They must not: the
explanation set ``S`` (the tight rows) has to justify the *rounded*
bound, so the guard used when rounding and the one used when selecting
the rows both derive from the constants below.

``ROUND_EPS``
    Guard subtracted before ``ceil`` when rounding a relaxation value up
    to the integer bound (``ceil(z - ROUND_EPS)``): LP arithmetic noise
    of up to ``ROUND_EPS`` above an exact integer must not inflate the
    bound by one.

``TIGHT_TOL``
    A row with slack ``<= TIGHT_TOL`` counts as binding (the paper's set
    ``S``, Section 4.2).

``FEAS_TOL``
    Residual infeasibility tolerated by phase 1 of the simplex: an
    artificial-variable sum above this is reported INFEASIBLE.
"""

from __future__ import annotations

import math

ROUND_EPS = 1e-6
TIGHT_TOL = 1e-6
FEAS_TOL = 1e-6


def ceil_guarded(value: float, eps: float = ROUND_EPS) -> int:
    """``ceil(value)`` robust to float noise up to ``eps`` above an
    exact integer."""
    return int(math.ceil(value - eps))
