"""Solve outcomes."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .stats import SolverStats

#: The search proved the reported solution optimal.
OPTIMAL = "optimal"
#: Pure satisfaction instance: a model was found.
SATISFIABLE = "satisfiable"
#: No solution exists.
UNSATISFIABLE = "unsatisfiable"
#: A budget (time/conflicts/decisions) expired; ``best_cost`` is the
#: incumbent upper bound, the paper's "ub N" table entries.
UNKNOWN = "unknown"


class SolveResult:
    """Result of a PBO solve."""

    __slots__ = (
        "status",
        "best_cost",
        "best_assignment",
        "stats",
        "solver_name",
        "violated_soft",
        "core",
    )

    def __init__(
        self,
        status: str,
        best_cost: Optional[int] = None,
        best_assignment: Optional[Dict[int, int]] = None,
        stats: Optional[SolverStats] = None,
        solver_name: str = "",
        violated_soft: Optional[Tuple[int, ...]] = None,
        core: Optional[Tuple[int, ...]] = None,
    ):
        self.status = status
        #: Objective value of the best solution found (offset included);
        #: None when no solution was found.
        self.best_cost = best_cost
        self.best_assignment = best_assignment
        self.stats = stats or SolverStats()
        self.solver_name = solver_name
        #: For WBO solves: indices of the soft constraints the reported
        #: solution violates (``None`` for ordinary PBO results).
        self.violated_soft = violated_soft
        #: For UNSATISFIABLE session solves under assumptions: assumption
        #: literals sufficient for the contradiction (an unminimized
        #: core; empty tuple = unsatisfiable regardless of assumptions).
        #: ``None`` whenever a solution exists or no session was involved.
        self.core = core

    @property
    def model(self) -> Optional[Dict[int, int]]:
        """Canonical name for the best assignment (``{var: 0/1}``); may
        be None even for a known ``best_cost`` when the witnessing
        solution was found by *another* portfolio worker."""
        return self.best_assignment

    @property
    def cost(self) -> Optional[int]:
        """Normalized cost accessor: the objective value for PBO solves
        and the total violation cost for WBO solves (both are
        ``best_cost``; this name is the shape shared by the WBO front
        end and the session API)."""
        return self.best_cost

    @property
    def is_optimal(self) -> bool:
        """True when the search proved its incumbent optimal."""
        return self.status == OPTIMAL

    @property
    def solved(self) -> bool:
        """Did the run finish conclusively (paper's "#Solved" row)."""
        return self.status in (OPTIMAL, SATISFIABLE, UNSATISFIABLE)

    def table_entry(self) -> str:
        """Render like Table 1: a time is printed by the harness for
        solved runs; unsolved optimization runs show "ub N"."""
        if self.solved:
            return self.status
        if self.best_cost is not None:
            return "ub %d" % self.best_cost
        return "time"

    def __repr__(self) -> str:
        return "SolveResult(%s, best_cost=%r)" % (self.status, self.best_cost)
