"""Preprocessing: probing for necessary assignments (paper Section 6).

"The probing used in the constraint strengthening is also used to detect
necessary assignments during preprocessing."  We probe each literal at
decision level 0: if asserting it and propagating yields a conflict, its
complement is a *necessary assignment* (failed-literal rule).  When both
polarities fail the instance is unsatisfiable.

The probing loop re-runs until a fixed point because each necessary
assignment can enable new failures.
"""

from __future__ import annotations

from typing import List, Optional

from ..engine.propagation import Propagator
from ..pb.constraints import Constraint


class PreprocessResult:
    """Outcome of the probing pass."""

    __slots__ = ("unsatisfiable", "necessary_literals", "probes", "implications")

    def __init__(
        self,
        unsatisfiable: bool,
        necessary_literals: List[int],
        probes: int,
        implications: Optional[List[Constraint]] = None,
    ):
        self.unsatisfiable = unsatisfiable
        #: Literals asserted at level 0 (in discovery order).
        self.necessary_literals = necessary_literals
        #: Number of probe decisions performed.
        self.probes = probes
        #: Binary clauses derived by probing (constraint strengthening,
        #: paper references [6, 14]): ``probe -> implied`` recorded as
        #: ``(~probe | implied)``, valuable for the *contrapositive*
        #: direction that counter-based propagation cannot see.
        self.implications = implications or []


def probe_necessary_assignments(
    propagator: Propagator,
    max_rounds: int = 3,
    learn_implications: bool = False,
    max_implications: int = 0,
) -> PreprocessResult:
    """Failed-literal probing at the root level.

    The propagator must be at decision level 0 with propagation already
    at a fixed point.  On return it is again at level 0 with all
    discovered necessary assignments applied (unless unsatisfiable).
    With ``learn_implications`` up to ``max_implications`` binary clauses
    ``(~probe | implied)`` are collected from deep implication chains —
    the caller decides whether to add them to the database.
    """
    necessary: List[int] = []
    implications: List[Constraint] = []
    probes = 0
    budget = max_implications if learn_implications else 0
    for _ in range(max_rounds):
        changed = False
        for var in list(propagator.trail.unassigned_variables()):
            if propagator.trail.is_assigned(var):
                continue  # may have been fixed by an earlier probe
            failed_positive = _probe(propagator, var, implications, budget)
            probes += 1
            if propagator.trail.is_assigned(var):
                # probing the positive literal failed and asserted ~var
                necessary.append(-var)
                changed = True
                if failed_positive == "unsat":
                    return PreprocessResult(True, necessary, probes, implications)
                continue
            failed_negative = _probe(propagator, -var, implications, budget)
            probes += 1
            if propagator.trail.is_assigned(var):
                necessary.append(var)
                changed = True
                if failed_negative == "unsat":
                    return PreprocessResult(True, necessary, probes, implications)
        if not changed:
            break
    return PreprocessResult(False, necessary, probes, implications)


def _probe(
    propagator: Propagator,
    literal: int,
    implications: List[Constraint],
    max_implications: int,
) -> Optional[str]:
    """Try ``literal``; on conflict assert its complement at level 0.

    Returns "unsat" when the complement itself conflicts at the root.
    """
    propagator.decide(literal)
    conflict = propagator.propagate()
    if conflict is None and len(implications) < max_implications:
        _collect_implications(propagator, literal, implications, max_implications)
    propagator.backtrack(0)
    if conflict is None:
        return None
    propagator.assume(-literal)
    root_conflict = propagator.propagate()
    if root_conflict is not None:
        return "unsat"
    return "failed"


def _collect_implications(
    propagator: Propagator,
    probe_literal: int,
    implications: List[Constraint],
    max_implications: int,
) -> None:
    trail = propagator.trail
    probe_var = probe_literal if probe_literal > 0 else -probe_literal
    for implied in trail.literals:
        var = implied if implied > 0 else -implied
        if var == probe_var or trail.level(var) == 0:
            continue
        reason = trail.reason(var)
        # binary-clause reasons already encode the implication; only the
        # longer chains yield new binary facts
        if reason is not None and len(reason) > 2:
            implications.append(Constraint.clause([-probe_literal, implied]))
            if len(implications) >= max_implications:
                return
