"""bsolo: hybrid branch-and-bound / SAT-based PBO solver (the paper's tool).

The search is a conflict-driven DPLL over pseudo-boolean constraints
(boolean constraint propagation, first-UIP learning, non-chronological
backtracking) extended with branch-and-bound pruning:

* every complete assignment updates the incumbent ``P.upper`` and
  triggers the Section 5 cuts (knapsack eq. 10, cardinality eq. 11-13);
* at each node a lower bound ``P.lower`` is estimated (MIS / Lagrangian
  relaxation / LP relaxation, Section 3) and the node is pruned when
  ``P.path + P.lower >= P.upper`` (eq. 7);
* pruning learns the bound-conflict clause ``w_bc`` (Section 4) and
  backtracks non-chronologically through the ordinary conflict-analysis
  machinery;
* with LPR the fractional LP solution guides branching (Section 5).

The optimum is proven when the search exhausts (a conflict that does not
depend on any decision).
"""

from __future__ import annotations

import logging
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..covering.reductions import reduce_covering
from ..engine.activity import VSIDSActivity
from ..engine.conflict import ConflictAnalyzer, RootConflictError, highest_level
from ..engine.interface import make_engine
from ..engine.pb_resolution import ResolutionScratch
from ..engine.restarts import RestartScheduler
from ..lagrangian.subgradient import LagrangianBound, SubgradientOptions
from ..lp.relaxation import LowerBound, LPRelaxationBound
from ..mis.independent_set import MISBound
from ..obs.events import (
    BackjumpEvent,
    ConflictEvent,
    CutEvent,
    DecisionEvent,
    IncumbentEvent,
    LowerBoundEvent,
    ProgressEvent,
    RestartEvent,
    ResultEvent,
    RunHeaderEvent,
)
from ..obs.timers import NULL_TIMER, PhaseTimer
from ..obs.trace import NULL_TRACER
from ..pb.constraints import Constraint
from ..pb.instance import PBInstance
from .bound_conflicts import (
    bound_conflict_clause,
    infeasibility_clause,
    path_explanation,
)
from .branching import Brancher
from .cuts import CutGenerator
from .lb_schedule import make_schedule
from .options import HYBRID, LGR, LPR, MIS, PLAIN, SolverOptions
from .preprocess import probe_necessary_assignments
from .result import (
    OPTIMAL,
    SATISFIABLE,
    SolveResult,
    UNKNOWN,
    UNSATISFIABLE,
)
from .stats import SolverStats

logger = logging.getLogger("repro.bsolo")


def make_bounders(
    instance: PBInstance,
    options: SolverOptions,
    metrics=None,
) -> Tuple[Optional[MISBound], Optional[object]]:
    """Build the ``(prefilter, bounder)`` pair for ``options.lower_bound``.

    Shared between one-shot solves and incremental sessions (which
    rebuild their bounders whenever the constraint set or objective
    changes structurally).  The prefilter is non-None only for the
    ``hybrid`` method; both slots are None for ``plain`` or a constant
    objective (nothing to bound).
    """
    method = options.lower_bound
    if method == PLAIN or instance.objective.is_constant:
        return None, None
    if method == MIS:
        return None, MISBound(instance, metrics=metrics)
    if method == LGR:
        return None, LagrangianBound(
            instance,
            SubgradientOptions(max_iterations=options.lgr_iterations),
        )
    prefilter = (
        MISBound(instance, metrics=metrics) if method == HYBRID else None
    )
    return prefilter, LPRelaxationBound(
        instance,
        max_iterations=options.lp_max_iterations,
        warm=options.incremental_bounds,
        metrics=metrics,
    )


class BsoloSolver:
    """One-shot solver for a :class:`~repro.pb.instance.PBInstance`.

    With ``session=`` (internal; see :class:`repro.incremental.SolverSession`)
    the solver runs one *call* of a persistent session instead: the
    propagation engine, VSIDS activity, restart/schedule state and the
    bounders are borrowed from the session rather than built, constraints
    are assumed to be loaded already, and the search runs entirely above
    a *guard decision level* so that no assignment ever becomes a
    permanent level-0 fact (level 0 must stay empty between calls for
    ``push``/``pop`` to be able to undo everything).  Assumptions are
    then asserted as decision levels (MiniSat style) instead of root
    assignments, which keeps learned clauses sound across calls: conflict
    analysis drops level-0 literals, so a level-0 assumption would taint
    every clause learned under it.
    """

    name = "bsolo"

    #: The façade checks this before forwarding ``assumptions=``;
    #: baselines without it raise ``UnsupportedOptionError`` instead of
    #: silently ignoring the literals.
    supports_assumptions = True

    def __init__(
        self,
        instance: PBInstance,
        options: Optional[SolverOptions] = None,
        *,
        session=None,
    ):
        self._instance = instance
        self._options = options or SolverOptions()
        self._objective = instance.objective
        self.stats = SolverStats()
        self._session = session
        #: Decision level the search can never backtrack below: 0 for
        #: one-shot solves, 1 (the guard level) for session calls.
        self._root_level = 0 if session is None else 1

        tracer = self._options.tracer
        self._tracer = tracer if tracer is not None else NULL_TRACER
        metrics = self._options.metrics
        self._metrics = (
            metrics if (metrics is not None and metrics.enabled) else None
        )
        self._m_enabled = self._metrics is not None
        #: Opt-in hotspot profiler; forces phase accounting on so its
        #: samples can be scoped to solver phases.
        self._hotspot = self._options.hotspot
        if self._options.profile or self._hotspot is not None:
            listener = (
                self._hotspot.phase_listener if self._hotspot is not None else None
            )
            self._timer = PhaseTimer(listener=listener)
        else:
            self._timer = NULL_TIMER
        if self._m_enabled:
            self._bind_metrics()
        if session is not None:
            # Borrow the session's persistent state: engine (constraints
            # pre-loaded), activity, restart/bound-schedule state and the
            # (already trail-attached) bounders survive across calls.
            self._propagator = session.propagator
            self._activity = session.activity
            self._restart_scheduler = session.restart_scheduler
            self._schedule = session.schedule
            self._prefilter = session.prefilter
            self._bounder = session.bounder
        else:
            self._propagator = make_engine(
                self._options.propagation,
                instance.num_variables,
                tracer=self._tracer if self._tracer.enabled else None,
                metrics=self._metrics,
            )
            self._activity = VSIDSActivity(
                instance.num_variables, decay=self._options.vsids_decay
            )
            self._restart_scheduler = (
                RestartScheduler(self._options.restart_interval)
                if self._options.restarts
                else None
            )
            self._prefilter = None  # set by _make_bounder for "hybrid"
            self._bounder = self._make_bounder()
            self._schedule = make_schedule(self._options)
        # One analyzer per solver: its flat seen-buffer is reused across
        # every conflict (sized to the trail, which sessions extend by a
        # guard variable).
        self._analyzer = ConflictAnalyzer(self._propagator.trail.num_variables)
        self._resolution = ResolutionScratch(self._propagator.trail.num_variables)
        self._brancher = Brancher(
            self._activity,
            lp_guided=self._options.lp_guided_branching
            and self._options.lower_bound == LPR,
            phase_saving=self._options.phase_saving,
        )
        self._cut_generator = CutGenerator(
            instance, cardinality_cuts=self._options.cardinality_cuts
        )
        if session is None and self._options.incremental_bounds:
            # Feed trail deltas to the bounders that can exploit them
            # (incremental MIS cache, warm-started LP).
            for bounder in (self._prefilter, self._bounder):
                if bounder is not None and hasattr(bounder, "attach_trail"):
                    bounder.attach_trail(self._propagator.trail)
        self._cut_constraints: List[Constraint] = []
        self._lp_values: Dict[int, float] = {}

        # Internal bounds live on the *path-cost scale* (objective offset
        # excluded); results add the offset back.
        self._upper = self._objective.max_value + 1
        self._best_assignment: Optional[Dict[int, int]] = None
        #: Cheapest cost imported through ``set_upper_bound`` /
        #: ``external_bound`` (offset included); the witnessing model is
        #: held by whoever published the bound, not by this solver.
        self._external_cost: Optional[int] = None
        #: Proof logger (:class:`repro.certify.ProofLogger`) or None.
        #: Under proof every learned constraint, cut and bound prune is
        #: recorded with a certificate the logger self-checks first; a
        #: prune whose certificate fails is declined (sound — the search
        #: merely continues), counted in ``stats.uncertified_prunes``.
        self._proof = self._options.proof
        self._cooperative = (
            self._options.should_stop is not None
            or self._options.external_bound is not None
        )
        self._poll_countdown = self._options.poll_interval
        self._deadline: Optional[float] = None
        self._assumptions: List[int] = []
        #: Literals bound ahead of time through ``set_assumptions`` (the
        #: registry path); used when ``solve()`` gets none of its own.
        self._preset_assumptions: Optional[List[int]] = None
        #: Session calls: assumption prefix responsible for an
        #: UNSATISFIABLE outcome (an unminimized core).
        self._assumption_core: Optional[Tuple[int, ...]] = None
        #: Most recent lower-bound estimate (path + bound), for progress.
        self._last_lower: Optional[int] = None
        #: Which bounder produced the last bound (trace attribution).
        self._last_bound_method = self._options.lower_bound
        self._next_progress = self._options.progress_interval

    # ------------------------------------------------------------------
    def _bind_metrics(self) -> None:
        """Resolve metric instruments once, at construction time.

        Hot paths only touch the cached children behind the
        ``self._m_enabled`` guard — the same zero-cost-when-disabled
        discipline as the null tracer.
        """
        m = self._metrics
        conflicts = m.counter(
            "solver_conflicts", "Conflicts by type", labels=("type",)
        )
        self._m_conflicts_logic = conflicts.labels(type="logic")
        self._m_conflicts_bound = conflicts.labels(type="bound")
        self._m_decisions = m.counter(
            "solver_decisions", "Branching decisions"
        )
        self._m_cuts = m.counter(
            "solver_cuts", "Cutting constraints added (Section 5)"
        )
        self._m_prunings = m.counter(
            "solver_prunings", "Nodes pruned by the lower bound"
        )
        self._m_uncertified = m.counter(
            "solver_uncertified_prunes",
            "Prunes declined because no certificate could be logged",
        )
        self._m_incumbents = m.counter(
            "solver_incumbents", "Improving solutions found"
        )
        self._m_restarts = m.counter("solver_restarts", "Restarts performed")
        self._m_lb_seconds = m.histogram(
            "solver_lower_bound_seconds",
            "Wall time of one lower-bound estimation",
            labels=("method",),
        )

    # ------------------------------------------------------------------
    def _make_bounder(self):
        self._prefilter, bounder = make_bounders(
            self._instance, self._options, metrics=self._metrics
        )
        return bounder

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def solve(self, assumptions: Optional[Sequence[int]] = None) -> SolveResult:
        """Run the search to completion or until a budget expires.

        ``assumptions`` are literals asserted at the root before search:
        the result is then relative to the instance *plus* those facts
        (an UNSATISFIABLE outcome means "unsatisfiable under the
        assumptions").
        """
        start = time.monotonic()
        if assumptions is None:
            assumptions = self._preset_assumptions
        self._assumptions = list(assumptions or [])
        if self._options.time_limit is not None:
            self._deadline = start + self._options.time_limit
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(
                RunHeaderEvent(
                    solver=self.name,
                    instance=getattr(tracer, "instance_label", ""),
                    options=self._options.describe(),
                )
            )
        if self._hotspot is not None:
            self._hotspot.start()
        try:
            result = self._search()
            self._finalize_proof(result)
        finally:
            if self._hotspot is not None:
                self._hotspot.stop()
            self.stats.elapsed = time.monotonic() - start
            self.stats.phase_times = self._timer.snapshot()
            self._collect_lb_stats()
        if tracer.enabled:
            tracer.emit(
                ResultEvent(
                    status=result.status,
                    cost=result.best_cost,
                    decisions=self.stats.decisions,
                    conflicts=self.stats.conflicts,
                )
            )
            tracer.flush()
        logger.debug("solve finished: %r (%s)", result, self.stats)
        return result

    def set_assumptions(self, literals: Sequence[int]) -> None:
        """Bind assumption literals ahead of :meth:`solve` — the registry
        constructors' first-class ``assumptions=`` path.  A later
        ``solve(assumptions=...)`` call overrides the preset."""
        self._preset_assumptions = list(literals)

    def set_upper_bound(self, cost: int) -> bool:
        """Inform the search that a solution of ``cost`` (offset
        included) exists elsewhere — the portfolio incumbent protocol.

        Tightens the pruning threshold when ``cost`` beats everything
        known locally; any now-dominated local incumbent is dropped (its
        witnessing model lives with whoever published the bound).
        Returns True when the bound actually tightened.
        """
        if self._proof is not None:
            # An imported bound has no derivation the proof could replay;
            # ignoring it keeps the emitted certificate self-contained.
            return False
        path_cost = cost - self._objective.offset
        if path_cost >= self._upper:
            return False
        self._upper = path_cost
        self._external_cost = cost
        # The local incumbent's cost was the previous ``_upper``, hence
        # strictly worse than the imported solution.
        self._best_assignment = None
        self.stats.external_bounds += 1
        return True

    def _collect_lb_stats(self) -> None:
        detail: Dict[str, Dict[str, float]] = {}
        if self._prefilter is not None:
            detail["mis_prefilter"] = self._prefilter.stats_dict()
        if self._bounder is not None:
            detail[self._bounder.name] = self._bounder.stats_dict()
        if self._bounder is not None or self._prefilter is not None:
            detail["scheduler"] = self._schedule.stats_dict()
        self.stats.lb_stats = detail

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _search(self) -> SolveResult:
        self._timer.push("preprocess")
        try:
            early = self._setup_root()
        finally:
            self._timer.pop()
        if early is not None:
            return early
        return self._main_loop()

    def _setup_root(self) -> Optional[SolveResult]:
        """Load constraints, assumptions and preprocessing; a returned
        result means the search never starts (root conflict)."""
        propagator = self._propagator
        if self._session is not None:
            # Session call: constraints are already attached to the
            # persistent engine (preprocessing/covering reductions are
            # forced off by the session — both assert permanent level-0
            # facts, which must not exist between calls).  Open the guard
            # level, then re-queue every constraint: the root implications
            # discovered last call were undone by the end-of-call
            # backtrack(0) and the engine's propagate is demand-driven.
            for literal in self._assumptions:
                var = literal if literal > 0 else -literal
                if var > self._instance.num_variables or var < 1:
                    raise ValueError("assumption literal %d out of range" % literal)
            propagator.decide(self._session.guard_var)
            propagator.reschedule_all()
            return None
        proof = self._proof
        if proof is not None:
            proof.start(self._instance)
        forced_literals: List[int] = []
        dropped_indices = set()
        if (
            self._options.covering_reductions
            # dominance/pure-polarity reductions preserve *some* optimum
            # but are not implied constraints, so no proof step exists
            # for them: proof mode runs without covering reductions
            and proof is None
            and self._instance.is_covering
            # dominance/pure-polarity keep only *some* optimal solution,
            # which user assumptions might exclude: skip them then
            and not self._assumptions
        ):
            reduction = reduce_covering(self._instance)
            if reduction.conflict:
                return self._finish()
            forced_literals = reduction.forced_literals
            dropped_indices = reduction.dropped_indices
        for index, constraint in enumerate(self._instance.constraints):
            if index in dropped_indices:
                continue  # subsumed clause (covering reduction)
            conflict = propagator.add_constraint(constraint)
            if conflict is not None:  # pragma: no cover - instance rejects these
                return self._finish()
        if propagator.propagate() is not None:
            return self._finish()
        for literal in self._assumptions:
            var = literal if literal > 0 else -literal
            if var > self._instance.num_variables or var < 1:
                raise ValueError("assumption literal %d out of range" % literal)
            if proof is not None:
                # Logged before asserting so a root conflict among the
                # assumptions is already visible to the checker; the
                # final claim becomes conditional on these axioms.
                proof.log_assumption(literal)
            if propagator.trail.is_assigned(var):
                if not propagator.trail.literal_is_true(literal):
                    return self._finish()
                continue
            propagator.assume(literal)
            if propagator.propagate() is not None:
                return self._finish()
        for literal in forced_literals:
            var = literal if literal > 0 else -literal
            if propagator.trail.is_assigned(var):
                if not propagator.trail.literal_is_true(literal):
                    return self._finish()  # assumption contradicts reduction
                continue
            propagator.assume(literal)
            if propagator.propagate() is not None:
                return self._finish()  # assumption-induced conflict

        if self._options.preprocess:
            preprocess = probe_necessary_assignments(
                propagator,
                learn_implications=self._options.probing_implications > 0,
                max_implications=self._options.probing_implications,
            )
            self.stats.necessary_assignments = len(preprocess.necessary_literals)
            if proof is not None:
                # Each necessary literal (in discovery order) and each
                # probing implication is RUP: probing found it by unit
                # propagation, which the checker replays identically.
                for literal in preprocess.necessary_literals:
                    proof.log_rup((literal,))
            if preprocess.unsatisfiable:
                return self._finish()
            for clause in preprocess.implications:
                if proof is not None:
                    proof.log_rup(clause.literals)
                propagator.add_constraint(clause)
        return None

    def _main_loop(self) -> SolveResult:
        propagator = self._propagator
        timer = self._timer
        tracer = self._tracer
        profiling = timer.enabled
        while True:
            if self._budget_exhausted():
                return self._timeout()
            if self._cooperative:
                self._poll_countdown -= 1
                if self._poll_countdown <= 0:
                    self._poll_countdown = self._options.poll_interval
                    outcome = self._poll_cooperative()
                    if outcome is not None:
                        return outcome

            if profiling:
                timer.push("propagate")
            conflict = propagator.propagate()
            if profiling:
                timer.pop()
            if conflict is not None:
                self.stats.logic_conflicts += 1
                self.stats.propagations = propagator.num_propagations
                if self._m_enabled:
                    self._m_conflicts_logic.inc()
                if tracer.enabled:
                    tracer.emit(
                        ConflictEvent(
                            type="logic", level=propagator.trail.decision_level
                        )
                    )
                source = conflict.stored.constraint if conflict.stored else None
                if profiling:
                    timer.push("analyze")
                resolved = self._resolve(conflict.literals, source)
                if profiling:
                    timer.pop()
                self._maybe_progress()
                if not resolved:
                    return self._finish()
                self._maybe_reduce_learned()
                if (
                    self._restart_scheduler is not None
                    and self._restart_scheduler.on_conflict()
                    and propagator.trail.decision_level > self._root_level
                ):
                    self.stats.restarts += 1
                    if self._m_enabled:
                        self._m_restarts.inc()
                    if tracer.enabled:
                        tracer.emit(RestartEvent(conflicts=self.stats.conflicts))
                    # Session calls restart to the guard level, never to 0.
                    propagator.backtrack(self._root_level)
                continue

            if self._session is not None and self._assumptions:
                # Assumptions-as-decision-levels: assert the next pending
                # assumption before branching (and before treating a full
                # trail as a solution — a falsified assumption ends the
                # call).  Whenever an assumption is still unassigned there
                # are no free decisions above it, so a false assumption
                # literal is *entailed* false by the database plus the
                # earlier assumptions: the prefix up to and including it
                # is a valid (unminimized) core.
                pending = None
                trail = propagator.trail
                for position, literal in enumerate(self._assumptions):
                    if trail.literal_is_true(literal):
                        continue
                    if trail.literal_is_false(literal):
                        self._assumption_core = tuple(
                            self._assumptions[: position + 1]
                        )
                        return self._finish()
                    pending = literal
                    break
                if pending is not None:
                    propagator.decide(pending)
                    continue

            if propagator.trail.all_assigned():
                outcome = self._on_solution()
                if outcome is not None:
                    return outcome
                continue

            if self._bounder is not None and self._should_bound():
                bound_start = time.monotonic()
                pruned, exhausted = self._apply_lower_bound()
                bound_seconds = time.monotonic() - bound_start
                self._schedule.record(
                    pruned, bound_seconds, self._last_bound_method
                )
                if self._m_enabled:
                    self._m_lb_seconds.labels(
                        method=self._last_bound_method
                    ).observe(bound_seconds)
                if pruned:
                    self._maybe_progress()
                if exhausted:
                    return self._finish()
                if pruned:
                    continue

            if profiling:
                timer.push("branching")
            literal = self._brancher.pick(propagator.trail, self._lp_values)
            if profiling:
                timer.pop()
            if literal is None:  # pragma: no cover - all_assigned handles this
                return self._finish()
            self.stats.decisions += 1
            if self._m_enabled:
                self._m_decisions.inc()
            if (
                self._options.max_decisions is not None
                and self.stats.decisions > self._options.max_decisions
            ):
                return self._timeout()
            if tracer.enabled:
                tracer.emit(
                    DecisionEvent(
                        literal=literal,
                        level=propagator.trail.decision_level + 1,
                    )
                )
            propagator.decide(literal)

    # ------------------------------------------------------------------
    # Cooperative hooks (portfolio protocol)
    # ------------------------------------------------------------------
    def _poll_cooperative(self) -> Optional[SolveResult]:
        """Check the interrupt and bound-import hooks; a returned result
        ends the search (stop requested, or the imported bound proved
        the remaining search space empty)."""
        options = self._options
        if options.should_stop is not None and options.should_stop():
            self.stats.interrupted = True
            return self._timeout()
        if options.external_bound is not None and not self._objective.is_constant:
            cost = options.external_bound()
            if cost is not None:
                return self._import_bound(cost)
        return None

    def _import_bound(self, cost: int) -> Optional[SolveResult]:
        """Apply an externally published incumbent cost mid-search.

        Beyond tightening ``P.upper`` this generates the Section 5 cuts
        from the imported bound, exactly as a locally found solution
        would — the imported incumbent prunes through propagation, not
        just through the bound comparison.
        """
        if not self.set_upper_bound(cost):
            return None
        if self._options.upper_bound_cuts:
            self._timer.push("cuts")
            cuts, proven = self._cut_generator.cuts_for(self._upper)
            self._timer.pop()
            if proven:
                return self._finish()
            for cut in cuts:
                conflict = self._propagator.add_constraint(cut)
                self.stats.cuts_added += 1
                if self._m_enabled:
                    self._m_cuts.inc()
                if self._tracer.enabled:
                    self._tracer.emit(CutEvent(size=len(cut)))
                if conflict is not None and not self._resolve(
                    conflict.literals,
                    conflict.stored.constraint if conflict.stored else None,
                ):
                    return self._finish()
            self._cut_constraints = list(cuts)
        return None

    # ------------------------------------------------------------------
    # Periodic progress (callback + trace heartbeat)
    # ------------------------------------------------------------------
    def _maybe_progress(self) -> None:
        """Fire ``on_progress``/emit a progress event every N conflicts."""
        if self.stats.conflicts < self._next_progress:
            return
        self._next_progress = self.stats.conflicts + self._options.progress_interval
        self.stats.progress_reports += 1
        best = (
            self._upper + self._objective.offset
            if self._best_assignment is not None
            else None
        )
        if self._options.on_progress is not None:
            self._options.on_progress(self.stats, best, self._last_lower)
        if self._tracer.enabled:
            self._tracer.emit(
                ProgressEvent(
                    conflicts=self.stats.conflicts,
                    decisions=self.stats.decisions,
                    best=best,
                    lower=self._last_lower,
                )
            )

    # ------------------------------------------------------------------
    # Lower bounding (Sections 3-4)
    # ------------------------------------------------------------------
    def _should_bound(self) -> bool:
        return self._schedule.should_bound()

    def _apply_lower_bound(self) -> Tuple[bool, bool]:
        """Estimate ``P.lower``; prune on a bound conflict.

        Returns ``(pruned, search_exhausted)``.
        """
        trail = self._propagator.trail
        timer = self._timer
        tracer = self._tracer
        fixed = trail.assignment()
        path = self._objective.path_cost(fixed)
        bound = self._compute_bound(fixed, path)
        self.stats.lower_bound_calls += 1

        if bound.infeasible:
            clause = infeasibility_clause(
                self._instance, trail, self._cut_constraints
            )
            if not self._certify_infeasibility(clause):
                self.stats.uncertified_prunes += 1
                if self._m_enabled:
                    self._m_uncertified.inc()
                return False, False
            self.stats.bound_conflicts += 1
            if self._m_enabled:
                self._m_conflicts_bound.inc()
            if tracer.enabled:
                tracer.emit(
                    LowerBoundEvent(
                        method=self._last_bound_method,
                        value=0,
                        path=path,
                        level=trail.decision_level,
                        infeasible=True,
                        pruned=True,
                    )
                )
                tracer.emit(
                    ConflictEvent(type="bound", level=trail.decision_level)
                )
            timer.push("analyze")
            resolved = self._resolve(clause)
            timer.pop()
            return True, not resolved

        if bound.fractional:
            self._lp_values = bound.fractional
        self._last_lower = path + bound.value

        pruned = path + bound.value >= self._upper
        if tracer.enabled:
            tracer.emit(
                LowerBoundEvent(
                    method=self._last_bound_method,
                    value=bound.value,
                    path=path,
                    level=trail.decision_level,
                    pruned=pruned,
                )
            )
        if pruned:
            if self._options.bound_conflict_learning:
                alpha = self._alpha_refinement(bound, fixed)
                clause = bound_conflict_clause(
                    self._objective, trail, bound.explanation, alpha
                )
                bound_clause: Optional[Tuple[int, ...]] = clause
            else:
                # Chronological variant: blame every decision on the path.
                clause = tuple(
                    -trail.decision_at(level)
                    for level in range(1, trail.decision_level + 1)
                )
                # The decisions clause is certified through w_bc: once
                # the bound clause is in the proof database, asserting
                # all decisions replays the trail and violates it.
                bound_clause = (
                    bound_conflict_clause(
                        self._objective, trail, bound.explanation, None
                    )
                    if self._proof is not None
                    else None
                )
            if not self._certify_bound_clause(bound_clause, bound, clause):
                self.stats.uncertified_prunes += 1
                if self._m_enabled:
                    self._m_uncertified.inc()
                return False, False
            self.stats.bound_conflicts += 1
            self.stats.prunings += 1
            if self._m_enabled:
                self._m_conflicts_bound.inc()
                self._m_prunings.inc()
            if tracer.enabled:
                tracer.emit(
                    ConflictEvent(type="bound", level=trail.decision_level)
                )
            timer.push("analyze")
            resolved = self._resolve(clause)
            timer.pop()
            return True, not resolved
        return False, False

    # ------------------------------------------------------------------
    # Proof-mode certificates (see repro.certify)
    # ------------------------------------------------------------------
    def _certify_infeasibility(self, clause: Tuple[int, ...]) -> bool:
        """Log a single-constraint witness for an infeasible relaxation.

        Some constraint must be unsatisfiable under the current partial
        assignment for the clause to be implied with multiplier 1; LP
        phase-1 infeasibility without such a witness cannot be certified
        and the prune is declined.  Always True outside proof mode.
        """
        proof = self._proof
        if proof is None:
            return True
        trail = self._propagator.trail
        with self._timer.phase("proof"):
            for constraint in (
                list(self._instance.constraints) + self._cut_constraints
            ):
                supply = sum(
                    coef
                    for coef, lit in constraint.terms
                    if not trail.literal_is_false(lit)
                )
                if supply < constraint.rhs and proof.log_infeasibility(
                    clause, constraint
                ):
                    return True
        return False

    def _certify_bound_clause(
        self,
        bound_clause: Optional[Tuple[int, ...]],
        bound: LowerBound,
        clause: Tuple[int, ...],
    ) -> bool:
        """Log a lower-bound certificate for ``bound_clause`` (w_bc) and,
        when the learned ``clause`` differs (chronological mode), the
        RUP step deriving it.  True means the prune may proceed; always
        True outside proof mode."""
        proof = self._proof
        if proof is None:
            return True
        with self._timer.phase("proof"):
            if self._last_bound_method == "mis":
                trail = self._propagator.trail
                path_vars = [
                    var
                    for var, cost in self._objective.costs.items()
                    if cost > 0 and trail.value(var) == 1
                ]
                logged = proof.log_bound_mis(
                    bound_clause, path_vars, bound.explanation
                )
            else:
                logged = proof.log_bound_linear(
                    bound_clause, list(bound.duals_by_row.items())
                )
            if not logged:
                return False
            if tuple(clause) != tuple(bound_clause):
                proof.log_rup(clause)
        return True

    def _compute_bound(self, fixed: Dict[int, int], path: int) -> LowerBound:
        timer = self._timer
        if self._prefilter is not None and self._schedule.use_prefilter():
            # hybrid mode: if the cheap MIS bound already prunes (or
            # detects infeasibility), skip the LP entirely.  The adaptive
            # schedule benches the pre-filter while its payoff is
            # negligible, escalating straight to the LP.
            timer.push("lower_bound.mis")
            cheap = self._prefilter.compute(fixed, self._cut_constraints)
            timer.pop()
            if cheap.infeasible or path + cheap.value >= self._upper:
                self._last_bound_method = "mis"
                return cheap
        self._last_bound_method = self._bounder.name
        timer.push("lower_bound." + self._bounder.name)
        try:
            if isinstance(self._bounder, LagrangianBound):
                target = max(float(self._upper - path), 1.0)
                return self._bounder.compute(
                    fixed, self._cut_constraints, upper_target=target
                )
            return self._bounder.compute(fixed, self._cut_constraints)
        finally:
            timer.pop()

    def _alpha_refinement(
        self, bound: LowerBound, fixed: Dict[int, int]
    ) -> Optional[Dict[int, float]]:
        if not (
            self._options.lgr_alpha_refinement
            and isinstance(self._bounder, LagrangianBound)
            and bound.duals_by_row
        ):
            return None
        return self._bounder.alpha_of_assigned(fixed, bound.duals_by_row)

    # ------------------------------------------------------------------
    # Solutions and cuts (Section 5)
    # ------------------------------------------------------------------
    def _on_solution(self) -> Optional[SolveResult]:
        assignment = self._propagator.model()
        if self._session is not None:
            # The guard variable is search scaffolding, not part of the
            # instance: results, callbacks and cuts see real variables.
            assignment.pop(self._session.guard_var, None)
        cost = self._objective.path_cost(assignment)
        self.stats.solutions_found += 1
        improved = cost < self._upper
        if improved:
            if self._proof is not None:
                # The 'o' step doubles as the derivation of the eq. 10
                # improvement axiom the later steps build on.
                self._proof.log_solution(
                    [
                        var if value else -var
                        for var, value in sorted(assignment.items())
                    ]
                )
            # Without the eq. 10 cut the search can reach non-improving
            # solutions; the incumbent only ever tightens.
            self._best_assignment = dict(assignment)
            self._upper = cost
            reported = cost + self._objective.offset
            if self._m_enabled:
                self._m_incumbents.inc()
            logger.debug("new incumbent: cost %d", reported)
            if self._tracer.enabled:
                self._tracer.emit(
                    IncumbentEvent(
                        cost=reported,
                        decisions=self.stats.decisions,
                        conflicts=self.stats.conflicts,
                    )
                )
            if self._options.on_new_solution is not None:
                self._options.on_new_solution(reported, dict(assignment))
            if self._options.on_incumbent is not None:
                self._options.on_incumbent(reported, dict(assignment))

        if self._objective.is_constant:
            return SolveResult(
                SATISFIABLE,
                best_cost=self._objective.offset,
                best_assignment=self._best_assignment,
                stats=self.stats,
                solver_name=self.name,
            )

        if self._session is not None:
            # Everything learned from here on depends on the incumbent
            # (eq. 10/11-13 cuts, w_pp, and every clause resolved against
            # them) and is therefore solve-local: the session snapshots
            # the currently retainable learned set and discards the rest
            # at end of call.  Constraints learned *before* the first
            # solution are implied by the instance plus the active frames
            # (no incumbent-dependent constraint existed yet) and may be
            # kept across calls.
            self._session.on_solve_local(self._propagator)

        if improved and self._options.upper_bound_cuts:
            proof = self._proof
            self._timer.push("cuts")
            knapsack = self._cut_generator.knapsack_cut(self._upper)
            pairs, proven_source = (
                self._cut_generator.cardinality_cuts_with_sources(self._upper)
            )
            self._timer.pop()
            if proven_source is not None:
                # Eq. 12's V alone reaches the bound: incumbent optimal.
                # Under proof the unsatisfiable eq. 13 cut is the
                # certificate (it contradicts the checker's database).
                if proof is None or proof.log_proven_cut(proven_source):
                    return self._finish()
                self.stats.uncertified_prunes += 1
                if self._m_enabled:
                    self._m_uncertified.inc()
            # The knapsack cut (eq. 10) IS the improvement axiom the 'o'
            # step derived, so it needs no proof step of its own.
            cuts = [] if knapsack is None else [knapsack]
            for cut, source in pairs:
                if proof is not None and not proof.log_cardinality_cut(
                    source, cut
                ):
                    continue  # uncertifiable cut: skip rather than trust
                cuts.append(cut)
            for cut in cuts:
                # Session calls flag cuts as learned so the end-of-call
                # cleanup can delete them (they are incumbent-relative).
                self._propagator.add_constraint(
                    cut, learned=self._session is not None
                )
                self.stats.cuts_added += 1
                if self._m_enabled:
                    self._m_cuts.inc()
                if self._tracer.enabled:
                    self._tracer.emit(CutEvent(size=len(cut)))
            # For the relaxations, each new solution's cuts dominate the
            # previous round's (smaller rhs, same support): replace rather
            # than accumulate, keeping the LPs small.
            self._cut_constraints = list(cuts)

        # The solution node itself is now bound-conflicting
        # (path >= upper): learn w_pp and continue the search.
        clause = tuple(path_explanation(self._objective, self._propagator.trail))
        if self._proof is not None:
            # RUP: negating w_pp sets every costed path variable to 1,
            # which violates the current improvement axiom.
            self._proof.log_rup(clause)
        if not self._resolve(clause):
            return self._finish()
        return None

    # ------------------------------------------------------------------
    # Conflict resolution (logic conflicts and bound conflicts alike)
    # ------------------------------------------------------------------
    def _resolve(
        self,
        literals: Sequence[int],
        conflict_constraint: Optional[Constraint] = None,
    ) -> bool:
        """Learn from a set of false literals; False = search exhausted."""
        trail = self._propagator.trail
        if not literals:
            return False
        level = highest_level(literals, trail)
        if level <= self._root_level:
            # One-shot solves: a level-0 conflict means the search space
            # is exhausted.  Session calls: level 0 is empty and the
            # guard variable appears in no constraint, so every guard
            # level implication is entailed by the database alone — a
            # conflict entirely at the guard level is a database-level
            # contradiction, exhausted all the same.
            return False
        if level < trail.decision_level:
            # Bound-conflict clauses may not touch the deepest levels:
            # rewind to the highest responsible level first (Section 4.1).
            self._propagator.backtrack(level)
        try:
            analysis = self._analyzer.analyze(literals, trail)
        except RootConflictError:
            return False
        proof = self._proof
        resolvent = None
        resolution_trace: Optional[List[Tuple]] = None
        if self._options.pb_learning and conflict_constraint is not None:
            # must run before the backjump pops the antecedents
            resolution_trace = [] if proof is not None else None
            resolvent = self._resolution.derive(
                conflict_constraint,
                analysis.resolved_variables,
                self._propagator.antecedent,
                resolution_trace,
            )
        self._activity.bump_all(analysis.seen_variables)
        self._activity.decay()
        self.stats.record_backjump(level, analysis.backtrack_level)
        self.stats.resolution_steps += analysis.resolution_steps
        if self._tracer.enabled:
            self._tracer.emit(
                BackjumpEvent(
                    from_level=level,
                    to_level=analysis.backtrack_level,
                    learned_size=len(analysis.learned_literals),
                )
            )
        # Session calls clamp the backjump to the guard level: asserting
        # literals then land at level 1 (implied by the learned clause)
        # instead of becoming permanent level-0 facts that pop() could
        # never undo.  The conflict level is > root_level here, so the
        # asserting literal is always unassigned after the backjump.
        self._propagator.backtrack(
            max(analysis.backtrack_level, self._root_level)
        )
        learned = Constraint.clause(analysis.learned_literals)
        if proof is not None:
            # First-UIP clauses are RUP against the proof database: the
            # checker's propagation has the same strength as the engine's
            # and every constraint the analysis touched is in the log.
            with self._timer.phase("proof"):
                proof.log_rup(analysis.learned_literals)
        conflict = self._propagator.add_constraint(learned, learned=True)
        self.stats.learned_constraints += 1
        if conflict is not None:  # pragma: no cover - learned clause asserts
            return self._resolve(conflict.literals)
        if analysis.asserting_literal is not None:
            self._propagator.imply(
                analysis.asserting_literal, analysis.learned_literals
            )
        if resolvent is not None and proof is not None:
            with self._timer.phase("proof"):
                logged_resolvent = proof.log_resolvent(
                    conflict_constraint, resolution_trace, resolvent
                )
        else:
            logged_resolvent = True
        if resolvent is not None and proof is not None and not logged_resolvent:
            # The checker-side replay disagreed with the engine's
            # derivation: drop the resolvent instead of learning an
            # unprovable constraint (the clausal learner above suffices).
            resolvent = None
        if resolvent is not None:
            conflict = self._propagator.add_constraint(resolvent, learned=True)
            self.stats.learned_constraints += 1
            self.stats.pb_resolvents += 1
            if conflict is not None:
                return self._resolve(
                    conflict.literals,
                    conflict.stored.constraint if conflict.stored else None,
                )
        return True

    def _maybe_reduce_learned(self) -> None:
        """Forget old, long learned clauses above the configured cap."""
        limit = self._options.max_learned
        if limit is None:
            return
        database = self._propagator.database
        if database.num_learned() <= limit:
            return
        indices = sorted(
            stored.index
            for stored in database.constraints
            if stored.learned and len(stored.constraint) > 2
        )
        if not indices:
            return
        cutoff = indices[len(indices) // 2]
        # Session frame constraints ride in the database as learned (so
        # pop() can delete them) but must never be garbage-collected.
        protected = (
            self._session.protected_ids if self._session is not None else None
        )
        self._propagator.reduce_learned(
            lambda stored: (protected is not None and id(stored) in protected)
            or len(stored.constraint) <= 2
            or stored.index > cutoff
        )

    # ------------------------------------------------------------------
    # Termination
    # ------------------------------------------------------------------
    def _budget_exhausted(self) -> bool:
        if self._deadline is not None and time.monotonic() > self._deadline:
            return True
        if (
            self._options.max_conflicts is not None
            and self.stats.conflicts > self._options.max_conflicts
        ):
            return True
        return False

    def _finalize_proof(self, result: SolveResult) -> None:
        """Emit the contradiction and final-claim steps, then flush.

        OPTIMAL and UNSATISFIABLE both rest on the proof database now
        propagating to a root conflict (for OPTIMAL, under the incumbent
        improvement axiom); SATISFIABLE rests on the verified incumbent
        alone, and a budget/interrupt exit claims nothing.
        """
        proof = self._proof
        if proof is None:
            return
        with self._timer.phase("proof"):
            if result.status == OPTIMAL:
                proof.log_contradiction()
                proof.log_end("optimal", result.best_cost)
            elif result.status == SATISFIABLE:
                proof.log_end("satisfiable", result.best_cost)
            elif result.status == UNSATISFIABLE:
                proof.log_contradiction()
                proof.log_end("unsatisfiable")
            else:
                proof.log_end("unknown")
            proof.close()

    def _finish(self) -> SolveResult:
        if self._best_assignment is not None:
            status = SATISFIABLE if self._objective.is_constant else OPTIMAL
            return SolveResult(
                status,
                best_cost=self._upper + self._objective.offset,
                best_assignment=self._best_assignment,
                stats=self.stats,
                solver_name=self.name,
            )
        if self._external_cost is not None:
            # The search ruled out every solution cheaper than the
            # imported incumbent: that incumbent — held by another
            # portfolio worker — is optimal.
            return SolveResult(
                OPTIMAL,
                best_cost=self._external_cost,
                stats=self.stats,
                solver_name=self.name,
            )
        core: Optional[Tuple[int, ...]] = None
        if self._session is not None:
            # A falsified assumption yields its prefix as the core; pure
            # exhaustion happened at the guard level, i.e. independent of
            # the assumptions: the empty core.
            core = (
                self._assumption_core
                if self._assumption_core is not None
                else ()
            )
        return SolveResult(
            UNSATISFIABLE, stats=self.stats, solver_name=self.name, core=core
        )

    def _timeout(self) -> SolveResult:
        if self._best_assignment is not None:
            best_cost = self._upper + self._objective.offset
        else:
            best_cost = self._external_cost
        return SolveResult(
            UNKNOWN,
            best_cost=best_cost,
            best_assignment=self._best_assignment,
            stats=self.stats,
            solver_name=self.name,
        )


def solve(instance: PBInstance, options: Optional[SolverOptions] = None) -> SolveResult:
    """Convenience wrapper: build a solver and run it."""
    return BsoloSolver(instance, options).solve()
