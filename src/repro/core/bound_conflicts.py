"""Bound-conflict explanations (paper Section 4).

A *bound conflict* arises when ``P.path + P.lower >= P.upper`` (eq. 7).
The clause ``w_bc = w_pp  union  w_pl`` records a set of currently-false
literals at least one of which must become true in any better solution:

* ``w_pp`` (eq. 8) explains the path cost: ``{~x_j : Cost(x_j) > 0 and
  x_j = 1}`` — to pay less, some costed variable now at 1 must go to 0.
* ``w_pl`` (eq. 9) explains the lower bound: the literals assigned value
  0 in the *responsible* constraints ``S`` — LP-tight rows for LPR
  (Section 4.2), rows with non-zero multipliers for LGR (Section 4.3),
  the selected independent set for MIS.

For Lagrangian explanations the optional ``alpha_j`` refinement drops
assignments whose flip can only raise the bound (Section 4.3, with the
sign correction documented in DESIGN.md): keep a false literal over
variable ``j`` only when flipping ``x_j`` could lower the bound, i.e.
``x_j = 0`` with ``alpha_j < 0`` or ``x_j = 1`` with ``alpha_j > 0``.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Set, Tuple

from ..pb.constraints import Constraint
from ..pb.instance import PBInstance
from ..pb.objective import Objective
from ..engine.assignment import Trail

_ALPHA_TOL = 1e-9


def path_explanation(objective: Objective, trail: Trail) -> List[int]:
    """``w_pp`` (eq. 8): ``~x_j`` for every costed variable at 1."""
    literals: List[int] = []
    for var, cost in objective.costs.items():
        if cost > 0 and trail.value(var) == 1:
            literals.append(-var)
    return literals


def lower_bound_explanation(
    responsible: Sequence[Constraint],
    trail: Trail,
    alpha_by_var: Optional[Mapping[int, float]] = None,
) -> List[int]:
    """``w_pl`` (eq. 9): false literals of the responsible constraints.

    ``alpha_by_var`` enables the Section 4.3 refinement (Lagrangian
    only): false literals whose flip cannot lower the bound are dropped.
    """
    seen: Set[int] = set()
    literals: List[int] = []
    for constraint in responsible:
        for _, lit in constraint.terms:
            if lit in seen or not trail.literal_is_false(lit):
                continue
            seen.add(lit)
            if alpha_by_var is not None:
                var = lit if lit > 0 else -lit
                alpha = alpha_by_var.get(var)
                if alpha is not None:
                    if lit > 0 and alpha >= -_ALPHA_TOL:
                        continue  # x_j = 0, flip can only raise the bound
                    if lit < 0 and alpha <= _ALPHA_TOL:
                        continue  # x_j = 1, flip can only raise the bound
            literals.append(lit)
    return literals


def bound_conflict_clause(
    objective: Objective,
    trail: Trail,
    responsible: Sequence[Constraint],
    alpha_by_var: Optional[Mapping[int, float]] = None,
) -> Tuple[int, ...]:
    """``w_bc = w_pp union w_pl`` (Section 4.1); all literals false.

    An empty result proves that no assignment can beat the incumbent:
    the search is complete.
    """
    literals = path_explanation(objective, trail)
    seen = set(literals)
    for lit in lower_bound_explanation(responsible, trail, alpha_by_var):
        if lit not in seen:
            seen.add(lit)
            literals.append(lit)
    return tuple(literals)


def infeasibility_clause(
    instance: PBInstance, trail: Trail, extra_constraints: Sequence[Constraint] = ()
) -> Tuple[int, ...]:
    """Explanation when the relaxation is infeasible under the trail.

    Sound conservative choice: the false literals of every constraint not
    yet satisfied.  Pinning them keeps each of those constraints at least
    as hard, so the sub-problem stays infeasible.
    """
    assignment = trail.assignment()
    seen: Set[int] = set()
    literals: List[int] = []
    for constraint in list(instance.constraints) + list(extra_constraints):
        satisfied = 0
        false_lits: List[int] = []
        for coef, lit in constraint.terms:
            var = lit if lit > 0 else -lit
            value = assignment.get(var)
            if value is None:
                continue
            if (value == 1) == (lit > 0):
                satisfied += coef
            else:
                false_lits.append(lit)
        if satisfied >= constraint.rhs:
            continue
        for lit in false_lits:
            if lit not in seen:
                seen.add(lit)
                literals.append(lit)
    return tuple(literals)
