"""The paper's primary contribution: the bsolo hybrid PBO solver."""

from .bound_conflicts import (
    bound_conflict_clause,
    infeasibility_clause,
    lower_bound_explanation,
    path_explanation,
)
from .branching import Brancher
from .cuts import CutGenerator
from .enumeration import count_optimal, enumerate_optimal
from .options import HYBRID, LGR, LPR, MIS, PLAIN, SolverOptions
from .preprocess import PreprocessResult, probe_necessary_assignments
from .result import OPTIMAL, SATISFIABLE, SolveResult, UNKNOWN, UNSATISFIABLE
from .solver import BsoloSolver, solve
from .stats import SolverStats
from .verify import VerificationError, VerifyOutcome, verify_result

__all__ = [
    "Brancher",
    "BsoloSolver",
    "CutGenerator",
    "HYBRID",
    "LGR",
    "LPR",
    "MIS",
    "OPTIMAL",
    "PLAIN",
    "PreprocessResult",
    "SATISFIABLE",
    "SolveResult",
    "SolverOptions",
    "SolverStats",
    "UNKNOWN",
    "UNSATISFIABLE",
    "VerificationError",
    "VerifyOutcome",
    "bound_conflict_clause",
    "count_optimal",
    "enumerate_optimal",
    "infeasibility_clause",
    "lower_bound_explanation",
    "path_explanation",
    "probe_necessary_assignments",
    "solve",
    "verify_result",
]
