"""Branching heuristics (paper Section 5).

With LPR lower bounding the LP solution informs branching: "branching is
restricted to variables for which the LP solution is not integer.  Of
these variables, the one closest to 0.5 is selected.  In the case more
than one variable has been assigned value 0.5, then the VSIDS heuristic
of Chaff is applied."  Without LP information the heuristic falls back to
plain VSIDS.

Phase selection: with a fractional LP value the literal is rounded
(``x > 0.5`` branches to 1 first); otherwise the cheap phase 0 is taken,
which keeps ``P.path`` low during minimization.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from ..engine.activity import VSIDSActivity
from ..engine.assignment import Trail

_FRACTIONAL_TOL = 1e-6
_TIE_TOL = 1e-6


class Brancher:
    """Chooses the next decision literal."""

    def __init__(
        self,
        activity: VSIDSActivity,
        lp_guided: bool = True,
        phase_saving: bool = False,
    ):
        self._activity = activity
        self._lp_guided = lp_guided
        self._phase_saving = phase_saving

    def pick(
        self,
        trail: Trail,
        lp_values: Optional[Mapping[int, float]] = None,
    ) -> Optional[int]:
        """The next decision literal, or None when everything is assigned."""
        unassigned = trail.unassigned_variables()
        if not unassigned:
            return None
        if self._lp_guided and lp_values:
            literal = self._pick_fractional(unassigned, lp_values)
            if literal is not None:
                return literal
        var = self._activity.best(unassigned)
        if var is None:  # pragma: no cover - unassigned is non-empty
            return None
        if self._phase_saving and trail.saved_phase(var) == 1:
            return var
        return -var  # phase 0: cheapest for minimization

    def _pick_fractional(
        self, unassigned: Iterable[int], lp_values: Mapping[int, float]
    ) -> Optional[int]:
        best_var: Optional[int] = None
        best_distance = 0.5 - _FRACTIONAL_TOL  # only truly fractional values
        ties = []
        for var in unassigned:
            value = lp_values.get(var)
            if value is None:
                continue
            if value < _FRACTIONAL_TOL or value > 1.0 - _FRACTIONAL_TOL:
                continue  # integer in the LP: not a branching candidate
            distance = abs(value - 0.5)
            if distance < best_distance - _TIE_TOL:
                best_var, best_distance = var, distance
                ties = [var]
            elif abs(distance - best_distance) <= _TIE_TOL:
                ties.append(var)
        if best_var is None:
            return None
        if len(ties) > 1:
            best_var = self._activity.best(ties) or best_var
        value = lp_values[best_var]
        # Round the LP value for the first phase.
        return best_var if value > 0.5 else -best_var
