"""Enumeration of optimal solutions.

Finds the optimum once, then repeatedly blocks the incumbent assignment
and re-solves under a ``cost <= optimum`` constraint until the optimal
cost is exhausted — yielding every distinct optimal assignment (or up to
``limit`` of them).  Useful in EDA flows where ties are broken by a
secondary criterion.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..pb.constraints import Constraint
from ..pb.instance import PBInstance
from .options import SolverOptions
from .result import OPTIMAL, SATISFIABLE
from .solver import BsoloSolver


def enumerate_optimal(
    instance: PBInstance,
    options: Optional[SolverOptions] = None,
    limit: Optional[int] = None,
) -> Iterator[Dict[int, int]]:
    """Yield every optimal assignment (deterministic order).

    For pure satisfaction instances every model is "optimal".  Stops
    early after ``limit`` solutions.  Budgets inside ``options`` apply to
    each solve individually; a budget expiry stops the enumeration.
    """
    options = options or SolverOptions()
    first = BsoloSolver(instance, options).solve()
    if first.status not in (OPTIMAL, SATISFIABLE):
        return
    optimum = first.best_cost
    internal_optimum = optimum - instance.objective.offset

    extra: List[Constraint] = []
    if not instance.objective.is_constant:
        cost_cap = Constraint.less_equal(
            [(cost, var) for var, cost in instance.objective.costs.items()],
            internal_optimum,
        )
        if not cost_cap.is_tautology:
            extra.append(cost_cap)

    count = 0
    assignment = first.best_assignment
    while True:
        yield dict(assignment)
        count += 1
        if limit is not None and count >= limit:
            return
        # block this exact assignment
        blocking = Constraint.clause(
            [-var if value else var for var, value in sorted(assignment.items())]
        )
        extra.append(blocking)
        try:
            narrowed = PBInstance(
                list(instance.constraints) + extra,
                instance.objective,
                num_variables=instance.num_variables,
            )
        except ValueError:
            return  # blocking clause unsatisfiable: single total assignment
        # covering reductions keep only *some* optimum: disable while
        # enumerating
        next_options = _without_reductions(options)
        result = BsoloSolver(narrowed, next_options).solve()
        if result.status not in (OPTIMAL, SATISFIABLE):
            return
        if result.best_cost != optimum:
            return
        assignment = result.best_assignment


def count_optimal(
    instance: PBInstance,
    options: Optional[SolverOptions] = None,
    limit: int = 1000,
) -> int:
    """The number of optimal assignments (capped at ``limit``)."""
    return sum(1 for _ in enumerate_optimal(instance, options, limit=limit))


def _without_reductions(options: SolverOptions) -> SolverOptions:
    clone = SolverOptions(
        lower_bound=options.lower_bound,
        lb_frequency=options.lb_frequency,
        bound_conflict_learning=options.bound_conflict_learning,
        upper_bound_cuts=options.upper_bound_cuts,
        cardinality_cuts=options.cardinality_cuts,
        lp_guided_branching=options.lp_guided_branching,
        time_limit=options.time_limit,
        max_conflicts=options.max_conflicts,
        max_decisions=options.max_decisions,
    )
    clone.covering_reductions = False
    return clone
