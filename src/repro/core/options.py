"""Configuration for the bsolo solver.

The option set mirrors the paper's experimental matrix: the lower bound
method is one of ``plain`` (none), ``mis``, ``lgr``, ``lpr`` (Table 1
columns), and the additional techniques of Sections 4-5 can be toggled
individually for the ablation benchmarks.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

#: Lower bound method names (Table 1 column labels).
PLAIN = "plain"
MIS = "mis"
LGR = "lgr"
LPR = "lpr"
#: Extension: cheap MIS pre-filter, LP relaxation only when it fails.
HYBRID = "hybrid"

_METHODS = (PLAIN, MIS, LGR, LPR, HYBRID)

#: Bound scheduling policies (see :mod:`repro.core.lb_schedule`).
STATIC = "static"
ADAPTIVE = "adaptive"

_SCHEDULES = (STATIC, ADAPTIVE)


class UnsupportedOptionError(ValueError):
    """A feature was requested from a solver that cannot honor it.

    Raised uniformly by the façade layers (``repro.api``, the sessions,
    the WBO front end) instead of silently ignoring the request — e.g.
    ``assumptions=`` passed to a baseline without assumption support, or
    ``proof=`` passed to an incremental session.
    """


class SolverOptions:
    """All tunables of :class:`~repro.core.solver.BsoloSolver`."""

    def __init__(
        self,
        lower_bound: str = LPR,
        lb_frequency: int = 1,
        lb_schedule: str = STATIC,
        incremental_bounds: bool = True,
        bound_conflict_learning: bool = True,
        upper_bound_cuts: bool = True,
        cardinality_cuts: bool = True,
        lp_guided_branching: bool = True,
        lgr_alpha_refinement: bool = True,
        preprocess: bool = True,
        probing_implications: int = 0,
        covering_reductions: bool = True,
        restarts: bool = False,
        restart_interval: int = 100,
        phase_saving: bool = False,
        pb_learning: bool = False,
        propagation: str = "counter",
        on_new_solution=None,
        time_limit: Optional[float] = None,
        max_conflicts: Optional[int] = None,
        max_decisions: Optional[int] = None,
        vsids_decay: float = 0.95,
        lgr_iterations: int = 60,
        lp_max_iterations: int = 3000,
        max_learned: Optional[int] = 20000,
        tracer=None,
        profile: bool = False,
        metrics=None,
        hotspot=None,
        on_progress=None,
        progress_interval: int = 1000,
        on_incumbent=None,
        external_bound=None,
        should_stop=None,
        poll_interval: int = 16,
        proof=None,
    ):
        if lower_bound not in _METHODS:
            raise ValueError(
                "lower_bound must be one of %s, got %r" % (_METHODS, lower_bound)
            )
        if lb_frequency < 1:
            raise ValueError("lb_frequency must be >= 1")
        if lb_schedule not in _SCHEDULES:
            raise ValueError(
                "lb_schedule must be one of %s, got %r" % (_SCHEDULES, lb_schedule)
            )
        if progress_interval < 1:
            raise ValueError("progress_interval must be >= 1")
        if poll_interval < 1:
            raise ValueError("poll_interval must be >= 1")
        if proof is not None and external_bound is not None:
            raise ValueError(
                "proof logging is incompatible with external_bound: an "
                "imported bound has no derivation the checker could replay"
            )
        #: Which lower bound estimation procedure to run (Section 3).
        self.lower_bound = lower_bound
        #: Estimate the bound every k-th decision node (1 = every node).
        self.lb_frequency = lb_frequency
        #: Bound scheduling policy: ``"static"`` reproduces the classic
        #: modulo-``lb_frequency`` check; ``"adaptive"`` adjusts the
        #: bounding interval from the recent prune rate and skips or
        #: escalates the hybrid MIS pre-filter from its recent payoff
        #: (see :mod:`repro.core.lb_schedule`).
        self.lb_schedule = lb_schedule
        #: Feed trail deltas to the bounders so MIS re-evaluates only the
        #: constraints touched since the previous call and the LP bound
        #: re-solves from its previous basis (warm start).  Disabling
        #: restores the cold per-node computations.
        self.incremental_bounds = incremental_bounds
        #: Learn w_bc and backtrack non-chronologically on bound conflicts
        #: (Section 4).  When False, bound conflicts backtrack
        #: chronologically over the full decision path (the
        #: "straightforward approach" of Section 4.1).
        self.bound_conflict_learning = bound_conflict_learning
        #: Add the knapsack constraint (eq. 10) on each improved solution.
        self.upper_bound_cuts = upper_bound_cuts
        #: Infer constraints from cardinality constraints (eq. 11-13).
        self.cardinality_cuts = cardinality_cuts
        #: Branch on the most fractional LP variable, VSIDS ties
        #: (Section 5); only effective with lower_bound == "lpr".
        self.lp_guided_branching = lp_guided_branching
        #: Apply the Section 4.3 alpha_j refinement to Lagrangian
        #: explanations.
        self.lgr_alpha_refinement = lgr_alpha_refinement
        #: Probing for necessary assignments before search (Section 6).
        self.preprocess = preprocess
        #: Binary implication clauses collected while probing (the
        #: Savelsbergh/[6] constraint-strengthening flavour); 0 disables.
        self.probing_implications = probing_implications
        #: Covering-matrix reductions (essentiality, subsumption,
        #: dominance — paper refs [5, 7, 15]) applied when the instance
        #: is clause-only.
        self.covering_reductions = covering_reductions
        #: Luby restarts (post-paper extension; learned clauses and the
        #: incumbent survive a restart, so completeness is unaffected).
        self.restarts = restarts
        self.restart_interval = restart_interval
        #: Branch toward the variable's previous value instead of 0.
        self.phase_saving = phase_saving
        #: Learn cutting-plane resolvents alongside first-UIP clauses
        #: (Galena-style PB learning; post-paper extension).
        self.pb_learning = pb_learning
        #: Propagation backend name (``repro.engine.available_engines()``):
        #: ``"counter"`` for eager slack counters (the reference engine),
        #: ``"watched"`` for watched-literal/watched-sum propagation,
        #: ``"array"`` for the vectorized CSR/numpy engine.
        #: Validated lazily by ``make_engine`` so third-party backends
        #: registered after option construction still work.
        self.propagation = propagation
        #: Progress callback ``(cost, assignment) -> None`` invoked on
        #: every improving solution (cost includes the objective offset).
        self.on_new_solution = on_new_solution
        #: Wall-clock budget in seconds (None = unlimited).
        self.time_limit = time_limit
        #: Conflict budget (None = unlimited).
        self.max_conflicts = max_conflicts
        #: Decision budget (None = unlimited).
        self.max_decisions = max_decisions
        self.vsids_decay = vsids_decay
        #: Subgradient iterations per Lagrangian bound call.
        self.lgr_iterations = lgr_iterations
        #: Simplex iteration cap per LP call.
        self.lp_max_iterations = lp_max_iterations
        #: Learned-clause cap; above it the oldest long clauses are
        #: forgotten (None = keep everything).
        self.max_learned = max_learned
        #: Trace sink (:class:`repro.obs.trace.Tracer`); None = no
        #: tracing, with zero per-event overhead (null-tracer path).
        self.tracer = tracer
        #: Collect per-phase wall times into ``stats.phase_times``.
        self.profile = profile
        #: Metrics registry (:class:`repro.obs.metrics.MetricsRegistry`);
        #: None = no metrics, with zero per-update overhead (the solver
        #: resolves instruments once and guards hot paths on a cached
        #: enabled flag — the null-tracer discipline).
        self.metrics = metrics
        #: Hotspot profiler (:class:`repro.obs.prof.HotspotProfiler`);
        #: when set the solver runs it around the solve, scoping samples
        #: to the phase timer's phases (forces ``profile`` accounting).
        self.hotspot = hotspot
        #: Periodic callback ``(stats, best, lower) -> None`` fired every
        #: ``progress_interval`` conflicts; ``best`` is the incumbent cost
        #: (offset included, None before the first solution) and ``lower``
        #: the most recent lower-bound estimate ``path + bound`` (None
        #: before the first bound call).
        self.on_progress = on_progress
        self.progress_interval = progress_interval
        #: Incumbent callback ``(cost, assignment) -> None`` fired on
        #: every improving solution (cost includes the objective offset).
        #: The portfolio runner uses this to publish incumbents to the
        #: other workers; fires alongside the legacy ``on_new_solution``.
        self.on_incumbent = on_incumbent
        #: Cooperative bound import: a zero-argument callable returning
        #: the best cost known *outside* this solver (offset included),
        #: or None.  Polled every ``poll_interval`` search steps; a value
        #: below the current upper bound tightens it exactly as if a
        #: solution of that cost had been found locally (eq. 10 cuts are
        #: generated from the imported bound too).
        self.external_bound = external_bound
        #: Cooperative interrupt: a zero-argument callable returning True
        #: when the solver should stop and report its best-so-far (the
        #: portfolio runner passes ``Event.is_set``).  Polled together
        #: with ``external_bound``.
        self.should_stop = should_stop
        #: Search steps between polls of ``external_bound``/``should_stop``.
        self.poll_interval = poll_interval
        #: Proof sink (:class:`repro.certify.ProofLogger`); when set the
        #: solver records a checkable cutting-planes derivation of its
        #: answer (see ``docs/PROOFS.md``).  Proof mode disables
        #: covering-matrix reductions (their strengthenings are not
        #: implication-sound) and self-checks every bound certificate,
        #: declining prunes it cannot justify — correctness is unchanged,
        #: search may take longer.
        self.proof = proof

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """JSON-safe scalar knobs, for trace run headers."""
        return {
            "lower_bound": self.lower_bound,
            "lb_frequency": self.lb_frequency,
            "lb_schedule": self.lb_schedule,
            "incremental_bounds": self.incremental_bounds,
            "bound_conflict_learning": self.bound_conflict_learning,
            "upper_bound_cuts": self.upper_bound_cuts,
            "cardinality_cuts": self.cardinality_cuts,
            "lp_guided_branching": self.lp_guided_branching,
            "lgr_alpha_refinement": self.lgr_alpha_refinement,
            "preprocess": self.preprocess,
            "probing_implications": self.probing_implications,
            "covering_reductions": self.covering_reductions,
            "restarts": self.restarts,
            "restart_interval": self.restart_interval,
            "phase_saving": self.phase_saving,
            "pb_learning": self.pb_learning,
            "propagation": self.propagation,
            "time_limit": self.time_limit,
            "max_conflicts": self.max_conflicts,
            "max_decisions": self.max_decisions,
            "vsids_decay": self.vsids_decay,
            "lgr_iterations": self.lgr_iterations,
            "lp_max_iterations": self.lp_max_iterations,
            "max_learned": self.max_learned,
            "profile": self.profile,
            "progress_interval": self.progress_interval,
            "poll_interval": self.poll_interval,
        }

    # ------------------------------------------------------------------
    def as_kwargs(self) -> Dict[str, Any]:
        """Every constructor argument with its current value (callbacks
        and tracer included), suitable for ``SolverOptions(**kwargs)``."""
        kwargs = self.describe()
        kwargs.update(
            on_new_solution=self.on_new_solution,
            tracer=self.tracer,
            metrics=self.metrics,
            hotspot=self.hotspot,
            on_progress=self.on_progress,
            on_incumbent=self.on_incumbent,
            external_bound=self.external_bound,
            should_stop=self.should_stop,
            proof=self.proof,
        )
        return kwargs

    def replace(self, **overrides) -> "SolverOptions":
        """A copy of these options with some fields overridden."""
        kwargs = self.as_kwargs()
        unknown = set(overrides) - set(kwargs)
        if unknown:
            raise TypeError(
                "unknown option(s): %s" % ", ".join(sorted(unknown))
            )
        kwargs.update(overrides)
        return SolverOptions(**kwargs)

    # ------------------------------------------------------------------
    @classmethod
    def plain(cls, **kwargs) -> "SolverOptions":
        """bsolo with no lower bounding (Table 1 column "plain")."""
        return cls(lower_bound=PLAIN, **kwargs)

    @classmethod
    def with_mis(cls, **kwargs) -> "SolverOptions":
        """Options preset: MIS lower bounding (Section 3.1)."""
        return cls(lower_bound=MIS, **kwargs)

    @classmethod
    def with_lgr(cls, **kwargs) -> "SolverOptions":
        """Options preset: Lagrangian-relaxation bounding (Section 3.2)."""
        return cls(lower_bound=LGR, **kwargs)

    @classmethod
    def with_lpr(cls, **kwargs) -> "SolverOptions":
        """Options preset: LP-relaxation bounding (Section 3.3)."""
        return cls(lower_bound=LPR, **kwargs)

    def __repr__(self) -> str:
        return "SolverOptions(lower_bound=%r)" % self.lower_bound


def merge_solver_options(options: Optional[SolverOptions], **legacy) -> SolverOptions:
    """Combine an optional :class:`SolverOptions` with legacy per-solver
    keyword overrides (``time_limit=...`` etc.); explicitly passed
    (non-None, non-False) legacy values win over the options object.

    The baseline solvers accept both styles — the uniform
    ``(instance, options)`` constructor of the registry and their
    original keyword arguments — and funnel both through this helper.
    """
    base = options if options is not None else SolverOptions()
    effective = {
        key: value
        for key, value in legacy.items()
        if value is not None and value is not False
    }
    if not effective:
        return base
    return base.replace(**effective)
