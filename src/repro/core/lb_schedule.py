"""Bound-call scheduling policies.

The paper computes a lower bound at *every* search node; our
``lb_frequency`` option generalized that to every k-th node, statically.
This module turns the decision into a policy object consulted by
:meth:`BsoloSolver._should_bound`:

``StaticSchedule``
    Bit-compatible with the historical behaviour: bound when
    ``(node_counter - 1) % lb_frequency == 0``.

``AdaptiveSchedule``
    Tracks an exponentially weighted prune rate.  While bound calls keep
    pruning, the interval between calls shrinks (down to every node);
    when calls stop paying for themselves the interval doubles (up to a
    cap), so deep dives through unprunable regions stop paying the LP
    tax at every node.  For hybrid mode it also tracks how often the
    cheap MIS pre-filter is the one that prunes: when MIS has not pruned
    anything recently the pre-filter is skipped and the node escalates
    straight to the expensive bounder, with a periodic re-probe so MIS
    can win back its slot after the incumbent tightens.

Both policies expose ``stats_dict`` (merged into
``SolverStats.lb_stats["scheduler"]``) so benchmark reports can show the
effective bounding rate.
"""

from __future__ import annotations

from typing import Dict

#: EWMA smoothing for prune/payoff rates (one bound call = one sample).
_EWMA_ALPHA = 0.15
#: Prune rate above which the interval shrinks, below which it grows.
_GROW_BELOW = 0.05
_SHRINK_ABOVE = 0.20
#: Re-probe a benched MIS pre-filter after this many skips.
_PREFILTER_RETRY = 64
#: MIS payoff below which the pre-filter is benched.
_PREFILTER_MIN_RATE = 0.02


class StaticSchedule:
    """The classic modulo-``lb_frequency`` policy."""

    name = "static"

    def __init__(self, lb_frequency: int):
        self._frequency = lb_frequency
        self._node_counter = 0
        self.calls = 0

    def should_bound(self) -> bool:
        """Called once per candidate node; True = compute a bound now."""
        self._node_counter += 1
        decided = (self._node_counter - 1) % self._frequency == 0
        if decided:
            self.calls += 1
        return decided

    def record(self, pruned: bool, seconds: float, method: str) -> None:
        """Outcome feedback — ignored: the static policy never adapts."""

    def use_prefilter(self) -> bool:
        """Hybrid MIS pre-filter gate (always on for static)."""
        return True

    def stats_dict(self) -> Dict[str, float]:
        """Structured scheduling counters for ``SolverStats``."""
        return {
            "policy": self.name,
            "nodes_seen": self._node_counter,
            "bound_calls": self.calls,
        }


class AdaptiveSchedule:
    """Prune-rate-driven interval control with MIS escalation."""

    name = "adaptive"

    def __init__(self, lb_frequency: int, max_interval: int = 64):
        # The configured frequency seeds the interval so an explicitly
        # sparse configuration starts sparse; adaptation takes over from
        # the first recorded outcome.
        self._interval = max(1, lb_frequency)
        self._max_interval = max(max_interval, self._interval)
        self._since_last = 0
        self._node_counter = 0
        self._prune_rate = 0.5  # optimistic prior: bound early, learn fast
        self._prefilter_rate = 0.5
        self._prefilter_skips = 0
        self.calls = 0
        self.skipped_nodes = 0
        self.prefilter_skips_total = 0
        self.interval_min = self._interval
        self.interval_max = self._interval

    # ------------------------------------------------------------------
    def should_bound(self) -> bool:
        """Called once per candidate node; True = compute a bound now."""
        self._node_counter += 1
        self._since_last += 1
        if self._since_last < self._interval:
            self.skipped_nodes += 1
            return False
        self._since_last = 0
        self.calls += 1
        return True

    def record(self, pruned: bool, seconds: float, method: str) -> None:
        """Feed one bound-call outcome back into the policy.

        ``method`` is the bounder that produced the result ("mis" when
        the hybrid pre-filter pruned on its own).  ``seconds`` is the
        call's cost; it weighs the growth step: expensive useless calls
        back off faster than cheap ones.
        """
        sample = 1.0 if pruned else 0.0
        self._prune_rate += _EWMA_ALPHA * (sample - self._prune_rate)
        if method == "mis":
            self._prefilter_rate += _EWMA_ALPHA * (1.0 - self._prefilter_rate)
        elif pruned:
            # The expensive bounder pruned where MIS did not.
            self._prefilter_rate += _EWMA_ALPHA * (0.0 - self._prefilter_rate)
        if pruned or self._prune_rate >= _SHRINK_ABOVE:
            if self._interval > 1:
                self._interval //= 2
        elif self._prune_rate < _GROW_BELOW:
            # Expensive calls (> 10ms) that do not prune double the
            # interval immediately; cheap ones need a sustained drought.
            if seconds > 0.01 or self._prune_rate < _GROW_BELOW / 2:
                if self._interval < self._max_interval:
                    self._interval *= 2
        self.interval_min = min(self.interval_min, self._interval)
        self.interval_max = max(self.interval_max, self._interval)

    def use_prefilter(self) -> bool:
        """Whether the hybrid MIS pre-filter is worth running this call.

        Benched when its recent payoff is negligible; re-probed every
        ``_PREFILTER_RETRY`` skipped calls so a tightened incumbent can
        bring it back.
        """
        if self._prefilter_rate >= _PREFILTER_MIN_RATE:
            return True
        self._prefilter_skips += 1
        self.prefilter_skips_total += 1
        if self._prefilter_skips >= _PREFILTER_RETRY:
            self._prefilter_skips = 0
            self._prefilter_rate = _PREFILTER_MIN_RATE  # probation
            return True
        return False

    def stats_dict(self) -> Dict[str, float]:
        """Structured scheduling counters for ``SolverStats``."""
        return {
            "policy": self.name,
            "nodes_seen": self._node_counter,
            "bound_calls": self.calls,
            "skipped_nodes": self.skipped_nodes,
            "interval": self._interval,
            "interval_min": self.interval_min,
            "interval_max": self.interval_max,
            "prune_rate": round(self._prune_rate, 4),
            "prefilter_rate": round(self._prefilter_rate, 4),
            "prefilter_skips": self.prefilter_skips_total,
        }


def make_schedule(options) -> StaticSchedule:
    """Policy object for ``options.lb_schedule``."""
    if options.lb_schedule == "adaptive":
        return AdaptiveSchedule(options.lb_frequency)
    return StaticSchedule(options.lb_frequency)
