"""Independent verification of solver results.

A solver's answer is only as trustworthy as its implementation; this
module re-checks results with machinery independent of the search:

* **feasibility**: the reported assignment satisfies every constraint
  and its cost matches ``best_cost``;
* **optimality certificate**: adding ``sum c_j x_j <= best - 1`` must
  make the instance unsatisfiable — proven by a *different* solver
  configuration (default: the PBS-like linear search, which shares no
  branch-and-bound machinery with bsolo);
* **unsatisfiability**: cross-checked by the independent solver.

Used by the test-suite's differential harness and available to users via
:func:`verify_result`.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..pb.instance import PBInstance
from .cuts import CutGenerator
from .result import OPTIMAL, SATISFIABLE, SolveResult, UNSATISFIABLE


class VerificationError(AssertionError):
    """The result failed an independent check."""


def _default_prover(instance: PBInstance, time_limit: Optional[float]):
    from ..baselines.linear_search import LinearSearchSolver

    return LinearSearchSolver(instance, time_limit=time_limit).solve()


def verify_result(
    instance: PBInstance,
    result: SolveResult,
    prover: Optional[Callable[[PBInstance, Optional[float]], SolveResult]] = None,
    time_limit: Optional[float] = None,
) -> bool:
    """Verify ``result`` against ``instance``.

    Returns True on success; raises :class:`VerificationError` with a
    description otherwise.  A ``prover`` may be supplied (a callable
    ``(instance, time_limit) -> SolveResult``); when the prover itself
    exceeds its budget the optimality part is reported as unverified by
    returning True with no exception (feasibility is always enforced).
    """
    prover = prover or _default_prover

    if result.status == UNSATISFIABLE:
        check = prover(instance, time_limit)
        if check.status in (SATISFIABLE, OPTIMAL):
            raise VerificationError(
                "solver said UNSATISFIABLE but the prover found %r" % (check,)
            )
        return True

    if result.status in (OPTIMAL, SATISFIABLE):
        _check_feasibility(instance, result)
    if result.status != OPTIMAL:
        return True

    # Optimality: no strictly better solution may exist.
    internal_cost = result.best_cost - instance.objective.offset
    cut = CutGenerator(instance).knapsack_cut(internal_cost)
    if cut is None:
        # cost is already the minimum conceivable (0 over costed vars)
        return True
    try:
        improved = PBInstance(
            list(instance.constraints) + [cut],
            instance.objective,
            num_variables=instance.num_variables,
        )
    except ValueError:
        return True  # the cut is individually unsatisfiable: nothing better
    check = prover(improved, time_limit)
    if check.status in (SATISFIABLE, OPTIMAL):
        raise VerificationError(
            "claimed optimum %d, but the prover found a better solution %r"
            % (result.best_cost, check.best_cost)
        )
    if check.status == UNSATISFIABLE:
        return True
    return True  # prover budget exceeded: optimality unverified


def _check_feasibility(instance: PBInstance, result: SolveResult) -> None:
    assignment = result.best_assignment
    if assignment is None:
        raise VerificationError("solved status without an assignment")
    missing = [var for var in instance.variables() if var not in assignment]
    if missing:
        raise VerificationError("assignment misses variables %s" % missing[:5])
    for constraint in instance.constraints:
        if not constraint.is_satisfied_by(assignment):
            raise VerificationError("assignment violates %r" % (constraint,))
    if result.best_cost is not None:
        actual = instance.cost(assignment)
        if actual != result.best_cost:
            raise VerificationError(
                "reported cost %d but the assignment costs %d"
                % (result.best_cost, actual)
            )
