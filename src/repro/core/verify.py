"""Independent verification of solver results.

A solver's answer is only as trustworthy as its implementation; this
module re-checks results with machinery independent of the search:

* **feasibility**: the reported assignment satisfies every constraint
  and its cost matches ``best_cost``;
* **optimality certificate**: adding ``sum c_j x_j <= best - 1`` must
  make the instance unsatisfiable — proven by a *different* solver
  configuration (default: the PBS-like linear search, which shares no
  branch-and-bound machinery with bsolo);
* **unsatisfiability**: cross-checked by the independent solver.

:func:`verify_result` returns a structured :class:`VerifyOutcome`
distinguishing *verified* (every applicable certificate was established)
from *unverified* (the checks that ran passed, but the prover's budget
expired before the optimality/unsatisfiability certificate landed).
Outright refutation raises :class:`VerificationError`.  For answers that
must be checkable without trusting *any* solver, see the proof-logging
path instead (:mod:`repro.certify`, ``SolverOptions(proof=...)``).

Used by the test-suite's differential harness and available to users via
:func:`verify_result`.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from ..pb.instance import PBInstance
from .cuts import CutGenerator
from .result import OPTIMAL, SATISFIABLE, SolveResult, UNSATISFIABLE


class VerificationError(AssertionError):
    """The result failed an independent check."""


class VerifyOutcome:
    """Structured verdict of :func:`verify_result`.

    ``status`` is ``"verified"`` when every check applicable to the
    result's claim ran and passed, or ``"unverified"`` when the checks
    that ran all passed but the independent prover exhausted its budget
    before certifying optimality/unsatisfiability — an honest "could not
    confirm", which older callers used to receive as an undistinguished
    ``True``.  A check *failing* never produces an outcome: it raises
    :class:`VerificationError`.

    Instances are always truthy (``assert verify_result(...)`` keeps
    working); branch on :attr:`verified` to treat budget-exhausted runs
    distinctly.
    """

    VERIFIED = "verified"
    UNVERIFIED = "unverified"

    __slots__ = ("status", "checks", "detail")

    def __init__(self, status: str, checks: Tuple[str, ...], detail: str = ""):
        #: ``"verified"`` or ``"unverified"``.
        self.status = status
        #: Names of the checks that ran and passed, in order.
        self.checks = checks
        #: Human-readable note (why the result stayed unverified).
        self.detail = detail

    @property
    def verified(self) -> bool:
        """True when every applicable certificate was established."""
        return self.status == self.VERIFIED

    def __bool__(self) -> bool:
        return True

    def __repr__(self) -> str:
        extra = " (%s)" % self.detail if self.detail else ""
        return "VerifyOutcome(%s: %s%s)" % (
            self.status, "+".join(self.checks) or "none", extra
        )


def _default_prover(instance: PBInstance, time_limit: Optional[float]):
    from ..baselines.linear_search import LinearSearchSolver

    return LinearSearchSolver(instance, time_limit=time_limit).solve()


def verify_result(
    instance: PBInstance,
    result: SolveResult,
    prover: Optional[Callable[[PBInstance, Optional[float]], SolveResult]] = None,
    time_limit: Optional[float] = None,
) -> VerifyOutcome:
    """Verify ``result`` against ``instance``.

    Returns a :class:`VerifyOutcome` (always truthy); raises
    :class:`VerificationError` when a check refutes the result.  A
    ``prover`` may be supplied (a callable ``(instance, time_limit) ->
    SolveResult``); when the prover returns without an answer (budget
    exhausted) the outcome's status is ``"unverified"`` rather than a
    silent pass — feasibility is always enforced first.
    """
    prover = prover or _default_prover

    if result.status == UNSATISFIABLE:
        check = prover(instance, time_limit)
        if check.status in (SATISFIABLE, OPTIMAL):
            raise VerificationError(
                "solver said UNSATISFIABLE but the prover found %r" % (check,)
            )
        if check.status != UNSATISFIABLE:
            return VerifyOutcome(
                VerifyOutcome.UNVERIFIED,
                (),
                "prover returned %s before certifying unsatisfiability"
                % check.status,
            )
        return VerifyOutcome(VerifyOutcome.VERIFIED, ("unsatisfiability",))

    checks: Tuple[str, ...] = ()
    if result.status in (OPTIMAL, SATISFIABLE):
        _check_feasibility(instance, result)
        checks = ("feasibility", "cost")
    if result.status != OPTIMAL:
        return VerifyOutcome(VerifyOutcome.VERIFIED, checks)

    # Optimality: no strictly better solution may exist.
    internal_cost = result.best_cost - instance.objective.offset
    cut = CutGenerator(instance).knapsack_cut(internal_cost)
    if cut is None:
        # cost is already the minimum conceivable (0 over costed vars)
        return VerifyOutcome(VerifyOutcome.VERIFIED, checks + ("optimality",))
    try:
        improved = PBInstance(
            list(instance.constraints) + [cut],
            instance.objective,
            num_variables=instance.num_variables,
        )
    except ValueError:
        # the cut is individually unsatisfiable: nothing better exists
        return VerifyOutcome(VerifyOutcome.VERIFIED, checks + ("optimality",))
    check = prover(improved, time_limit)
    if check.status in (SATISFIABLE, OPTIMAL):
        raise VerificationError(
            "claimed optimum %d, but the prover found a better solution %r"
            % (result.best_cost, check.best_cost)
        )
    if check.status == UNSATISFIABLE:
        return VerifyOutcome(VerifyOutcome.VERIFIED, checks + ("optimality",))
    return VerifyOutcome(
        VerifyOutcome.UNVERIFIED,
        checks,
        "prover returned %s before certifying optimality" % check.status,
    )


def _check_feasibility(instance: PBInstance, result: SolveResult) -> None:
    assignment = result.best_assignment
    if assignment is None:
        raise VerificationError("solved status without an assignment")
    missing = [var for var in instance.variables() if var not in assignment]
    if missing:
        raise VerificationError("assignment misses variables %s" % missing[:5])
    for constraint in instance.constraints:
        if not constraint.is_satisfied_by(assignment):
            raise VerificationError("assignment violates %r" % (constraint,))
    if result.best_cost is not None:
        actual = instance.cost(assignment)
        if actual != result.best_cost:
            raise VerificationError(
                "reported cost %d but the assignment costs %d"
                % (result.best_cost, actual)
            )
