"""Constraint generation from improved solutions (paper Section 5).

Two families of cuts are added whenever a better solution (upper bound
``ub``) is found:

* the *knapsack constraint* (eq. 10)::

      sum_j c_j x_j <= ub - 1

  which forces every later solution to improve on the incumbent, and

* *cardinality-derived* constraints (eq. 11-13): for each cardinality
  constraint ``sum_{j in K} x_j >= U`` over positive literals, any
  solution pays at least ``V`` = the sum of the ``U`` smallest costs in
  ``K``, hence::

      sum_{j in N-K} c_j x_j <= ub - 1 - V

A cut whose right-hand side is negative proves that no better solution
exists at all — the caller can declare the incumbent optimal.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..pb.constraints import Constraint
from ..pb.instance import PBInstance


class CutGenerator:
    """Produces eq. 10 / eq. 13 cuts for a given instance."""

    def __init__(self, instance: PBInstance, cardinality_cuts: bool = True):
        self._objective = instance.objective
        self._cardinality_cuts = cardinality_cuts
        # Pre-extract the cardinality constraints usable by eq. 11: all
        # literals positive (the "smallest costs" argument needs x_j = 1
        # to be what pays).  The source constraints themselves are kept
        # so each emitted cut can name the input it was derived from
        # (proof logging references cuts by source id).
        self._cardinalities: List[Constraint] = []
        if cardinality_cuts:
            for constraint in instance.constraints:
                if not constraint.is_cardinality:
                    continue
                if any(lit < 0 for lit in constraint.literals):
                    continue
                if constraint.cardinality_threshold >= 1:
                    self._cardinalities.append(constraint)

    # ------------------------------------------------------------------
    def knapsack_cut(self, upper: int) -> Optional[Constraint]:
        """Eq. 10: require cost at most ``upper - 1`` (path-cost scale,
        i.e. excluding the objective offset)."""
        costs = self._objective.costs
        if not costs:
            return None
        terms = [(cost, var) for var, cost in costs.items()]
        cut = Constraint.less_equal(terms, upper - 1)
        if cut.is_tautology:
            return None
        return cut

    def cardinality_cuts_with_sources(
        self, upper: int
    ) -> Tuple[List[Tuple[Constraint, Constraint]], Optional[Constraint]]:
        """Eq. 13 cuts for the new ``upper``, each paired with its source.

        Returns ``(pairs, proven_source)``: ``pairs`` holds
        ``(cut, source_cardinality_constraint)`` and ``proven_source`` is
        the input whose cut's rhs went negative (eq. 12's ``V`` alone
        reaches the bound, so the incumbent is optimal), or None.
        """
        pairs: List[Tuple[Constraint, Constraint]] = []
        if not self._cardinality_cuts:
            return pairs, None
        costs = self._objective.costs
        if not costs:
            return pairs, None
        for source in self._cardinalities:
            members = source.literals
            threshold = source.cardinality_threshold
            member_costs = sorted(costs.get(var, 0) for var in members)
            value_v = sum(member_costs[:threshold])
            if value_v <= 0:
                continue  # eq. 12 gives nothing
            budget = upper - 1 - value_v
            member_set = set(members)
            outside = [
                (cost, var)
                for var, cost in costs.items()
                if var not in member_set
            ]
            if budget < 0:
                return pairs, source
            if not outside:
                continue
            total_outside = sum(cost for cost, _ in outside)
            if total_outside <= budget:
                continue  # tautology
            pairs.append((Constraint.less_equal(outside, budget), source))
        return pairs, None

    def cardinality_cuts(self, upper: int) -> Tuple[List[Constraint], bool]:
        """Eq. 13 cuts for the new ``upper``.

        Returns ``(cuts, optimum_proven)``; the flag is True when some
        cut's rhs went negative (eq. 12's ``V`` alone reaches the bound).
        """
        pairs, proven = self.cardinality_cuts_with_sources(upper)
        return [cut for cut, _ in pairs], proven is not None

    def cuts_for(self, upper: int) -> Tuple[List[Constraint], bool]:
        """All cuts triggered by a solution of cost ``upper``."""
        cuts: List[Constraint] = []
        knapsack = self.knapsack_cut(upper)
        if knapsack is not None:
            cuts.append(knapsack)
        card_cuts, proven = self.cardinality_cuts(upper)
        cuts.extend(card_cuts)
        return cuts, proven
