"""Search statistics collected by the solvers."""

from __future__ import annotations

from typing import Any, Dict


class SolverStats:
    """Counters describing one solve run."""

    def __init__(self):
        #: Branching decisions made.
        self.decisions = 0
        #: Logic conflicts (violated constraints).
        self.logic_conflicts = 0
        #: Bound conflicts (path + lower >= upper, paper Section 4).
        self.bound_conflicts = 0
        #: Implications discovered by propagation.
        self.propagations = 0
        #: Lower bound estimations performed.
        self.lower_bound_calls = 0
        #: Nodes pruned by the lower bound.
        self.prunings = 0
        #: Learned clauses (logic + bound).
        self.learned_constraints = 0
        #: Cutting-plane resolvents learned (pb_learning option).
        self.pb_resolvents = 0
        #: Cutting constraints added from improved solutions (Section 5).
        self.cuts_added = 0
        #: Solutions found (upper bound improvements).
        self.solutions_found = 0
        #: Sum over conflicts of (conflict level - backjump level); the
        #: excess over 1 measures non-chronological jumps.
        self.backjump_total = 0
        #: Largest single backjump.
        self.backjump_max = 0
        #: Necessary assignments found by preprocessing.
        self.necessary_assignments = 0
        #: Restarts performed by the scheduler.
        self.restarts = 0
        #: Variables resolved away during conflict analysis (first-UIP
        #: resolution steps; a proxy for analysis effort).
        self.resolution_steps = 0
        #: Periodic progress reports fired (callback and/or trace).
        self.progress_reports = 0
        #: Times an external (portfolio-shared) incumbent tightened the
        #: upper bound of this solver mid-search.
        self.external_bounds = 0
        #: Bound prunes declined in proof mode because no emitted
        #: certificate survived the logger's exact-arithmetic self-check.
        self.uncertified_prunes = 0
        #: The cooperative-interrupt hook ended the search early.
        self.interrupted = False
        #: Wall-clock seconds spent in solve().
        self.elapsed = 0.0
        #: Exclusive per-phase wall time (propagate / analyze /
        #: lower_bound.* / branching / cuts / preprocess); populated only
        #: when profiling is enabled, and sums to <= elapsed.
        self.phase_times: Dict[str, float] = {}
        #: Per-bounder detail (calls / iterations / seconds), keyed by
        #: lower-bound method name.
        self.lb_stats: Dict[str, Dict[str, float]] = {}

    @property
    def conflicts(self) -> int:
        """Total conflicts of both kinds."""
        return self.logic_conflicts + self.bound_conflicts

    def record_backjump(self, from_level: int, to_level: int) -> None:
        """Track a non-chronological backtrack of ``from - to`` levels."""
        jump = from_level - to_level
        self.backjump_total += jump
        if jump > self.backjump_max:
            self.backjump_max = jump

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot (``phase_times`` / ``lb_stats`` are
        nested dicts; everything else is a number)."""
        return {
            "decisions": self.decisions,
            "logic_conflicts": self.logic_conflicts,
            "bound_conflicts": self.bound_conflicts,
            "conflicts": self.conflicts,
            "propagations": self.propagations,
            "lower_bound_calls": self.lower_bound_calls,
            "prunings": self.prunings,
            "learned_constraints": self.learned_constraints,
            "pb_resolvents": self.pb_resolvents,
            "cuts_added": self.cuts_added,
            "solutions_found": self.solutions_found,
            "backjump_total": self.backjump_total,
            "backjump_max": self.backjump_max,
            "necessary_assignments": self.necessary_assignments,
            "restarts": self.restarts,
            "resolution_steps": self.resolution_steps,
            "progress_reports": self.progress_reports,
            "external_bounds": self.external_bounds,
            "uncertified_prunes": self.uncertified_prunes,
            "interrupted": self.interrupted,
            "elapsed": self.elapsed,
            "phase_times": dict(self.phase_times),
            "lb_stats": {key: dict(value) for key, value in self.lb_stats.items()},
        }

    def __repr__(self) -> str:
        return (
            "SolverStats(decisions=%d, conflicts=%d+%d, lb_calls=%d, elapsed=%.3fs)"
            % (
                self.decisions,
                self.logic_conflicts,
                self.bound_conflicts,
                self.lower_bound_calls,
                self.elapsed,
            )
        )
