"""Parallel portfolio solving (:class:`PortfolioSolver`).

Launches N diversified workers — bsolo under different
branching/restart/bounding configurations plus the baseline paradigms —
as separate processes, shares improving incumbents between them so every
worker can tighten its upper bound mid-search, enforces the run
deadline, and degrades gracefully when workers crash.

Typical use::

    from repro.portfolio import solve_portfolio

    result = solve_portfolio(instance, workers=4, time_limit=10.0)
    print(result.status, result.best_cost)
    print(result.stats.winner, result.stats.incumbents_shared)

Custom portfolios are lists of :class:`WorkerSpec`::

    from repro import SolverOptions
    from repro.portfolio import PortfolioSolver, WorkerSpec

    specs = [
        WorkerSpec("bsolo-lpr"),
        WorkerSpec("bsolo-mis", SolverOptions(restarts=True)),
        WorkerSpec("linear-search"),
    ]
    result = PortfolioSolver(instance, specs=specs, time_limit=30.0).solve()
"""

from .runner import PortfolioSolver, solve_portfolio
from .specs import WorkerSpec, default_specs
from .stats import PortfolioStats

__all__ = [
    "PortfolioSolver",
    "PortfolioStats",
    "WorkerSpec",
    "default_specs",
    "solve_portfolio",
]
