"""Aggregated statistics for a portfolio run.

:class:`PortfolioStats` extends the per-solver :class:`SolverStats` so a
portfolio result plugs into everything that already consumes stats (the
CLI's ``--stats``/``--stats-json``, the experiments' JSONL records, the
obs reports): the base counters hold the *sum over workers* — total
search effort bought with the wall-clock time in ``elapsed`` — and the
``portfolio`` section of :meth:`as_dict` holds the per-worker outcomes,
the incumbent-exchange traffic and the failure log.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.stats import SolverStats

#: Aggregate counters summed from the worker stats dicts.
_SUMMED_FIELDS = (
    "decisions",
    "logic_conflicts",
    "bound_conflicts",
    "propagations",
    "lower_bound_calls",
    "prunings",
    "learned_constraints",
    "pb_resolvents",
    "cuts_added",
    "solutions_found",
    "backjump_total",
    "necessary_assignments",
    "restarts",
    "resolution_steps",
    "progress_reports",
    "external_bounds",
)


class PortfolioStats(SolverStats):
    """Sum-over-workers counters plus portfolio-level accounting."""

    def __init__(self):
        super().__init__()
        #: One entry per worker: label, solver, outcome, timings, and the
        #: worker's own stats dict (or an ``error`` string on failure).
        self.workers: List[Dict[str, Any]] = []
        #: Incumbent messages received by the coordinator.
        self.incumbents_shared = 0
        #: Workers that crashed, were terminated, or died silently.
        self.failures = 0
        #: Label of the worker whose result became the portfolio's.
        self.winner: Optional[str] = None

    # ------------------------------------------------------------------
    def add_worker_result(self, label: str, solver: str, status: str,
                          cost: Optional[int], seconds: float,
                          stats_dict: Dict[str, Any],
                          obs: Optional[Dict[str, Any]] = None) -> None:
        """Record one worker's completed run.

        ``obs`` is the optional observability payload shipped back with
        the result (per-worker trace path, event count, and metrics
        snapshot); the trace fields land in the worker entry so reports
        can point at the raw per-worker files.
        """
        entry = {
            "label": label,
            "solver": solver,
            "status": status,
            "cost": cost,
            "seconds": round(seconds, 6),
            "stats": stats_dict,
        }
        if obs:
            if obs.get("trace_path"):
                entry["trace_path"] = obs["trace_path"]
                entry["trace_events"] = obs.get("trace_events", 0)
        self.workers.append(entry)
        for field in _SUMMED_FIELDS:
            value = stats_dict.get(field)
            if value:
                setattr(self, field, getattr(self, field) + int(value))
        jump = int(stats_dict.get("backjump_max") or 0)
        if jump > self.backjump_max:
            self.backjump_max = jump
        for phase, seconds_in_phase in (stats_dict.get("phase_times") or {}).items():
            self.phase_times[phase] = (
                self.phase_times.get(phase, 0.0) + seconds_in_phase
            )

    def add_worker_failure(self, label: str, solver: str, error: str) -> None:
        """Record a worker that crashed instead of returning."""
        self.failures += 1
        self.workers.append(
            {
                "label": label,
                "solver": solver,
                "status": "failed",
                "error": error,
            }
        )

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """Solver stats extended with the per-worker portfolio block."""
        data = super().as_dict()
        data["portfolio"] = {
            "workers": [dict(entry) for entry in self.workers],
            "incumbents_shared": self.incumbents_shared,
            "failures": self.failures,
            "winner": self.winner,
        }
        return data

    def __repr__(self) -> str:
        return "PortfolioStats(workers=%d, failures=%d, incumbents=%d, elapsed=%.3fs)" % (
            len(self.workers), self.failures, self.incumbents_shared, self.elapsed
        )
