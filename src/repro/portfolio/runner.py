"""Process-parallel portfolio solving with incumbent exchange.

Architecture (ParLS-PBO-style sharing on top of the repo's solvers):

* the coordinator forks one process per :class:`WorkerSpec`; every
  worker builds its solver through the :mod:`repro.api` registry, so a
  spec is nothing more than ``(solver_name, options)``;
* a shared integer (``multiprocessing.Value``) holds the best cost
  published by any worker; workers poll it through the
  ``external_bound`` hook and tighten their own upper bound mid-search
  (bsolo additionally regenerates its Section 5 cuts from the imported
  bound), and publish improvements through ``on_incumbent``;
* full incumbents (cost + model) flow to the coordinator over a queue,
  so the final result carries a witnessing model even when the worker
  that *proved* optimality never found one itself;
* a shared event implements cooperative interruption: the first proof
  (or the deadline) stops the remaining workers at their next poll;
  workers that ignore it past the grace period are terminated;
* a worker that crashes — or dies without reporting — is recorded in
  :class:`PortfolioStats` and the portfolio degrades to the survivors.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.options import SolverOptions
from ..core.result import (
    OPTIMAL,
    SATISFIABLE,
    SolveResult,
    UNKNOWN,
    UNSATISFIABLE,
)
from ..pb.instance import PBInstance
from .specs import WorkerSpec, default_specs
from .stats import PortfolioStats

#: Sentinel stored in the shared best-cost cell before any incumbent.
_NO_BOUND = 2 ** 62


def _worker_trace_path(trace_path: str, worker_id: int) -> str:
    """Per-worker trace file name (``<merged>.w<id>``)."""
    return "%s.w%d" % (trace_path, worker_id)


def _worker_main(worker_id, spec, instance, time_limit, best_value,
                 stop_event, channel, trace_path=None, collect_metrics=False):
    """Worker-process entry point: build the spec's solver with the
    exchange hooks installed and ship the result (or the error) back.

    With ``trace_path`` the worker writes its own crash-safe
    :class:`~repro.obs.trace.JsonlTracer` file (profiling forced on so
    phase times reach the merged report); with ``collect_metrics`` it
    runs a private :class:`~repro.obs.metrics.MetricsRegistry` whose
    snapshot travels back with the result for coordinator-side merging.
    """
    try:
        from ..api import make_solver

        base = spec.options if spec.options is not None else SolverOptions()
        limit = base.time_limit
        if time_limit is not None:
            limit = time_limit if limit is None else min(limit, time_limit)

        def publish(cost, model):
            with best_value.get_lock():
                if cost < best_value.value:
                    best_value.value = cost
            channel.put(("incumbent", worker_id, cost, model))

        def imported():
            cost = best_value.value
            return cost if cost < _NO_BOUND else None

        overrides: Dict[str, Any] = dict(
            time_limit=limit,
            on_incumbent=publish,
            external_bound=imported,
            should_stop=stop_event.is_set,
        )
        tracer = None
        registry = None
        if trace_path is not None:
            from ..obs.trace import JsonlTracer

            tracer = JsonlTracer(trace_path)
            tracer.instance_label = spec.label
            overrides.update(tracer=tracer, profile=True)
        if collect_metrics:
            from ..obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
            overrides["metrics"] = registry
        options = base.replace(**overrides)
        solver = make_solver(instance, spec.solver, options)
        result = solver.solve()
        if tracer is not None:
            tracer.close()
        obs: Optional[Dict[str, Any]] = None
        if tracer is not None or registry is not None:
            obs = {
                "trace_path": trace_path,
                "trace_events": tracer.events_emitted if tracer else 0,
                "metrics": registry.snapshot() if registry is not None else None,
            }
        channel.put(("result", worker_id, result, obs))
    except BaseException as exc:  # report *any* failure, then exit
        try:
            channel.put(
                ("error", worker_id, "%s: %s" % (type(exc).__name__, exc))
            )
        except Exception:
            os._exit(1)


class PortfolioSolver:
    """Run N diversified solvers in parallel; return the best result.

    Constructor shape matches the registry convention
    ``(instance, options)``; ``options.time_limit`` is the whole
    portfolio's deadline.  ``specs`` overrides the default diversified
    portfolio; ``workers`` sizes the default one.
    """

    name = "portfolio"

    def __init__(
        self,
        instance: PBInstance,
        options: Optional[SolverOptions] = None,
        *,
        specs: Optional[Sequence[WorkerSpec]] = None,
        workers: int = 4,
        time_limit: Optional[float] = None,
        grace: float = 2.0,
        stop_on_proof: bool = True,
        start_method: Optional[str] = None,
        trace_path: Optional[str] = None,
        metrics=None,
    ):
        self._instance = instance
        self._options = options if options is not None else SolverOptions()
        self._time_limit = (
            time_limit if time_limit is not None else self._options.time_limit
        )
        if specs is not None:
            self._specs = list(specs)
            for spec in self._specs:
                spec.validate()
        else:
            self._specs = default_specs(workers)
        if not self._specs:
            raise ValueError("portfolio needs at least one worker spec")
        self._grace = grace
        self._stop_on_proof = stop_on_proof
        self._start_method = start_method
        #: Merged-timeline output: workers write ``<trace_path>.w<id>``
        #: and the coordinator merges them into ``trace_path`` with
        #: aligned timestamps (see :mod:`repro.obs.merge`).
        self._trace_path = trace_path
        #: Coordinator-side metrics registry; worker snapshots are merged
        #: into it.  Falls back to ``options.metrics`` (the options
        #: object never crosses the process boundary, so a live registry
        #: there belongs to the coordinator by construction).
        if metrics is None:
            metrics = self._options.metrics
        self._metrics = (
            metrics if (metrics is not None and metrics.enabled) else None
        )
        self.stats = PortfolioStats()

    # ------------------------------------------------------------------
    def solve(self) -> SolveResult:
        """Run the worker processes and return the best combined result."""
        start = time.monotonic()
        ctx = multiprocessing.get_context(self._start_method)
        best_value = ctx.Value("q", _NO_BOUND)
        stop_event = ctx.Event()
        channel = ctx.Queue()
        deadline = (
            start + self._time_limit if self._time_limit is not None else None
        )

        processes: List = []
        for worker_id, spec in enumerate(self._specs):
            worker_trace = (
                _worker_trace_path(self._trace_path, worker_id)
                if self._trace_path is not None
                else None
            )
            process = ctx.Process(
                target=_worker_main,
                args=(worker_id, spec, self._instance, self._time_limit,
                      best_value, stop_event, channel, worker_trace,
                      self._metrics is not None),
                daemon=True,
                name="portfolio-%s" % spec.label,
            )
            process.start()
            processes.append(process)

        results: Dict[int, SolveResult] = {}
        errors: Dict[int, str] = {}
        obs_meta: Dict[int, Dict[str, Any]] = {}
        best_shared: Optional[Tuple[int, Dict[int, int]]] = None
        pending = set(range(len(self._specs)))

        def handle(message) -> None:
            nonlocal best_shared
            kind = message[0]
            if kind == "incumbent":
                _, _worker_id, cost, model = message
                self.stats.incumbents_shared += 1
                if best_shared is None or cost < best_shared[0]:
                    best_shared = (cost, model)
            elif kind == "result":
                _, worker_id, result, obs = message
                results[worker_id] = result
                if obs is not None:
                    obs_meta[worker_id] = obs
                pending.discard(worker_id)
                if self._stop_on_proof and result.solved:
                    stop_event.set()
            else:  # "error"
                _, worker_id, text = message
                errors[worker_id] = text
                pending.discard(worker_id)

        # Main collection loop: until everyone reported, the deadline
        # passed, an external cancel arrived, or every process died
        # without a word.
        should_stop = self._options.should_stop
        while pending:
            if deadline is not None and time.monotonic() > deadline:
                break
            if should_stop is not None and should_stop():
                # External cancellation (e.g. the solve service's stop
                # event): enter the same wind-down as a deadline, so the
                # caller still gets the best result collected so far.
                break
            try:
                handle(channel.get(timeout=0.05))
                continue
            except queue_module.Empty:
                pass
            # a worker can die without reporting (hard crash, oom-kill):
            # drop it from pending once it is dead *and* the queue is dry
            for worker_id in sorted(pending):
                process = processes[worker_id]
                if not process.is_alive() and channel.empty():
                    errors[worker_id] = (
                        "worker died without reporting (exitcode %s)"
                        % process.exitcode
                    )
                    pending.discard(worker_id)

        # Wind-down: ask stragglers to stop, give them the grace period,
        # then terminate whoever is left.
        stop_event.set()
        grace_end = time.monotonic() + self._grace
        while pending and time.monotonic() < grace_end:
            try:
                handle(channel.get(timeout=0.05))
            except queue_module.Empty:
                if all(not processes[w].is_alive() for w in pending) and channel.empty():
                    break
        for worker_id in sorted(pending):
            process = processes[worker_id]
            if process.is_alive():
                process.terminate()
                errors[worker_id] = "terminated at deadline"
            elif worker_id not in errors:
                errors[worker_id] = (
                    "worker died without reporting (exitcode %s)"
                    % process.exitcode
                )
        for process in processes:
            process.join(timeout=1.0)

        self._merge_observability(results, obs_meta)
        return self._assemble(results, errors, best_shared, obs_meta, start)

    # ------------------------------------------------------------------
    def _merge_observability(
        self,
        results: Dict[int, SolveResult],
        obs_meta: Dict[int, Dict[str, Any]],
    ) -> None:
        """Coordinator-side aggregation after the workers are gone.

        Worker metrics snapshots are merged into the coordinator's
        registry; per-worker trace files (including those of crashed
        workers — the crash-safe tracer leaves valid JSONL behind) are
        merged into ``self._trace_path`` as one worker-tagged,
        clock-aligned timeline.
        """
        if self._metrics is not None:
            for obs in obs_meta.values():
                snapshot = obs.get("metrics")
                if snapshot:
                    self._metrics.merge_snapshot(snapshot)
        if self._trace_path is None:
            return
        from ..obs.merge import merge_traces, write_records
        from ..obs.trace import read_trace

        traces: List[Tuple[int, List[Dict[str, Any]]]] = []
        summaries: Dict[int, Dict[str, Any]] = {}
        for worker_id, spec in enumerate(self._specs):
            path = _worker_trace_path(self._trace_path, worker_id)
            try:
                records = read_trace(path)
            except (OSError, ValueError):
                continue
            traces.append((worker_id, records))
            summary: Dict[str, Any] = {
                "label": spec.label,
                "solver": spec.solver,
            }
            result = results.get(worker_id)
            if result is not None:
                summary["status"] = result.status
                summary["cost"] = result.best_cost
                summary["elapsed"] = result.stats.elapsed
                summary["phase_times"] = dict(result.stats.phase_times)
            summaries[worker_id] = summary
        if traces:
            write_records(self._trace_path, merge_traces(traces, summaries))

    # ------------------------------------------------------------------
    def _assemble(
        self,
        results: Dict[int, SolveResult],
        errors: Dict[int, str],
        best_shared: Optional[Tuple[int, Dict[int, int]]],
        obs_meta: Dict[int, Dict[str, Any]],
        start: float,
    ) -> SolveResult:
        stats = self.stats
        for worker_id, spec in enumerate(self._specs):
            if worker_id in results:
                result = results[worker_id]
                stats.add_worker_result(
                    spec.label, spec.solver, result.status, result.best_cost,
                    result.stats.elapsed, result.stats.as_dict(),
                    obs=obs_meta.get(worker_id),
                )
            elif worker_id in errors:
                stats.add_worker_failure(spec.label, spec.solver,
                                         errors[worker_id])
        stats.elapsed = time.monotonic() - start

        # Pick the strongest worker outcome: a proof beats everything,
        # then the lowest upper bound among the timeouts.
        winner_id: Optional[int] = None
        for worker_id, result in results.items():
            if not result.solved:
                continue
            if winner_id is None:
                winner_id = worker_id
                continue
            best = results[winner_id]
            if (
                result.best_cost is not None
                and (best.best_cost is None or result.best_cost < best.best_cost)
            ):
                winner_id = worker_id
        if winner_id is None:
            for worker_id, result in results.items():
                if result.best_cost is None:
                    continue
                if (
                    winner_id is None
                    or result.best_cost < results[winner_id].best_cost
                ):
                    winner_id = worker_id

        if winner_id is not None:
            winner = results[winner_id]
            stats.winner = self._specs[winner_id].label
            status = winner.status
            best_cost = winner.best_cost
            model = winner.best_assignment
        else:
            status = UNKNOWN
            best_cost = None
            model = None

        # The coordinator's incumbent store can both supply a missing
        # witnessing model and improve a timeout's upper bound.
        if best_shared is not None:
            shared_cost, shared_model = best_shared
            if best_cost is None or shared_cost < best_cost:
                if status not in (OPTIMAL, SATISFIABLE, UNSATISFIABLE):
                    best_cost = shared_cost
                    model = shared_model
            if model is None and best_cost is not None and shared_cost == best_cost:
                model = shared_model
        return SolveResult(
            status,
            best_cost=best_cost,
            best_assignment=model,
            stats=stats,
            solver_name=self.name,
        )


def solve_portfolio(
    instance: PBInstance,
    workers: int = 4,
    time_limit: Optional[float] = None,
    specs: Optional[Sequence[WorkerSpec]] = None,
    options: Optional[SolverOptions] = None,
    trace_path: Optional[str] = None,
    metrics=None,
) -> SolveResult:
    """Convenience wrapper: build a :class:`PortfolioSolver` and run it."""
    return PortfolioSolver(
        instance, options, specs=specs, workers=workers, time_limit=time_limit,
        trace_path=trace_path, metrics=metrics,
    ).solve()
