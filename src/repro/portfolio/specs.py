"""Worker specifications for the parallel portfolio.

A worker is just ``(solver_name, options)`` — a name resolved through
:mod:`repro.api` plus a picklable :class:`SolverOptions`.  The default
portfolio diversifies along the axes the paper shows to be
complementary: the lower-bound method (MIS / LGR / LPR / none), the
bound-call schedule (static vs adaptive), restart and phase-saving
policy, PB-resolvent learning, and entirely different search paradigms
(SAT linear search, cutting planes, MILP branch & bound).
"""

from __future__ import annotations

from typing import List, Optional

from ..core.options import SolverOptions

#: Option fields that carry process-local callables or sinks; worker
#: specs must leave them unset — the portfolio runner installs its own
#: incumbent/interrupt hooks inside each worker process.
_PROCESS_LOCAL_FIELDS = (
    "tracer",
    "metrics",
    "hotspot",
    "on_new_solution",
    "on_progress",
    "on_incumbent",
    "external_bound",
    "should_stop",
)


class WorkerSpec:
    """One portfolio worker: a registered solver name plus its options."""

    __slots__ = ("solver", "options", "label")

    def __init__(self, solver: str, options: Optional[SolverOptions] = None,
                 label: Optional[str] = None):
        self.solver = solver
        self.options = options
        self.label = label if label is not None else solver
        self.validate()

    def validate(self) -> None:
        """Reject specs that cannot cross a process boundary."""
        if self.options is None:
            return
        for field in _PROCESS_LOCAL_FIELDS:
            if getattr(self.options, field) is not None:
                raise ValueError(
                    "WorkerSpec options must leave %r unset: it cannot be "
                    "pickled into a worker process (the portfolio installs "
                    "its own hooks)" % field
                )

    def __repr__(self) -> str:
        return "WorkerSpec(%r, label=%r)" % (self.solver, self.label)


#: The diversification ladder: each rung is (solver, option overrides).
#: The propagation backend is a diversification axis too: watched-literal
#: rungs race the counter rungs, so whichever engine fits the instance's
#: constraint mix (clause-heavy vs dense PB) reaches the optimum first.
_DEFAULT_LADDER = (
    ("bsolo-lpr", {}),
    ("bsolo-mis", {"restarts": True, "phase_saving": True,
                   "propagation": "watched"}),
    ("linear-search", {"propagation": "watched"}),
    ("bsolo-lgr", {"lb_schedule": "adaptive"}),
    ("bsolo-hybrid", {"pb_learning": True, "lb_schedule": "adaptive",
                      "propagation": "array"}),
    ("cutting-planes", {}),
    ("bsolo-plain", {"restarts": True, "propagation": "watched"}),
    ("bsolo-lpr", {"propagation": "array", "restarts": True}),
    ("milp", {}),
)


def default_specs(
    workers: int = 4, base: Optional[SolverOptions] = None
) -> List[WorkerSpec]:
    """The default diversified portfolio of ``workers`` members.

    The first rungs of the ladder cover the paper's complementary
    bounding strategies plus the comparator paradigms; beyond the ladder
    the bsolo configurations repeat with perturbed VSIDS decay and
    restart intervals so no two workers search identically.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    template = base if base is not None else SolverOptions()
    specs: List[WorkerSpec] = []
    for index in range(workers):
        solver, overrides = _DEFAULT_LADDER[index % len(_DEFAULT_LADDER)]
        options = template.replace(**overrides) if overrides else template
        lap = index // len(_DEFAULT_LADDER)
        if lap:
            # repeat visits get perturbed heuristics for diversity
            options = options.replace(
                vsids_decay=max(0.5, options.vsids_decay - 0.05 * lap),
                restart_interval=options.restart_interval + 50 * lap,
            )
        specs.append(
            WorkerSpec(solver, options, label="%s@%d" % (solver, index))
        )
    return specs
