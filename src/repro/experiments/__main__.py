"""Run the experiment harness from the command line.

Examples::

    python -m repro.experiments table1 --count 5 --time-limit 6
    python -m repro.experiments table1 --fast
    python -m repro.experiments bounds --family mcnc
    python -m repro.experiments scaling --family ptl --sizes 8 12 16
    python -m repro.experiments ablations --family mcnc
    python -m repro.experiments export --directory instances/
    python -m repro.experiments propbench --output BENCH_propagation.json
    python -m repro.experiments lbbench --output BENCH_lowerbound.json
    python -m repro.experiments increbench --output BENCH_incremental.json
    python -m repro.experiments servebench --output BENCH_service.json
    python -m repro.experiments certsmoke --families mcnc grout
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .ablations import format_ablations, run_ablations
from .bounds import bound_quality, format_bound_quality
from .certsmoke import FAMILIES as CERTSMOKE_FAMILIES
from .certsmoke import format_certsmoke, run_certsmoke
from .increbench import FAMILIES as INCREBENCH_FAMILIES
from .increbench import (
    format_summary as format_increbench_summary,
    run_increbench,
    write_report as write_increbench_report,
)
from .lbbench import FAMILIES as LBBENCH_FAMILIES
from .lbbench import (
    format_summary as format_lbbench_summary,
    run_lbbench,
    write_report as write_lbbench_report,
)
from .propbench import FAMILIES as PROPBENCH_FAMILIES
from .propbench import format_summary, run_propbench, write_report
from .reporting import format_table1
from .servebench import (
    format_summary as format_servebench_summary,
    run_servebench,
    write_report as write_servebench_report,
)
from .runner import SOLVER_NAMES
from .scaling import crossover_size, format_sweep, scaling_sweep
from .table1 import FAMILIES, family_instances, generate_table1


def build_parser() -> argparse.ArgumentParser:
    """Subcommand parser for the experiment harness."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Experiment harness for the DATE'05 PBO reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="regenerate the paper's Table 1")
    table1.add_argument("--count", type=int, default=5)
    table1.add_argument("--time-limit", type=float, default=6.0)
    table1.add_argument("--scale", type=float, default=1.0)
    table1.add_argument("--fast", action="store_true", help="count=2, 2s budget")
    table1.add_argument(
        "--portfolio",
        action="store_true",
        help="add a parallel-portfolio column to the matrix",
    )
    table1.add_argument(
        "--stats-jsonl",
        metavar="FILE",
        default=None,
        help="persist per-run structured stats as JSONL",
    )

    bounds = sub.add_parser("bounds", help="root lower-bound quality table")
    bounds.add_argument("--family", choices=FAMILIES, default="mcnc")
    bounds.add_argument("--count", type=int, default=5)
    bounds.add_argument("--lgr-iterations", type=int, default=200)

    scaling = sub.add_parser("scaling", help="size sweep for one family")
    scaling.add_argument("--family", default="ptl")
    scaling.add_argument("--sizes", type=int, nargs="+", default=[8, 12, 16, 18])
    scaling.add_argument(
        "--solvers", nargs="+", default=["bsolo-plain", "bsolo-lpr"],
        choices=list(SOLVER_NAMES) + ["bsolo-hybrid", "scherzo"],
    )
    scaling.add_argument("--time-limit", type=float, default=6.0)

    ablations = sub.add_parser("ablations", help="feature grid on one family")
    ablations.add_argument("--family", choices=FAMILIES, default="mcnc")
    ablations.add_argument("--count", type=int, default=3)
    ablations.add_argument("--scale", type=float, default=0.5)
    ablations.add_argument("--time-limit", type=float, default=6.0)

    export = sub.add_parser("export", help="write the suites as .opb files")
    export.add_argument("--directory", default="instances")
    export.add_argument("--count", type=int, default=5)
    export.add_argument("--scale", type=float, default=1.0)

    propbench = sub.add_parser(
        "propbench",
        help="race the propagation backends (counter vs watched)",
    )
    propbench.add_argument(
        "--families", nargs="+", default=list(PROPBENCH_FAMILIES),
        choices=PROPBENCH_FAMILIES,
    )
    propbench.add_argument("--count", type=int, default=3)
    propbench.add_argument("--scale", type=float, default=1.0)
    propbench.add_argument("--rounds", type=int, default=120)
    propbench.add_argument("--trials", type=int, default=3)
    propbench.add_argument("--max-conflicts", type=int, default=800)
    propbench.add_argument("--time-limit", type=float, default=60.0)
    propbench.add_argument(
        "--no-solve", action="store_true",
        help="skip the end-to-end solve-mode runs (drive mode only)",
    )
    propbench.add_argument(
        "--quick", action="store_true",
        help="tiny instances and budgets (CI smoke configuration)",
    )
    propbench.add_argument("--output", default="BENCH_propagation.json")

    lbbench = sub.add_parser(
        "lbbench",
        help="race incremental vs cold lower bounding (MIS cache, warm LP)",
    )
    lbbench.add_argument(
        "--families", nargs="+", default=list(LBBENCH_FAMILIES),
        choices=LBBENCH_FAMILIES,
    )
    lbbench.add_argument("--count", type=int, default=3)
    lbbench.add_argument("--scale", type=float, default=1.0)
    lbbench.add_argument("--seed", type=int, default=1000)
    lbbench.add_argument(
        "--max-nodes", type=int, default=120,
        help="bounded nodes per instance in the lockstep drive walk",
    )
    lbbench.add_argument("--max-conflicts", type=int, default=2000)
    lbbench.add_argument("--time-limit", type=float, default=30.0)
    lbbench.add_argument(
        "--lower-bound", default="hybrid", choices=["mis", "lpr", "hybrid"],
        help="bounder used by the solve-mode configurations",
    )
    lbbench.add_argument(
        "--no-solve", action="store_true",
        help="skip the end-to-end solve-mode runs (drive mode only)",
    )
    lbbench.add_argument(
        "--quick", action="store_true",
        help="tiny instances and budgets (CI smoke configuration)",
    )
    lbbench.add_argument("--output", default="BENCH_lowerbound.json")

    increbench = sub.add_parser(
        "increbench",
        help="race warm solve_under sessions against cold re-solves",
    )
    increbench.add_argument(
        "--families", nargs="+", default=list(INCREBENCH_FAMILIES),
        choices=INCREBENCH_FAMILIES,
    )
    increbench.add_argument("--count", type=int, default=3)
    increbench.add_argument("--scale", type=float, default=1.0)
    increbench.add_argument("--seed", type=int, default=2000)
    increbench.add_argument(
        "--lower-bound", default="hybrid",
        choices=["plain", "mis", "lpr", "hybrid"],
        help="bounder used by both the warm session and the cold solves",
    )
    increbench.add_argument(
        "--quick", action="store_true",
        help="tiny instances and budgets (CI smoke configuration)",
    )
    increbench.add_argument("--output", default="BENCH_incremental.json")

    servebench = sub.add_parser(
        "servebench",
        help="drive the solve service over HTTP: throughput, latency, cache",
    )
    servebench.add_argument("--count", type=int, default=8)
    servebench.add_argument("--scale", type=float, default=1.0)
    servebench.add_argument("--seed", type=int, default=9000)
    servebench.add_argument(
        "--workers", type=int, default=4,
        help="server-side worker-process shard size",
    )
    servebench.add_argument(
        "--submitters", type=int, default=8,
        help="client-side concurrent submitter threads",
    )
    servebench.add_argument(
        "--variants", type=int, default=3,
        help="renamed resubmissions per instance (duplicate scenario)",
    )
    servebench.add_argument("--solver", default="bsolo-lpr")
    servebench.add_argument(
        "--quick", action="store_true",
        help="tiny instances and budgets (CI smoke configuration)",
    )
    servebench.add_argument("--output", default="BENCH_service.json")

    certsmoke = sub.add_parser(
        "certsmoke",
        help="solve with proof logging, then independently re-check every proof",
    )
    certsmoke.add_argument(
        "--families", nargs="+", default=list(CERTSMOKE_FAMILIES),
        choices=CERTSMOKE_FAMILIES,
    )
    certsmoke.add_argument("--count", type=int, default=1)
    certsmoke.add_argument("--scale", type=float, default=0.5)
    certsmoke.add_argument("--time-limit", type=float, default=30.0)
    certsmoke.add_argument("--solver", default="bsolo-lpr")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Dispatch one experiment subcommand."""
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        count = 2 if args.fast else args.count
        time_limit = 2.0 if args.fast else args.time_limit
        solver_names = tuple(SOLVER_NAMES)
        if args.portfolio:
            solver_names = solver_names + ("portfolio",)
        result = generate_table1(
            time_limit=time_limit,
            count=count,
            scale=args.scale,
            solver_names=solver_names,
        )
        print(format_table1(result))
        print()
        print("bsolo ordering holds:", result.bsolo_ordering_holds())
        print("acc rows identical:", result.acc_rows_identical_for_bsolo())
        if args.stats_jsonl:
            written = result.dump_stats_jsonl(args.stats_jsonl)
            print("wrote %d per-run stat records to %s" % (written, args.stats_jsonl))
    elif args.command == "bounds":
        instances, labels = family_instances(args.family, count=args.count)
        records = bound_quality(
            instances, labels, lgr_iterations=args.lgr_iterations
        )
        print(format_bound_quality(records))
    elif args.command == "scaling":
        points = scaling_sweep(
            args.family,
            sizes=args.sizes,
            solver_names=tuple(args.solvers),
            time_limit=args.time_limit,
        )
        print(format_sweep(points))
        if len(args.solvers) >= 2:
            size = crossover_size(points, args.solvers[-1], args.solvers[0])
            print(
                "crossover (%s over %s): %s"
                % (args.solvers[-1], args.solvers[0], size)
            )
    elif args.command == "ablations":
        instances, _ = family_instances(
            args.family, count=args.count, scale=args.scale
        )
        records = run_ablations(instances, time_limit=args.time_limit)
        print(format_ablations(records))
    elif args.command == "export":
        from ..benchgen.export import export_table1_suite

        written = export_table1_suite(
            args.directory, count=args.count, scale=args.scale
        )
        print("wrote %d instances under %s" % (len(written), args.directory))
    elif args.command == "propbench":
        if args.quick:
            args.count, args.scale = 2, 0.25
            args.rounds, args.trials = 10, 1
            args.max_conflicts, args.time_limit = 200, 10.0
        report = run_propbench(
            families=args.families,
            count=args.count,
            scale=args.scale,
            rounds=args.rounds,
            trials=args.trials,
            max_conflicts=args.max_conflicts,
            time_limit=args.time_limit,
            solve=not args.no_solve,
        )
        print(format_summary(report))
        path = write_report(report, args.output)
        print("wrote %s" % path)
    elif args.command == "lbbench":
        if args.quick:
            args.count, args.scale = 2, 0.5
            args.max_nodes = 40
            args.max_conflicts, args.time_limit = 400, 10.0
        report = run_lbbench(
            families=args.families,
            count=args.count,
            scale=args.scale,
            seed=args.seed,
            max_nodes=args.max_nodes,
            max_conflicts=args.max_conflicts,
            time_limit=args.time_limit,
            lower_bound=args.lower_bound,
            solve=not args.no_solve,
        )
        print(format_lbbench_summary(report))
        path = write_lbbench_report(report, args.output)
        print("wrote %s" % path)
    elif args.command == "increbench":
        if args.quick:
            args.count, args.scale = 2, 0.4
        report = run_increbench(
            families=args.families,
            count=args.count,
            scale=args.scale,
            seed=args.seed,
            lower_bound=args.lower_bound,
        )
        print(format_increbench_summary(report))
        path = write_increbench_report(report, args.output)
        print("wrote %s" % path)
        if not report["lockstep_all"]:
            return 1
    elif args.command == "servebench":
        if args.quick:
            args.count, args.scale = 4, 0.6
            args.workers, args.submitters, args.variants = 2, 4, 2
        report = run_servebench(
            count=args.count,
            scale=args.scale,
            seed=args.seed,
            workers=args.workers,
            submitters=args.submitters,
            variants=args.variants,
            solver=args.solver,
        )
        print(format_servebench_summary(report))
        path = write_servebench_report(report, args.output)
        print("wrote %s" % path)
        if not report["lockstep_all"]:
            return 1
    elif args.command == "certsmoke":
        records = run_certsmoke(
            families=args.families,
            count=args.count,
            scale=args.scale,
            time_limit=args.time_limit,
            solver=args.solver,
        )
        print(format_certsmoke(records))
        if not all(row["ok"] for row in records):
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
