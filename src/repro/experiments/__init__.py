"""Experiment harness: timed runs and Table 1 regeneration (Section 6)."""

from .ablations import ABLATIONS, AblationRecord, format_ablations, run_ablations
from .bounds import BoundRecord, bound_quality, format_bound_quality
from .reporting import format_matrix, format_table1
from .scaling import ScalingPoint, crossover_size, format_sweep, scaling_sweep
from .runner import (
    BSOLO_NAMES,
    SOLVER_NAMES,
    RunRecord,
    make_solver,
    run_matrix,
    run_one,
    solved_counts,
    write_records_jsonl,
)
from .table1 import FAMILIES, Table1Result, family_instances, generate_table1

__all__ = [
    "ABLATIONS",
    "AblationRecord",
    "BSOLO_NAMES",
    "BoundRecord",
    "FAMILIES",
    "RunRecord",
    "SOLVER_NAMES",
    "ScalingPoint",
    "Table1Result",
    "bound_quality",
    "crossover_size",
    "family_instances",
    "format_ablations",
    "format_bound_quality",
    "format_matrix",
    "format_sweep",
    "format_table1",
    "generate_table1",
    "make_solver",
    "run_ablations",
    "run_matrix",
    "run_one",
    "scaling_sweep",
    "solved_counts",
    "write_records_jsonl",
]
