"""Propagation microbenchmark: counter vs watched backends.

Two complementary measurements per (family, backend):

drive mode (apples to apples)
    A seeded decision walk replayed *identically* on every backend:
    decide variables in a shuffled order, propagate after each decision,
    step one level back on conflict, rewind to the root between rounds.
    Because all engines close the same implication rule, every backend
    sees the same trail, the same conflicts and the same implication
    count — so the propagations/sec ratio is a pure propagation-cost
    ratio.  The whole decide/propagate/backtrack transaction is timed:
    the counter backend pays its occurrence-list sweeps inside
    ``decide`` and ``backtrack``, and leaving those out would flatter
    it.

solve mode (end to end)
    A full :class:`~repro.core.solver.BsoloSolver` run with
    ``profile=True``, reporting the per-phase wall times collected by
    :mod:`repro.obs` (the ``propagate`` phase in particular) plus
    conflicts/sec.  Search trajectories may diverge between backends —
    trail *order* is not part of the equivalence contract — so these
    numbers measure realized solver throughput, not per-implication
    cost.

``run_propbench`` writes everything to ``BENCH_propagation.json``.
"""

from __future__ import annotations

import json
import random
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..benchgen import generate_planted, ptl_suite, routing_suite
from ..core.options import SolverOptions
from ..core.solver import BsoloSolver
from ..engine.interface import Conflict, make_engine
from ..pb.instance import PBInstance

#: Families benchmarked by default (paper Section 6 instance classes).
FAMILIES = ("ptl", "grout", "random")

#: Backends raced by default.
BACKENDS = ("counter", "watched", "array")


def family_instances(
    family: str, count: int = 3, scale: float = 1.0
) -> List[PBInstance]:
    """Deterministic benchmark instances for one family.

    ``scale`` grows/shrinks the instances (CI smoke runs use a small
    scale so the job finishes in seconds).
    """
    if family == "ptl":
        nodes = max(6, int(40 * scale))
        return list(
            ptl_suite(count, seed=5, nodes=nodes, extra_edges=max(3, nodes * 3 // 4))
        )
    if family == "grout":
        return list(routing_suite(count, seed=9))
    if family == "random":
        # planted-satisfiable: root-level conflicts would cut the drive
        # replay short and leave nothing for the solve runs to optimize
        size = max(8, int(60 * scale))
        return [
            generate_planted(
                num_variables=size,
                num_constraints=size * 3 // 2,
                max_arity=8,
                max_coefficient=6,
                seed=700 + index,
            )[0]
            for index in range(count)
        ]
    raise ValueError("unknown family %r (expected one of %s)" % (family, FAMILIES))


# ----------------------------------------------------------------------
# Drive mode
# ----------------------------------------------------------------------
def drive_replay(
    instance: PBInstance, backend: str, seed: int, rounds: int, metrics=None
) -> Dict[str, Any]:
    """Replay one seeded decision walk on ``backend``.

    Returns the implication count and the wall time of the timed region
    (everything after constraint loading).  ``metrics`` is forwarded to
    the engine — pass a disabled registry to measure the
    zero-overhead-when-disabled contract (see
    :func:`bench_metrics_overhead`).
    """
    engine = make_engine(backend, instance.num_variables, metrics=metrics)
    for constraint in instance.constraints:
        engine.add_constraint(constraint)
    engine.propagate()
    rng = random.Random(seed)
    order = list(range(1, instance.num_variables + 1))
    trail = engine.trail
    values = trail._value
    decide, propagate = engine.decide, engine.propagate
    coin = rng.random
    # Count implications from *non-conflicting* propagate calls only:
    # those are identical across backends (the shared fixpoint), whereas
    # the partial implications wiped by a conflict may differ — engines
    # are free to discover the same conflict through different trails.
    propagations = 0
    started = time.perf_counter()
    for _ in range(rounds):
        rng.shuffle(order)
        for variable in order:
            if values[variable] >= 0:
                continue
            decide(variable if coin() < 0.5 else -variable)
            before = engine.num_propagations
            if isinstance(propagate(), Conflict):
                level = trail.decision_level
                if level == 0:
                    # root conflict: the post-conflict queue state is
                    # outside the equivalence contract, so end the
                    # replay here (identically on every backend)
                    seconds = time.perf_counter() - started
                    return {"propagations": propagations, "seconds": seconds}
                engine.backtrack(level - 1)
            else:
                propagations += engine.num_propagations - before
        engine.backtrack(0)
    seconds = time.perf_counter() - started
    return {"propagations": propagations, "seconds": seconds}


def bench_drive(
    instances: Sequence[PBInstance],
    backends: Sequence[str] = BACKENDS,
    rounds: int = 120,
    trials: int = 3,
    seed: int = 1000,
) -> Dict[str, Any]:
    """Race the backends over identical replays; best-of-``trials``.

    The per-backend propagation counts must agree (the replay is
    deterministic and the engines are equivalent); the result records
    whether they did under ``"lockstep_props_equal"``.
    """
    per_backend: Dict[str, Dict[str, Any]] = {}
    for backend in backends:
        best: Optional[Tuple[int, float]] = None
        for _ in range(max(1, trials)):
            props = 0
            seconds = 0.0
            for index, instance in enumerate(instances):
                outcome = drive_replay(instance, backend, seed + index, rounds)
                props += outcome["propagations"]
                seconds += outcome["seconds"]
            if best is None or seconds < best[1]:
                best = (props, seconds)
        props, seconds = best
        per_backend[backend] = {
            "propagations": props,
            "seconds": round(seconds, 6),
            "props_per_sec": round(props / seconds, 1) if seconds > 0 else None,
        }
    counts = {entry["propagations"] for entry in per_backend.values()}
    result: Dict[str, Any] = dict(per_backend)
    result["lockstep_props_equal"] = len(counts) == 1
    baseline = per_backend.get("counter")
    for backend, entry in per_backend.items():
        if backend == "counter" or not baseline:
            continue
        if entry["props_per_sec"] and baseline["props_per_sec"]:
            result["speedup_%s_props_per_sec" % backend] = round(
                entry["props_per_sec"] / baseline["props_per_sec"], 3
            )
    return result


# ----------------------------------------------------------------------
# Metrics overhead
# ----------------------------------------------------------------------
def bench_metrics_overhead(
    instances: Sequence[PBInstance],
    backend: str = "counter",
    rounds: int = 120,
    trials: int = 3,
    seed: int = 1000,
) -> Dict[str, Any]:
    """Measure the cost of carrying a *disabled* metrics registry.

    The zero-overhead-when-disabled contract (see ``docs/DESIGN.md``)
    promises that passing ``NULL_METRICS`` to a solver costs nothing
    measurable on the hot path: instruments resolve to ``None`` at
    construction and the propagate wrapper is bypassed entirely.  This
    benchmark replays the same seeded decision walk with no registry and
    with the disabled registry, best-of-``trials`` each, and reports the
    relative overhead (expected within noise of 0%; the acceptance bar
    is 2%).  Trials alternate between the two registries so slow drift
    on the host (thermal throttling, background load) hits both sides
    equally instead of biasing whichever phase ran second.
    """
    from ..obs.metrics import NULL_METRICS

    timings: Dict[str, Optional[float]] = {"baseline": None, "disabled": None}
    for _ in range(max(1, trials)):
        for label, registry in (("baseline", None), ("disabled", NULL_METRICS)):
            seconds = 0.0
            for index, instance in enumerate(instances):
                outcome = drive_replay(
                    instance, backend, seed + index, rounds, metrics=registry
                )
                seconds += outcome["seconds"]
            best = timings[label]
            if best is None or seconds < best:
                timings[label] = seconds
    baseline = timings["baseline"]
    overhead = (
        (timings["disabled"] / baseline - 1.0) * 100.0 if baseline > 0 else 0.0
    )
    return {
        "backend": backend,
        "baseline_seconds": round(timings["baseline"], 6),
        "disabled_seconds": round(timings["disabled"], 6),
        "overhead_pct": round(overhead, 3),
    }


# ----------------------------------------------------------------------
# Solve mode
# ----------------------------------------------------------------------
def solve_run(
    instance: PBInstance,
    backend: str,
    max_conflicts: Optional[int] = 800,
    time_limit: Optional[float] = 60.0,
) -> Dict[str, Any]:
    """One profiled :class:`BsoloSolver` run; per-phase times from
    :mod:`repro.obs`."""
    options = SolverOptions.plain(
        propagation=backend,
        max_conflicts=max_conflicts,
        time_limit=time_limit,
        profile=True,
    )
    solver = BsoloSolver(instance, options)
    started = time.perf_counter()
    result = solver.solve()
    seconds = time.perf_counter() - started
    stats = result.stats
    phase_times = dict(stats.phase_times or {})
    return {
        "status": result.status,
        "conflicts": stats.conflicts,
        "propagations": stats.propagations,
        "seconds": round(seconds, 6),
        "phase_times": {name: round(value, 6) for name, value in phase_times.items()},
    }


def bench_solve(
    instances: Sequence[PBInstance],
    backends: Sequence[str] = BACKENDS,
    max_conflicts: Optional[int] = 800,
    time_limit: Optional[float] = 60.0,
) -> Dict[str, Any]:
    """End-to-end solver throughput per backend (summed over instances)."""
    per_backend: Dict[str, Dict[str, Any]] = {}
    for backend in backends:
        conflicts = props = 0
        seconds = propagate_seconds = 0.0
        statuses: List[str] = []
        for instance in instances:
            outcome = solve_run(
                instance, backend, max_conflicts=max_conflicts, time_limit=time_limit
            )
            conflicts += outcome["conflicts"]
            props += outcome["propagations"]
            seconds += outcome["seconds"]
            propagate_seconds += outcome["phase_times"].get("propagate", 0.0)
            statuses.append(outcome["status"])
        per_backend[backend] = {
            "conflicts": conflicts,
            "propagations": props,
            "seconds": round(seconds, 6),
            "propagate_seconds": round(propagate_seconds, 6),
            "conflicts_per_sec": round(conflicts / seconds, 1) if seconds > 0 else None,
            "props_per_sec": (
                round(props / propagate_seconds, 1) if propagate_seconds > 0 else None
            ),
            "statuses": statuses,
        }
    result: Dict[str, Any] = dict(per_backend)
    baseline = per_backend.get("counter")
    for backend, entry in per_backend.items():
        if backend == "counter" or not baseline:
            continue
        if entry["conflicts_per_sec"] and baseline["conflicts_per_sec"]:
            result["speedup_%s_conflicts_per_sec" % backend] = round(
                entry["conflicts_per_sec"] / baseline["conflicts_per_sec"], 3
            )
        if entry["seconds"] and baseline["seconds"]:
            # end-to-end wall-clock speedup over the counter baseline
            # (> 1 means this backend solved the family faster)
            result["speedup_%s_wall" % backend] = round(
                baseline["seconds"] / entry["seconds"], 3
            )
    return result


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_propbench(
    families: Iterable[str] = FAMILIES,
    count: int = 3,
    scale: float = 1.0,
    rounds: int = 120,
    trials: int = 3,
    max_conflicts: Optional[int] = 800,
    time_limit: Optional[float] = 60.0,
    backends: Sequence[str] = BACKENDS,
    solve: bool = True,
) -> Dict[str, Any]:
    """Run the full microbenchmark; returns the report payload."""
    report: Dict[str, Any] = {
        "benchmark": "propagation",
        "backends": list(backends),
        "config": {
            "count": count,
            "scale": scale,
            "rounds": rounds,
            "trials": trials,
            "max_conflicts": max_conflicts,
            "time_limit": time_limit,
        },
        "families": {},
    }
    for family in families:
        instances = family_instances(family, count=count, scale=scale)
        entry: Dict[str, Any] = {
            "instances": len(instances),
            "variables": sum(inst.num_variables for inst in instances),
            "drive": bench_drive(instances, backends, rounds=rounds, trials=trials),
            "metrics_overhead": bench_metrics_overhead(
                instances, rounds=rounds, trials=trials
            ),
        }
        if "array" in backends:
            # Verify the disabled registry stays free on the batched
            # kernels too, not just on the counter loop.
            entry["metrics_overhead_array"] = bench_metrics_overhead(
                instances, backend="array", rounds=rounds, trials=trials
            )
        if solve:
            entry["solve"] = bench_solve(
                instances, backends, max_conflicts=max_conflicts, time_limit=time_limit
            )
        report["families"][family] = entry
    return report


def write_report(report: Dict[str, Any], path: str = "BENCH_propagation.json") -> str:
    """Persist the benchmark report as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_summary(report: Dict[str, Any]) -> str:
    """Console table: one drive and one solve line per family."""
    lines = ["propagation microbenchmark (baseline: counter)"]
    for family, entry in report["families"].items():
        drive = entry["drive"]
        for backend in report["backends"]:
            stats = drive[backend]
            lines.append(
                "  %-7s drive  %-8s %8d props %8.3fs %10s props/sec"
                % (
                    family,
                    backend,
                    stats["propagations"],
                    stats["seconds"],
                    stats["props_per_sec"],
                )
            )
        for key, value in sorted(drive.items()):
            if key.startswith("speedup_"):
                lines.append("  %-7s drive  %s = %.3fx" % (family, key, value))
        if not drive["lockstep_props_equal"]:
            lines.append(
                "  %-7s drive  WARNING: propagation counts diverged" % family
            )
        for key in ("metrics_overhead", "metrics_overhead_array"):
            overhead = entry.get(key)
            if overhead:
                lines.append(
                    "  %-7s drive  disabled-metrics overhead = %+.2f%% (%s)"
                    % (family, overhead["overhead_pct"], overhead["backend"])
                )
        solve = entry.get("solve")
        if solve:
            for backend in report["backends"]:
                stats = solve[backend]
                lines.append(
                    "  %-7s solve  %-8s %8d conflicts %8.3fs %10s conflicts/sec"
                    % (
                        family,
                        backend,
                        stats["conflicts"],
                        stats["seconds"],
                        stats["conflicts_per_sec"],
                    )
                )
            for key, value in sorted(solve.items()):
                if key.startswith("speedup_"):
                    lines.append("  %-7s solve  %s = %.3fx" % (family, key, value))
    return "\n".join(lines)
