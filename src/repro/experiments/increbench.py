"""Incremental-session microbenchmark: warm ``solve_under`` vs cold
re-solves over perturbation streams, plus the WBO solver modes.

For each stream family (see :mod:`repro.benchgen.streams`) the bench
replays the same step sequence twice:

* **warm** — one persistent :class:`~repro.incremental.SolverSession`
  per instance, mutated in place (``push``/``pop``/``set_objective``)
  and queried through ``solve_under(assumptions)``, so learned
  constraints, branching activity and bound-state carry over;
* **cold** — a fresh :class:`~repro.core.solver.BsoloSolver` per step on
  the materialised effective instance with the same assumptions.

Every step is a lockstep check: warm and cold must report the identical
status and optimum.  The per-family ``lockstep_<family>`` boolean is the
correctness claim (``tools/benchdiff.py`` treats any ``True -> False``
flip as a regression at every scale), while ``speedup_warm`` is the
performance headline, meaningful on comparable configs only.

The ``wbo`` family solves random soft-constraint instances with both
WBO modes and asserts they agree on the optimal cost
(``lockstep_wbo_modes``).

Report shape follows the other BENCH_* producers::

    {"benchmark": "incremental", "config": {...},
     "families": {name: {..., "lockstep_<name>": bool}},
     "families_meeting_warm_target": N}

Entry point: ``python -m repro.experiments increbench`` (``--quick`` for
the CI smoke configuration); writes ``BENCH_incremental.json``.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..benchgen.streams import STREAM_BUILDERS, PerturbationStream, wbo_suite
from ..core.options import SolverOptions
from ..core.solver import BsoloSolver
from ..incremental import SolverSession
from ..wbo.solver import WBOSolver

#: stream families plus the WBO mode-agreement family
STREAM_FAMILIES: Tuple[str, ...] = ("assumption", "constraint", "objective")
FAMILIES: Tuple[str, ...] = STREAM_FAMILIES + ("wbo",)

#: headline target: warm solve_under at least this much faster than cold
#: re-solves on at least one stream family (full-scale runs)
TARGET_WARM_SPEEDUP = 1.5

#: per-family generator kwargs at scale 1.0.  The assumption family is
#: deliberately dense (constraints ~ 2.3x variables): cold solves then
#: pay a large per-step bounder/engine construction cost that the warm
#: session pays once, which is the reuse the bench is designed to show.
_STREAM_SHAPES: Dict[str, Dict[str, Any]] = {
    "assumption": {
        "num_variables": 60,
        "num_constraints": 140,
        "steps": 20,
        "width": 2,
        "consistent_bias": 1.0,
    },
    "constraint": {"num_variables": 24, "num_constraints": 44, "steps": 12},
    "objective": {"num_variables": 24, "num_constraints": 44, "steps": 10},
}


def stream_config(family: str, scale: float = 1.0) -> Dict[str, Any]:
    """Generator kwargs for ``family`` scaled by ``scale`` (variables,
    constraints and step count shrink together, with sane floors)."""
    shape = dict(_STREAM_SHAPES[family])
    shape["num_variables"] = max(8, int(shape["num_variables"] * scale))
    shape["num_constraints"] = max(10, int(shape["num_constraints"] * scale))
    shape["steps"] = max(4, int(shape["steps"] * min(1.0, scale * 2)))
    return shape


def _replay_warm(
    stream: PerturbationStream, options: SolverOptions
) -> Tuple[List[Any], float, SolverSession]:
    """Replay every step on one persistent session; returns the per-step
    results, the total wall time and the session (for its stats)."""
    session = SolverSession(stream.instance, options)
    results = []
    elapsed = 0.0
    for step in stream.steps:
        if step.pop:
            session.pop()
        if step.push is not None:
            session.push()
            session.add_constraint(step.push)
        if step.objective is not None:
            session.set_objective(step.objective)
        start = time.perf_counter()
        results.append(session.solve_under(step.assumptions))
        elapsed += time.perf_counter() - start
    return results, elapsed, session


def _replay_cold(
    stream: PerturbationStream, options: SolverOptions
) -> Tuple[List[Any], float]:
    """Solve every step's materialised instance with a fresh solver;
    instance materialisation is excluded from the timed region (a cold
    workflow re-creates solver state, not the problem statement)."""
    results = []
    elapsed = 0.0
    for index in range(len(stream.steps)):
        effective, assumptions = stream.materialize(index)
        start = time.perf_counter()
        solver = BsoloSolver(effective, options)
        solver.set_assumptions(list(assumptions))
        results.append(solver.solve())
        elapsed += time.perf_counter() - start
    return results, elapsed


def bench_stream(
    family: str,
    count: int = 3,
    scale: float = 1.0,
    seed: int = 2000,
    options: Optional[SolverOptions] = None,
) -> Dict[str, Any]:
    """Warm-vs-cold race for one stream family over ``count`` instances.

    The lockstep flag is ANDed over every step of every instance: one
    diverging (status, optimum) pair fails the whole family.
    """
    options = options or SolverOptions(
        lower_bound="hybrid", preprocess=False, covering_reductions=False
    )
    builder = STREAM_BUILDERS[family]
    config = stream_config(family, scale)
    lockstep = True
    warm_seconds = cold_seconds = 0.0
    steps_total = 0
    statuses: List[str] = []
    stats_totals: Dict[str, int] = {}
    for index in range(count):
        stream = builder(seed=seed + index, **config)
        warm_results, warm_time, session = _replay_warm(stream, options)
        cold_results, cold_time = _replay_cold(stream, options)
        warm_seconds += warm_time
        cold_seconds += cold_time
        steps_total += len(stream.steps)
        for warm, cold in zip(warm_results, cold_results):
            if (warm.status, warm.best_cost) != (cold.status, cold.best_cost):
                lockstep = False
            statuses.append(warm.status)
        for key, value in session.stats.as_dict().items():
            stats_totals[key] = stats_totals.get(key, 0) + value
    entry: Dict[str, Any] = {
        "instances": count,
        "steps_total": steps_total,
        "config": config,
        "warm_seconds": round(warm_seconds, 6),
        "cold_seconds": round(cold_seconds, 6),
        "speedup_warm": round(cold_seconds / max(warm_seconds, 1e-9), 4),
        "calls_per_sec": round(steps_total / max(warm_seconds, 1e-9), 3),
        "statuses": statuses,
        "session": stats_totals,
    }
    entry["lockstep_%s" % family] = lockstep
    return entry


def bench_wbo(
    count: int = 3,
    scale: float = 1.0,
    seed: int = 7000,
    options: Optional[SolverOptions] = None,
) -> Dict[str, Any]:
    """Race the two WBO modes on random soft-constraint instances and
    assert they agree on the optimal cost."""
    instances = wbo_suite(count=count, scale=scale, seed=seed)
    agree = True
    direct_seconds = core_seconds = 0.0
    costs: List[Optional[int]] = []
    statuses: List[str] = []
    cores_total = 0
    for wbo in instances:
        start = time.perf_counter()
        direct = WBOSolver(wbo, options, mode="direct").solve()
        direct_seconds += time.perf_counter() - start
        start = time.perf_counter()
        core_solver = WBOSolver(wbo, options, mode="core-guided")
        core = core_solver.solve()
        core_seconds += time.perf_counter() - start
        cores_total += len(core_solver.cores)
        if (direct.status, direct.cost) != (core.status, core.cost):
            agree = False
        costs.append(direct.cost)
        statuses.append(direct.status)
    return {
        "instances": count,
        "direct_seconds": round(direct_seconds, 6),
        "core_seconds": round(core_seconds, 6),
        "speedup_core_guided": round(
            direct_seconds / max(core_seconds, 1e-9), 4
        ),
        "cores_total": cores_total,
        "costs": costs,
        "statuses": statuses,
        "lockstep_wbo_modes": agree,
    }


def run_increbench(
    families: Iterable[str] = FAMILIES,
    count: int = 3,
    scale: float = 1.0,
    seed: int = 2000,
    lower_bound: str = "hybrid",
) -> Dict[str, Any]:
    """Run the full incremental microbenchmark; returns the report."""
    options = SolverOptions(
        lower_bound=lower_bound, preprocess=False, covering_reductions=False
    )
    report: Dict[str, Any] = {
        "benchmark": "incremental",
        "config": {
            "count": count,
            "scale": scale,
            "seed": seed,
            "lower_bound": lower_bound,
        },
        "targets": {"warm_speedup_min": TARGET_WARM_SPEEDUP},
        "families": {},
    }
    for family in families:
        if family == "wbo":
            report["families"][family] = bench_wbo(
                count=count, scale=scale, seed=seed + 5000, options=options
            )
        else:
            report["families"][family] = bench_stream(
                family, count=count, scale=scale, seed=seed, options=options
            )
    report["families_meeting_warm_target"] = sum(
        1
        for name in families
        if name != "wbo"
        and (report["families"][name].get("speedup_warm") or 0)
        >= TARGET_WARM_SPEEDUP
    )
    report["lockstep_all"] = all(
        value
        for entry in report["families"].values()
        for key, value in entry.items()
        if key.startswith("lockstep_")
    )
    return report


def write_report(
    report: Dict[str, Any], path: str = "BENCH_incremental.json"
) -> str:
    """Persist the benchmark report as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_summary(report: Dict[str, Any]) -> str:
    """Console table: one warm-vs-cold line per family."""
    lines = ["incremental-session microbenchmark (baseline: cold re-solve)"]
    header = "%-12s %6s %9s %9s %8s %9s" % (
        "family", "steps", "warm s", "cold s", "speedup", "lockstep"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, entry in sorted(report["families"].items()):
        if name == "wbo":
            lines.append(
                "%-12s %6d %9.3f %9.3f %8s %9s"
                % (
                    "wbo-modes",
                    entry["instances"],
                    entry["core_seconds"],
                    entry["direct_seconds"],
                    "%.2fx" % entry["speedup_core_guided"],
                    "yes" if entry["lockstep_wbo_modes"] else "NO",
                )
            )
            continue
        lines.append(
            "%-12s %6d %9.3f %9.3f %8s %9s"
            % (
                name,
                entry["steps_total"],
                entry["warm_seconds"],
                entry["cold_seconds"],
                "%.2fx" % entry["speedup_warm"],
                "yes" if entry["lockstep_%s" % name] else "NO",
            )
        )
    lines.append(
        "families at warm speedup >= %.1fx: %d"
        % (TARGET_WARM_SPEEDUP, report["families_meeting_warm_target"])
    )
    lines.append(
        "lockstep everywhere: %s" % ("yes" if report["lockstep_all"] else "NO")
    )
    return "\n".join(lines)
