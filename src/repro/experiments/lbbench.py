"""Lower-bounding microbenchmark: incremental vs cold bound computation.

Two complementary measurements per family:

drive mode (apples to apples, lockstep)
    A seeded decision walk (decide / propagate / backtrack, exactly like
    :mod:`.propbench`) during which every non-conflicting node is bounded
    *four* times over the same trail: by an incremental
    :class:`~repro.mis.independent_set.MISBound` (trail-delta cache) and
    a cold one, and by a warm :class:`~repro.lp.relaxation.LPRelaxationBound`
    (persistent simplex, dual warm starts) and a cold one.  The pairs see
    identical ``fixed`` mappings at identical nodes, so

    * ``(value, infeasible)`` must agree pair-wise at every node — the
      report records this under ``lockstep_bounds_equal`` and the CI
      smoke job asserts it; and
    * the calls/sec and simplex-iteration ratios are pure costs of the
      incremental machinery, not of divergent search trees.

solve mode (end to end)
    Full :class:`~repro.core.solver.BsoloSolver` runs per configuration
    (cold/static, incremental/static, incremental/adaptive) reporting
    realized conflicts/sec, the per-bounder stats from
    ``stats.lb_stats`` and the adaptive scheduler's skip counters.
    Search trajectories may diverge between schedules (bounding fewer
    nodes changes the tree), so these numbers measure realized solver
    throughput.

``run_lbbench`` writes everything to ``BENCH_lowerbound.json``.
"""

from __future__ import annotations

import json
import random
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.options import SolverOptions
from ..core.solver import BsoloSolver
from ..engine.interface import Conflict, make_engine
from ..lp.relaxation import LPRelaxationBound
from ..mis.independent_set import MISBound
from ..pb.instance import PBInstance
from .table1 import family_instances as _table1_instances

#: Families benchmarked by default (acc is constant-objective: no bounds).
FAMILIES = ("mcnc", "ptl", "grout")

#: Solve-mode configurations:
#: (label, incremental_bounds, lb_schedule, propagation backend).
CONFIGS = (
    ("cold-static", False, "static", "counter"),
    ("incremental-static", True, "static", "counter"),
    ("incremental-adaptive", True, "adaptive", "counter"),
    ("incremental-array", True, "adaptive", "array"),
)

#: Headline targets the report grades itself against.
TARGET_MIS_SPEEDUP = 2.0
TARGET_SIMPLEX_REDUCTION = 0.30


def family_instances(
    family: str, count: int = 3, scale: float = 1.0
) -> Tuple[List[PBInstance], List[str]]:
    """Deterministic Table-1-family instances for one benchmark family."""
    return _table1_instances(family, count=count, scale=scale)


# ----------------------------------------------------------------------
# Drive mode
# ----------------------------------------------------------------------
def drive_walk(
    instance: PBInstance,
    seed: int,
    max_nodes: int,
    lp_max_iterations: int = 20000,
) -> Dict[str, Any]:
    """Bound ``max_nodes`` nodes of one seeded walk with all four bounders.

    Returns per-bounder call counts, wall times, simplex iterations and
    the pair-wise lockstep equality flags.
    """
    engine = make_engine("counter", instance.num_variables)
    for constraint in instance.constraints:
        engine.add_constraint(constraint)
    engine.propagate()
    trail = engine.trail

    mis_inc = MISBound(instance)
    mis_inc.attach_trail(trail)
    mis_cold = MISBound(instance)
    lpr_warm = LPRelaxationBound(instance, max_iterations=lp_max_iterations)
    lpr_warm.attach_trail(trail)
    lpr_cold = LPRelaxationBound(
        instance, max_iterations=lp_max_iterations, warm=False
    )

    rng = random.Random(seed)
    order = list(range(1, instance.num_variables + 1))
    values = trail._value
    coin = rng.random
    nodes = 0
    mis_equal = True
    lpr_equal = True

    def bound_node() -> None:
        nonlocal mis_equal, lpr_equal
        fixed = trail.assignment()
        a = mis_inc.compute(fixed)
        b = mis_cold.compute(fixed)
        if (a.value, a.infeasible) != (b.value, b.infeasible):
            mis_equal = False
        c = lpr_warm.compute(fixed)
        d = lpr_cold.compute(fixed)
        if (c.value, c.infeasible) != (d.value, d.infeasible):
            lpr_equal = False

    bound_node()
    nodes += 1
    while nodes < max_nodes:
        progressed = False
        rng.shuffle(order)
        for variable in order:
            if nodes >= max_nodes:
                break
            if values[variable] >= 0:
                continue
            engine.decide(variable if coin() < 0.5 else -variable)
            progressed = True
            if isinstance(engine.propagate(), Conflict):
                level = trail.decision_level
                if level == 0:
                    nodes = max_nodes  # root conflict: walk is over
                    break
                engine.backtrack(level - 1)
                continue
            bound_node()
            nodes += 1
        if not progressed:
            break
        engine.backtrack(0)

    return {
        "nodes": nodes,
        "mis_equal": mis_equal,
        "lpr_equal": lpr_equal,
        "mis_incremental": mis_inc.stats_dict(),
        "mis_cold": mis_cold.stats_dict(),
        "lpr_warm": lpr_warm.stats_dict(),
        "lpr_cold": lpr_cold.stats_dict(),
    }


def bench_drive(
    instances: Sequence[PBInstance],
    seed: int = 1000,
    max_nodes: int = 120,
    lp_max_iterations: int = 20000,
) -> Dict[str, Any]:
    """Lockstep drive results summed over ``instances``."""
    totals = {
        "mis_incremental": {"calls": 0, "seconds": 0.0},
        "mis_cold": {"calls": 0, "seconds": 0.0},
        "lpr_warm": {"calls": 0, "seconds": 0.0, "iterations": 0},
        "lpr_cold": {"calls": 0, "seconds": 0.0, "iterations": 0},
    }
    nodes = 0
    mis_equal = True
    lpr_equal = True
    for index, instance in enumerate(instances):
        outcome = drive_walk(
            instance, seed + index, max_nodes, lp_max_iterations
        )
        nodes += outcome["nodes"]
        mis_equal = mis_equal and outcome["mis_equal"]
        lpr_equal = lpr_equal and outcome["lpr_equal"]
        for key, sums in totals.items():
            for field in sums:
                sums[field] += outcome[key][field]
    result: Dict[str, Any] = {"nodes": nodes}
    for key, sums in totals.items():
        entry = dict(sums)
        entry["seconds"] = round(entry["seconds"], 6)
        seconds = sums["seconds"]
        entry["calls_per_sec"] = (
            round(sums["calls"] / seconds, 1) if seconds > 0 else None
        )
        result[key] = entry
    result["lockstep_bounds_equal"] = mis_equal and lpr_equal
    result["lockstep_mis_equal"] = mis_equal
    result["lockstep_lpr_equal"] = lpr_equal
    inc = result["mis_incremental"]["calls_per_sec"]
    cold = result["mis_cold"]["calls_per_sec"]
    if inc and cold:
        result["speedup_mis_calls_per_sec"] = round(inc / cold, 3)
    warm_iters = totals["lpr_warm"]["iterations"]
    cold_iters = totals["lpr_cold"]["iterations"]
    if cold_iters > 0:
        result["simplex_iteration_reduction"] = round(
            1.0 - warm_iters / cold_iters, 3
        )
    warm_sec = totals["lpr_warm"]["seconds"]
    cold_sec = totals["lpr_cold"]["seconds"]
    if warm_sec > 0 and cold_sec > 0:
        result["speedup_lpr_wall"] = round(cold_sec / warm_sec, 3)
    return result


# ----------------------------------------------------------------------
# Solve mode
# ----------------------------------------------------------------------
def solve_run(
    instance: PBInstance,
    incremental: bool,
    schedule: str,
    lower_bound: str = "hybrid",
    max_conflicts: Optional[int] = 2000,
    time_limit: Optional[float] = 30.0,
    propagation: str = "counter",
) -> Dict[str, Any]:
    """One profiled solver run for a (incremental, schedule) config."""
    options = SolverOptions(
        lower_bound=lower_bound,
        lb_schedule=schedule,
        incremental_bounds=incremental,
        max_conflicts=max_conflicts,
        time_limit=time_limit,
        profile=True,
        propagation=propagation,
    )
    solver = BsoloSolver(instance, options)
    started = time.perf_counter()
    result = solver.solve()
    seconds = time.perf_counter() - started
    stats = result.stats
    return {
        "status": result.status,
        "cost": result.best_cost,
        "conflicts": stats.conflicts,
        "decisions": stats.decisions,
        "lower_bound_calls": stats.lower_bound_calls,
        "prunings": stats.prunings,
        "seconds": round(seconds, 6),
        "lb_stats": stats.lb_stats,
    }


def bench_solve(
    instances: Sequence[PBInstance],
    lower_bound: str = "hybrid",
    max_conflicts: Optional[int] = 2000,
    time_limit: Optional[float] = 30.0,
) -> Dict[str, Any]:
    """End-to-end runs per configuration (summed over instances)."""
    per_config: Dict[str, Dict[str, Any]] = {}
    for label, incremental, schedule, propagation in CONFIGS:
        conflicts = decisions = lb_calls = prunings = 0
        seconds = lpr_iterations = 0.0
        warm_calls = cold_calls = skipped_nodes = 0
        statuses: List[str] = []
        costs: List[Optional[int]] = []
        for instance in instances:
            outcome = solve_run(
                instance,
                incremental,
                schedule,
                lower_bound=lower_bound,
                max_conflicts=max_conflicts,
                time_limit=time_limit,
                propagation=propagation,
            )
            conflicts += outcome["conflicts"]
            decisions += outcome["decisions"]
            lb_calls += outcome["lower_bound_calls"]
            prunings += outcome["prunings"]
            seconds += outcome["seconds"]
            statuses.append(outcome["status"])
            costs.append(outcome["cost"])
            lpr = outcome["lb_stats"].get("lpr", {})
            lpr_iterations += lpr.get("iterations", 0)
            warm_calls += lpr.get("warm_calls", 0)
            cold_calls += lpr.get("cold_calls", 0)
            scheduler = outcome["lb_stats"].get("scheduler", {})
            skipped_nodes += scheduler.get("skipped_nodes", 0)
        per_config[label] = {
            "conflicts": conflicts,
            "decisions": decisions,
            "lower_bound_calls": lb_calls,
            "prunings": prunings,
            "seconds": round(seconds, 6),
            "conflicts_per_sec": (
                round(conflicts / seconds, 1) if seconds > 0 else None
            ),
            "simplex_iterations": int(lpr_iterations),
            "warm_calls": warm_calls,
            "cold_calls": cold_calls,
            "skipped_nodes": skipped_nodes,
            "statuses": statuses,
            "costs": costs,
        }
    result: Dict[str, Any] = dict(per_config)
    baseline = per_config.get("cold-static")
    for label, entry in per_config.items():
        if label == "cold-static" or not baseline:
            continue
        if entry["seconds"] > 0 and baseline["seconds"] > 0:
            result["speedup_%s_wall" % label] = round(
                baseline["seconds"] / entry["seconds"], 3
            )
    # Configs may exhaust different budgets on different instances, but
    # wherever two of them both proved optimality on the *same* instance
    # their costs must match — checked position-by-position so a config
    # that timed out somewhere doesn't silence the comparison entirely.
    num_instances = min(
        len(entry["statuses"]) for entry in per_config.values()
    )
    agree = True
    for position in range(num_instances):
        optima = {
            entry["costs"][position]
            for entry in per_config.values()
            if entry["statuses"][position] == "optimal"
        }
        if len(optima) > 1:
            agree = False
    result["optimal_costs_agree"] = agree
    return result


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_lbbench(
    families: Iterable[str] = FAMILIES,
    count: int = 3,
    scale: float = 1.0,
    seed: int = 1000,
    max_nodes: int = 120,
    max_conflicts: Optional[int] = 2000,
    time_limit: Optional[float] = 30.0,
    lower_bound: str = "hybrid",
    solve: bool = True,
) -> Dict[str, Any]:
    """Run the full microbenchmark; returns the report payload."""
    report: Dict[str, Any] = {
        "benchmark": "lowerbound",
        "configs": [label for label, _, _, _ in CONFIGS],
        "config": {
            "count": count,
            "scale": scale,
            "seed": seed,
            "max_nodes": max_nodes,
            "max_conflicts": max_conflicts,
            "time_limit": time_limit,
            "lower_bound": lower_bound,
        },
        "targets": {
            "mis_speedup_min": TARGET_MIS_SPEEDUP,
            "simplex_reduction_min": TARGET_SIMPLEX_REDUCTION,
        },
        "families": {},
    }
    for family in families:
        instances, _labels = family_instances(family, count=count, scale=scale)
        entry: Dict[str, Any] = {
            "instances": len(instances),
            "variables": sum(inst.num_variables for inst in instances),
            "drive": bench_drive(instances, seed=seed, max_nodes=max_nodes),
        }
        if solve:
            entry["solve"] = bench_solve(
                instances,
                lower_bound=lower_bound,
                max_conflicts=max_conflicts,
                time_limit=time_limit,
            )
        report["families"][family] = entry
    drives = [entry["drive"] for entry in report["families"].values()]
    report["families_meeting_mis_target"] = sum(
        1
        for drive in drives
        if (drive.get("speedup_mis_calls_per_sec") or 0) >= TARGET_MIS_SPEEDUP
    )
    report["families_meeting_simplex_target"] = sum(
        1
        for drive in drives
        if (drive.get("simplex_iteration_reduction") or 0)
        >= TARGET_SIMPLEX_REDUCTION
    )
    return report


def write_report(report: Dict[str, Any], path: str = "BENCH_lowerbound.json") -> str:
    """Persist the benchmark report as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_summary(report: Dict[str, Any]) -> str:
    """Console table: drive and solve lines per family."""
    lines = ["lower-bounding microbenchmark (baseline: cold per-node)"]
    for family, entry in report["families"].items():
        drive = entry["drive"]
        for key in ("mis_incremental", "mis_cold", "lpr_warm", "lpr_cold"):
            stats = drive[key]
            extra = (
                " %8d simplex iters" % stats["iterations"]
                if "iterations" in stats
                else ""
            )
            lines.append(
                "  %-6s drive  %-15s %6d calls %8.3fs %10s calls/sec%s"
                % (
                    family,
                    key,
                    stats["calls"],
                    stats["seconds"],
                    stats["calls_per_sec"],
                    extra,
                )
            )
        for key in (
            "speedup_mis_calls_per_sec",
            "simplex_iteration_reduction",
            "speedup_lpr_wall",
        ):
            if key in drive:
                lines.append("  %-6s drive  %s = %.3f" % (family, key, drive[key]))
        if not drive["lockstep_bounds_equal"]:
            lines.append("  %-6s drive  WARNING: bound values diverged" % family)
        solve = entry.get("solve")
        if solve:
            for label, _, _, _ in CONFIGS:
                stats = solve[label]
                lines.append(
                    "  %-6s solve  %-20s %6d conflicts %8.3fs %8d simplex iters"
                    % (
                        family,
                        label,
                        stats["conflicts"],
                        stats["seconds"],
                        stats["simplex_iterations"],
                    )
                )
            for key, value in sorted(solve.items()):
                if key.startswith("speedup_"):
                    lines.append("  %-6s solve  %s = %.3fx" % (family, key, value))
    lines.append(
        "families meeting MIS >= %.1fx target: %d"
        % (TARGET_MIS_SPEEDUP, report["families_meeting_mis_target"])
    )
    lines.append(
        "families meeting simplex reduction >= %.0f%% target: %d"
        % (
            TARGET_SIMPLEX_REDUCTION * 100,
            report["families_meeting_simplex_target"],
        )
    )
    return "\n".join(lines)
