"""Root lower-bound quality experiment (paper Section 3 claims).

For each instance, measures the MIS, Lagrangian and LP-relaxation bounds
at the root together with their cost, against the true optimum — making
the two tightness claims quantitative:

* "It is also often the case that the linear programming relaxation
  bound is higher than the one obtained with the MIS approach" (3.1);
* "for some instances, the bound provided by the Lagrangian relaxation
  method is tighter than the one obtained by the linear programming
  relaxation" / in practice it converges slowly (3.2, 6).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from ..core.options import SolverOptions
from ..core.solver import BsoloSolver
from ..lagrangian.subgradient import LagrangianBound, SubgradientOptions
from ..lp.relaxation import root_lpr_bound
from ..mis.independent_set import MISBound
from ..pb.instance import PBInstance


class BoundRecord:
    """Root bounds of one instance."""

    __slots__ = ("label", "optimum", "mis", "lgr", "lpr", "mis_time", "lgr_time", "lpr_time")

    def __init__(self, label, optimum, mis, lgr, lpr, mis_time, lgr_time, lpr_time):
        self.label = label
        #: True optimum (internal scale, no offset); None if unknown.
        self.optimum = optimum
        self.mis = mis
        self.lgr = lgr
        self.lpr = lpr
        self.mis_time = mis_time
        self.lgr_time = lgr_time
        self.lpr_time = lpr_time

    def gap(self, method: str) -> Optional[float]:
        """Relative gap to the optimum in percent (None when unknown)."""
        if not self.optimum:
            return None
        value = getattr(self, method)
        return 100.0 * (self.optimum - value) / self.optimum


def bound_quality(
    instances: Sequence[PBInstance],
    labels: Sequence[str],
    lgr_iterations: int = 200,
    solve_time_limit: float = 30.0,
) -> List[BoundRecord]:
    """Measure all three root bounds (and the optimum) per instance."""
    records: List[BoundRecord] = []
    for instance, label in zip(instances, labels):
        solver = BsoloSolver(
            instance,
            SolverOptions(lower_bound="lpr", time_limit=solve_time_limit),
        )
        outcome = solver.solve()
        optimum = (
            outcome.best_cost - instance.objective.offset
            if outcome.is_optimal
            else None
        )

        start = time.monotonic()
        mis = MISBound(instance).compute({}).value
        mis_time = time.monotonic() - start

        start = time.monotonic()
        lgr = LagrangianBound(
            instance,
            SubgradientOptions(max_iterations=lgr_iterations),
            reuse_multipliers=False,
        ).compute({}).value
        lgr_time = time.monotonic() - start

        start = time.monotonic()
        lpr = root_lpr_bound(instance)
        lpr_time = time.monotonic() - start

        records.append(
            BoundRecord(label, optimum, mis, lgr, lpr, mis_time, lgr_time, lpr_time)
        )
    return records


def format_bound_quality(records: Sequence[BoundRecord]) -> str:
    """Fixed-width table of root bound values and times per instance."""
    rows = [["instance", "optimum", "MIS", "LGR", "LPR", "t_MIS", "t_LGR", "t_LPR"]]
    for record in records:
        rows.append(
            [
                record.label,
                str(record.optimum) if record.optimum is not None else "?",
                str(record.mis),
                str(record.lgr),
                str(record.lpr),
                "%.3f" % record.mis_time,
                "%.3f" % record.lgr_time,
                "%.3f" % record.lpr_time,
            ]
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = [
        "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        for row in rows
    ]
    wins = sum(1 for r in records if r.lpr >= r.mis)
    lines.append(
        "LPR >= MIS on %d/%d instances (Section 3.1's 'often')"
        % (wins, len(records))
    )
    return "\n".join(lines)
