"""Feature-ablation experiments on the bsolo solver.

Turns individual techniques on/off (bound-conflict learning, cuts,
LP-guided branching, preprocessing, and the post-paper extensions) and
runs the resulting configurations on one instance family, reporting
status / time / decisions per configuration — the programmatic
counterpart of the ``benchmarks/test_bench_*`` ablations.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..core.options import SolverOptions
from ..core.result import SolveResult
from ..core.solver import BsoloSolver
from ..pb.instance import PBInstance

#: Named configurations: option overrides on top of bsolo-LPR defaults.
ABLATIONS: Dict[str, Dict] = {
    "full": {},
    "no-bound-learning": {"bound_conflict_learning": False},
    "no-cuts": {"upper_bound_cuts": False, "cardinality_cuts": False},
    "no-cardinality-cuts": {"cardinality_cuts": False},
    "no-lp-branching": {"lp_guided_branching": False},
    "no-preprocess": {"preprocess": False},
    "no-covering-reductions": {"covering_reductions": False},
    "with-pb-learning": {"pb_learning": True},
    "with-restarts": {"restarts": True},
    "with-phase-saving": {"phase_saving": True},
}


class AblationRecord:
    """One configuration's aggregate over a set of instances."""

    __slots__ = ("name", "results", "seconds")

    def __init__(self, name: str, results: List[SolveResult], seconds: float):
        self.name = name
        self.results = results
        self.seconds = seconds

    @property
    def solved(self) -> int:
        """Instances this configuration solved within budget."""
        return sum(1 for result in self.results if result.solved)

    @property
    def total_decisions(self) -> int:
        """Decisions summed over the configuration's runs."""
        return sum(result.stats.decisions for result in self.results)

    def __repr__(self) -> str:
        return "AblationRecord(%s: %d solved, %d decisions, %.2fs)" % (
            self.name,
            self.solved,
            self.total_decisions,
            self.seconds,
        )


def run_ablations(
    instances: Sequence[PBInstance],
    names: Optional[Sequence[str]] = None,
    lower_bound: str = "lpr",
    time_limit: float = 5.0,
) -> List[AblationRecord]:
    """Run each named configuration over all instances."""
    records: List[AblationRecord] = []
    for name in names or ABLATIONS:
        overrides = ABLATIONS[name]
        start = time.monotonic()
        results = []
        for instance in instances:
            options = SolverOptions(
                lower_bound=lower_bound, time_limit=time_limit, **overrides
            )
            results.append(BsoloSolver(instance, options).solve())
        records.append(
            AblationRecord(name, results, time.monotonic() - start)
        )
    return records


def format_ablations(records: Sequence[AblationRecord]) -> str:
    """Fixed-width table of the ablation grid results."""
    rows = [["configuration", "solved", "decisions", "seconds"]]
    for record in records:
        rows.append(
            [
                record.name,
                str(record.solved),
                str(record.total_decisions),
                "%.2f" % record.seconds,
            ]
        )
    widths = [max(len(row[i]) for row in rows) for i in range(4)]
    return "\n".join(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in rows
    )
