"""Load generator for the solve service: throughput, latency, cache.

Spins up an in-process :class:`~repro.service.BackgroundServer`, drives
it over real HTTP with a pool of submitter threads, and reports the
service-level numbers the other BENCH_* producers report for the solver
core: jobs/sec, p50/p99 end-to-end latency, and the cache hit rate.

Two scenarios (the ``families`` of the report):

* **mixed** — distinct random instances submitted concurrently with the
  cache bypassed, every result cross-checked against a direct
  :func:`repro.api.solve` on the same instance
  (``lockstep_results_match``: any status/cost divergence fails the
  family at every scale);
* **duplicates** — a small pool of base instances, each submitted once
  and then re-submitted as *renamed* variants (fresh random variable
  permutations), so the canonicalized-instance cache must recognize the
  equivalences.  ``cache_hit_rate`` is the headline (the acceptance
  floor is simply > 0), and ``lockstep_duplicates_match`` asserts every
  cached answer equals the direct solve of its own variant.

Report shape follows the other BENCH_* producers::

    {"benchmark": "service", "config": {...},
     "families": {"mixed": {...}, "duplicates": {...}},
     "lockstep_all": bool}

Entry point: ``python -m repro.experiments servebench`` (``--quick``
for the CI smoke configuration); writes ``BENCH_service.json``.
"""

from __future__ import annotations

import io
import json
import random
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from ..api import solve as direct_solve
from ..benchgen.random_pb import generate_planted
from ..core.options import SolverOptions
from ..pb.constraints import Constraint
from ..pb.instance import PBInstance
from ..pb.literals import variable
from ..pb.objective import Objective
from ..pb.opb import parse, write
from ..service import BackgroundServer, ServiceClient, ServiceConfig

#: Report families, in the order they run.
FAMILIES: Tuple[str, ...] = ("mixed", "duplicates")

#: Solver driven through the service (and directly, for lockstep).
DEFAULT_SOLVER = "bsolo-lpr"


def _permuted(instance: PBInstance, rng: random.Random) -> PBInstance:
    """A structurally identical instance under a random variable
    permutation — the cache must answer it from the original's entry."""
    order = list(range(1, instance.num_variables + 1))
    rng.shuffle(order)
    perm = {var: order[var - 1] for var in range(1, instance.num_variables + 1)}
    constraints = [
        Constraint.greater_equal(
            [
                (coef, perm[variable(lit)] if lit > 0 else -perm[variable(lit)])
                for coef, lit in constraint.terms
            ],
            constraint.rhs,
        )
        for constraint in instance.constraints
    ]
    objective = Objective(
        {perm[var]: cost for var, cost in instance.objective.costs.items()},
        offset=instance.objective.offset,
    )
    return PBInstance(
        constraints, objective, num_variables=instance.num_variables
    )


def _instance_suite(
    count: int, scale: float, seed: int
) -> List[PBInstance]:
    """Planted (satisfiable) random instances sized by ``scale``."""
    num_variables = max(6, int(10 * scale))
    num_constraints = max(8, int(16 * scale))
    return [
        generate_planted(
            num_variables=num_variables,
            num_constraints=num_constraints,
            max_arity=3,
            seed=seed + index,
        )[0]
        for index in range(count)
    ]


def _percentile(latencies: List[float], fraction: float) -> float:
    """Nearest-rank percentile of a latency sample (seconds)."""
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


def _drive(
    client: ServiceClient,
    texts: List[str],
    solver: str,
    cache: bool,
    submitters: int,
) -> Tuple[List[Dict[str, Any]], List[float], float]:
    """Submit every instance from a thread pool and wait for results.

    Returns the terminal job resources (submission order), the per-job
    end-to-end latencies, and the total wall time of the batch.
    """

    def one(text: str) -> Tuple[Dict[str, Any], float]:
        """Submit one instance and block until it is terminal."""
        start = time.perf_counter()
        job = client.submit(text, solver=solver, cache=cache)
        if job["state"] not in ("done", "cancelled", "failed"):
            job = client.wait(job["id"], timeout=300.0)
        return job, time.perf_counter() - start

    wall_start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=submitters) as pool:
        outcomes = list(pool.map(one, texts))
    wall = time.perf_counter() - wall_start
    return [job for job, _ in outcomes], [lat for _, lat in outcomes], wall


def bench_mixed(
    client: ServiceClient,
    instances: List[PBInstance],
    solver: str,
    submitters: int,
) -> Dict[str, Any]:
    """Distinct instances, cache bypassed: throughput + lockstep."""
    texts = [write(instance) for instance in instances]
    direct = [
        direct_solve(parse(io.StringIO(text)), solver, SolverOptions())
        for text in texts
    ]
    jobs, latencies, wall = _drive(
        client, texts, solver, cache=False, submitters=submitters
    )
    lockstep = True
    statuses: List[str] = []
    for job, reference in zip(jobs, direct):
        result = job.get("result") or {}
        statuses.append(result.get("status", job["state"]))
        if (
            job["state"] != "done"
            or result.get("status") != reference.status
            or result.get("cost") != reference.best_cost
        ):
            lockstep = False
    return {
        "jobs": len(jobs),
        "submitters": submitters,
        "wall_seconds": round(wall, 6),
        "jobs_per_sec": round(len(jobs) / max(wall, 1e-9), 3),
        "latency_p50_seconds": round(_percentile(latencies, 0.50), 6),
        "latency_p99_seconds": round(_percentile(latencies, 0.99), 6),
        "statuses": statuses,
        "lockstep_results_match": lockstep,
    }


def bench_duplicates(
    client: ServiceClient,
    instances: List[PBInstance],
    solver: str,
    submitters: int,
    variants: int,
    seed: int,
) -> Dict[str, Any]:
    """Renamed resubmissions: the canonical cache must serve them.

    Base instances are submitted first (cold batch, populating the
    cache), then ``variants`` fresh random renamings of each are
    submitted together; every variant answer is checked against a
    direct solve of that exact variant.
    """
    rng = random.Random(seed)
    base_texts = [write(instance) for instance in instances]
    variant_texts = [
        write(_permuted(instance, rng))
        for instance in instances
        for _ in range(variants)
    ]
    _jobs, _lat, _wall = _drive(
        client, base_texts, solver, cache=True, submitters=submitters
    )
    before = client.health()["cache"]
    jobs, latencies, wall = _drive(
        client, variant_texts, solver, cache=True, submitters=submitters
    )
    after = client.health()["cache"]
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    lookups = hits + misses
    lockstep = True
    cached_jobs = 0
    for job, text in zip(jobs, variant_texts):
        result = job.get("result") or {}
        if result.get("cached"):
            cached_jobs += 1
        reference = direct_solve(
            parse(io.StringIO(text)), solver, SolverOptions()
        )
        if (
            job["state"] != "done"
            or result.get("status") != reference.status
            or result.get("cost") != reference.best_cost
        ):
            lockstep = False
    return {
        "base_jobs": len(base_texts),
        "variant_jobs": len(jobs),
        "variants_per_instance": variants,
        "wall_seconds": round(wall, 6),
        "jobs_per_sec": round(len(jobs) / max(wall, 1e-9), 3),
        "latency_p50_seconds": round(_percentile(latencies, 0.50), 6),
        "latency_p99_seconds": round(_percentile(latencies, 0.99), 6),
        "cache_hits": hits,
        "cache_lookups": lookups,
        "cache_hit_rate": round(hits / max(lookups, 1), 4),
        "cached_jobs": cached_jobs,
        "lockstep_duplicates_match": lockstep,
        # scale-invariant claim for benchdiff: renamed resubmissions hit
        # the canonical cache at every scale, or the bench regressed
        "lockstep_cache_effective": hits > 0,
    }


def run_servebench(
    count: int = 8,
    scale: float = 1.0,
    seed: int = 9000,
    workers: int = 4,
    submitters: int = 8,
    variants: int = 3,
    solver: str = DEFAULT_SOLVER,
) -> Dict[str, Any]:
    """Run the full service benchmark; returns the report.

    ``count`` sizes the instance pool, ``workers`` the server's process
    shard, ``submitters`` the client thread pool, ``variants`` the
    renamed resubmissions per base instance in the duplicate scenario.
    """
    instances = _instance_suite(count, scale, seed)
    report: Dict[str, Any] = {
        "benchmark": "service",
        "config": {
            "count": count,
            "scale": scale,
            "seed": seed,
            "workers": workers,
            "submitters": submitters,
            "variants": variants,
            "solver": solver,
        },
        "families": {},
    }
    config = ServiceConfig(
        port=0, workers=workers, queue_depth=max(64, count * (variants + 2))
    )
    with BackgroundServer(config) as server:
        client = ServiceClient(port=server.port)
        report["families"]["mixed"] = bench_mixed(
            client, instances, solver, submitters
        )
        report["families"]["duplicates"] = bench_duplicates(
            client, instances, solver, submitters, variants, seed + 777
        )
        report["metrics"] = {
            line.split()[0]: float(line.split()[1])
            for line in client.metrics_text().splitlines()
            if line.startswith("service_jobs_total")
            or line.startswith("service_cache")
        }
    report["lockstep_all"] = all(
        value
        for entry in report["families"].values()
        for key, value in entry.items()
        if key.startswith("lockstep_")
    )
    return report


def write_report(
    report: Dict[str, Any], path: str = "BENCH_service.json"
) -> str:
    """Persist the benchmark report as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_summary(report: Dict[str, Any]) -> str:
    """Console table: one line per scenario."""
    lines = ["solve-service load benchmark"]
    header = "%-12s %6s %9s %10s %10s %9s %9s" % (
        "scenario", "jobs", "jobs/s", "p50 ms", "p99 ms", "hit rate", "lockstep"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name in FAMILIES:
        entry = report["families"][name]
        jobs = entry.get("variant_jobs", entry.get("jobs", 0))
        lockstep = all(
            value
            for key, value in entry.items()
            if key.startswith("lockstep_")
        )
        lines.append(
            "%-12s %6d %9.2f %10.2f %10.2f %9s %9s"
            % (
                name,
                jobs,
                entry["jobs_per_sec"],
                entry["latency_p50_seconds"] * 1e3,
                entry["latency_p99_seconds"] * 1e3,
                (
                    "%.0f%%" % (entry["cache_hit_rate"] * 100)
                    if "cache_hit_rate" in entry
                    else "-"
                ),
                "yes" if lockstep else "NO",
            )
        )
    lines.append(
        "lockstep everywhere: %s" % ("yes" if report["lockstep_all"] else "NO")
    )
    return "\n".join(lines)
