"""Scaling experiments: solve time / solved status vs instance size.

The paper's Table 1 fixes instance sizes and varies solvers; these sweeps
vary the size knob of one family to locate the *crossover* where lower
bounding starts paying for itself — the regime argument of the paper's
introduction ("branch-and-bound algorithms have proved to be very
effective when the instances to be solved are not highly constrained").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..benchgen.grout import generate_routing
from ..benchgen.ptl import generate_ptl_mapping
from ..benchgen.synthesis import generate_covering
from .runner import RunRecord, run_one


class ScalingPoint:
    """All solver runs at one size setting."""

    __slots__ = ("size", "records")

    def __init__(self, size: int, records: Dict[str, RunRecord]):
        self.size = size
        self.records = records

    def __repr__(self) -> str:
        cells = ", ".join(
            "%s=%s" % (name, record.cell()) for name, record in self.records.items()
        )
        return "ScalingPoint(size=%d: %s)" % (self.size, cells)


def _instance_for(family: str, size: int, seed: int):
    if family == "ptl":
        return generate_ptl_mapping(nodes=size, extra_edges=size // 2, seed=seed)
    if family == "grout":
        return generate_routing(
            rows=5, cols=5, nets=size, capacity=2, detours=4, seed=seed
        )
    if family == "mcnc":
        return generate_covering(
            minterms=2 * size, implicants=size, density=0.11, max_cost=120, seed=seed
        )
    raise ValueError("unknown scaling family %r" % family)


def scaling_sweep(
    family: str,
    sizes: Sequence[int],
    solver_names: Sequence[str] = ("bsolo-plain", "bsolo-lpr"),
    time_limit: float = 5.0,
    seed: int = 12,
) -> List[ScalingPoint]:
    """Run each solver at each size of one family (seeded instances)."""
    points: List[ScalingPoint] = []
    for size in sizes:
        instance = _instance_for(family, size, seed)
        records = {
            name: run_one(name, instance, "%s-%d" % (family, size), time_limit)
            for name in solver_names
        }
        points.append(ScalingPoint(size, records))
    return points


def crossover_size(
    points: Sequence[ScalingPoint], challenger: str, incumbent: str
) -> Optional[int]:
    """Smallest size at which ``challenger`` beats ``incumbent``.

    "Beats" = solves when the incumbent does not, or solves strictly
    faster.  Returns None when it never happens in the sweep.
    """
    for point in points:
        ours = point.records[challenger]
        theirs = point.records[incumbent]
        if ours.solved and not theirs.solved:
            return point.size
        if ours.solved and theirs.solved and ours.seconds < theirs.seconds:
            return point.size
    return None


def format_sweep(points: Sequence[ScalingPoint]) -> str:
    """A small text table: sizes as rows, solvers as columns."""
    if not points:
        return ""
    names = list(points[0].records)
    rows = [["size"] + names]
    for point in points:
        rows.append(
            [str(point.size)] + [point.records[name].cell() for name in names]
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    return "\n".join(
        "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        for row in rows
    )
