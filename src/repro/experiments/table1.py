"""Regeneration of the paper's Table 1 (its only exhibit).

Four instance families (grout routing, PTL/CMOS synthesis, MCNC
covering, acc-tight scheduling) x seven solver configurations (pbs,
galena, cplex, bsolo plain/MIS/LGR/LPR), with per-instance timings, "ub"
entries on budget expiry, and the "#Solved" summary row.

Instance sizes are scaled down from the originals (pure-Python solvers
are orders of magnitude slower than the paper's compiled ones on a 2005
Athlon; see DESIGN.md).  The claims being reproduced are *shape* claims:

1. within bsolo: plain <= MIS <= LGR <= LPR in instances solved;
2. bsolo-LPR solves at least as many as the PBS/Galena-likes overall;
3. the MILP baseline is strong on optimization rows, weak on the pure
   satisfaction (acc) rows;
4. on acc rows all bsolo variants behave identically (footnote a).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..benchgen.acc import scheduling_suite
from ..benchgen.grout import routing_suite
from ..benchgen.ptl import ptl_suite
from ..benchgen.synthesis import covering_suite
from ..pb.instance import PBInstance
from .runner import (
    BSOLO_NAMES,
    SOLVER_NAMES,
    RunRecord,
    run_matrix,
    solved_counts,
    write_records_jsonl,
)

#: Family keys in the paper's row order.
FAMILIES = ("grout", "ptl", "mcnc", "acc")


def family_instances(
    family: str, count: int = 5, scale: float = 1.0
) -> Tuple[List[PBInstance], List[str]]:
    """The scaled-down stand-in suite for one Table 1 row group.

    ``scale`` > 1 grows the instances (for calibration experiments);
    the defaults are tuned so the full matrix runs in minutes.
    """
    if family == "grout":
        instances = routing_suite(
            count=count,
            rows=max(2, round(6 * scale)),
            cols=max(2, round(6 * scale)),
            nets=max(2, round(14 * scale)),
            capacity=2,
            detours=5,
        )
        labels = ["grout-%d" % (i + 1) for i in range(count)]
    elif family == "ptl":
        instances = ptl_suite(
            count=count,
            nodes=max(3, round(22 * scale)),
            extra_edges=max(1, round(11 * scale)),
        )
        labels = ["ptl-%d" % (i + 1) for i in range(count)]
    elif family == "mcnc":
        instances = covering_suite(
            count=count,
            minterms=max(4, round(70 * scale)),
            implicants=max(3, round(36 * scale)),
            density=0.11,
            max_cost=120,
        )
        labels = ["mcnc-%d" % (i + 1) for i in range(count)]
    elif family == "acc":
        instances = scheduling_suite(
            count=count, teams=max(4, 2 * round(5 * scale))
        )
        labels = ["acc-%d" % (i + 1) for i in range(count)]
    else:
        raise ValueError("unknown family %r (choose from %s)" % (family, FAMILIES))
    return instances, labels


class Table1Result:
    """All runs of a Table 1 regeneration."""

    def __init__(self, per_family: Dict[str, Dict[str, List[RunRecord]]],
                 solver_names: Sequence[str]):
        #: family -> solver -> [RunRecord]
        self.per_family = per_family
        self.solver_names = list(solver_names)

    def solved_by_solver(self) -> Dict[str, int]:
        """The "#Solved" row, summed over all families."""
        totals = {name: 0 for name in self.solver_names}
        for records in self.per_family.values():
            for name, count in solved_counts(records).items():
                totals[name] += count
        return totals

    def solved_by_family(self, solver: str) -> Dict[str, int]:
        """#Solved per family for one solver column."""
        return {
            family: solved_counts(records)[solver]
            for family, records in self.per_family.items()
        }

    def dump_stats_jsonl(self, path: str) -> int:
        """Persist every run's structured stats as JSONL (one record per
        solver x instance, tagged with its family) so reproduction runs
        leave machine-readable trajectories behind.  Returns the number
        of records written."""
        written = 0
        for index, (family, records) in enumerate(self.per_family.items()):
            written += write_records_jsonl(
                records, path, extra={"family": family}, append=index > 0
            )
        return written

    def bsolo_ordering_holds(self) -> bool:
        """Claim 1: plain <= MIS and plain <= LGR <= LPR in #solved."""
        totals = self.solved_by_solver()
        plain, mis = totals["bsolo-plain"], totals["bsolo-mis"]
        lgr, lpr = totals["bsolo-lgr"], totals["bsolo-lpr"]
        return plain <= mis and plain <= lgr <= lpr

    def acc_rows_identical_for_bsolo(self) -> bool:
        """Claim 4: without a cost function every bsolo variant does the
        same search (identical status and decision counts)."""
        records = self.per_family.get("acc")
        if not records:
            return True
        reference = records[BSOLO_NAMES[0]]
        for name in BSOLO_NAMES[1:]:
            for ours, theirs in zip(records[name], reference):
                if ours.result.status != theirs.result.status:
                    return False
                if ours.result.stats.decisions != theirs.result.stats.decisions:
                    return False
        return True


def generate_table1(
    time_limit: float = 5.0,
    count: int = 5,
    scale: float = 1.0,
    solver_names: Sequence[str] = SOLVER_NAMES,
    families: Sequence[str] = FAMILIES,
) -> Table1Result:
    """Run the full (scaled) Table 1 matrix."""
    per_family: Dict[str, Dict[str, List[RunRecord]]] = {}
    for family in families:
        instances, labels = family_instances(family, count=count, scale=scale)
        per_family[family] = run_matrix(
            instances, labels, solver_names=solver_names, time_limit=time_limit
        )
    return Table1Result(per_family, solver_names)
