"""Certify-after-solve smoke sweep: proof logging end to end.

For each quick-family instance and each solver configuration, solve with
a :class:`repro.certify.ProofLogger` attached, then replay the produced
log with the independent :class:`repro.certify.ProofChecker` and
cross-check the checker's verdict against the solver's answer.  This is
the harness behind ``python -m repro.experiments certsmoke`` (the CI
``certify-smoke`` job) and the end-to-end certification tests.
"""

from __future__ import annotations

from io import StringIO
from typing import Any, Dict, List, Sequence, Tuple

from ..certify import ProofChecker, ProofError, ProofLogger
from .runner import run_one
from .table1 import family_instances

#: (propagation backend, lb schedule, incremental bounds) grid — every
#: engine, both schedulers, and the cold-bounder path all emit proofs.
CONFIGS: Tuple[Tuple[str, str, bool], ...] = (
    ("counter", "static", True),
    ("watched", "static", True),
    ("array", "static", True),
    ("counter", "adaptive", True),
    ("counter", "static", False),
)

#: The quick Table 1 stand-in families.
FAMILIES = ("mcnc", "ptl", "grout")


def _config_label(propagation: str, lb_schedule: str, incremental: bool) -> str:
    return "%s/%s/%s" % (
        propagation, lb_schedule, "incr" if incremental else "cold"
    )


def run_certsmoke(
    families: Sequence[str] = FAMILIES,
    count: int = 1,
    scale: float = 0.5,
    time_limit: float = 30.0,
    solver: str = "bsolo-lpr",
    configs: Sequence[Tuple[str, str, bool]] = CONFIGS,
) -> List[Dict[str, Any]]:
    """Solve, log, and independently re-check every (instance, config).

    Returns one record per run with the solver's answer, the checker's
    verdict, and an ``ok`` flag that also demands the two agree (the
    checker certifying a *different* claim than the solver printed would
    be exactly the kind of bug proof logging exists to catch).
    """
    records: List[Dict[str, Any]] = []
    for family in families:
        instances, labels = family_instances(family, count=count, scale=scale)
        for instance, label in zip(instances, labels):
            for propagation, lb_schedule, incremental in configs:
                sink = StringIO()
                logger = ProofLogger(sink)
                record = run_one(
                    solver,
                    instance,
                    label,
                    time_limit,
                    propagation=propagation,
                    lb_schedule=lb_schedule,
                    incremental_bounds=incremental,
                    proof=logger,
                )
                logger.close()
                row: Dict[str, Any] = {
                    "instance": label,
                    "config": _config_label(propagation, lb_schedule, incremental),
                    "status": record.result.status,
                    "cost": record.result.best_cost,
                    "steps": logger.steps_logged,
                }
                try:
                    outcome = ProofChecker(instance).check_text(sink.getvalue())
                except ProofError as exc:
                    row["verified"] = False
                    row["error"] = str(exc)
                    row["ok"] = False
                else:
                    row["verified"] = True
                    row["claim"] = outcome.status
                    row["claim_cost"] = outcome.cost
                    row["ok"] = (
                        outcome.status == record.result.status
                        and outcome.cost == record.result.best_cost
                    )
                records.append(row)
    return records


def format_certsmoke(records: Sequence[Dict[str, Any]]) -> str:
    """Fixed-width report, one line per run, summary last."""
    lines = [
        "%-12s %-22s %-14s %6s  %s"
        % ("instance", "config", "answer", "steps", "verdict")
    ]
    for row in records:
        answer = row["status"]
        if row["cost"] is not None:
            answer += " %d" % row["cost"]
        if row["ok"]:
            verdict = "verified"
        elif row["verified"]:
            verdict = "MISMATCH (claim %s %s)" % (
                row.get("claim"), row.get("claim_cost")
            )
        else:
            verdict = "REJECTED: %s" % row.get("error")
        lines.append(
            "%-12s %-22s %-14s %6d  %s"
            % (row["instance"], row["config"], answer, row["steps"], verdict)
        )
    good = sum(1 for row in records if row["ok"])
    lines.append("certified %d/%d runs" % (good, len(records)))
    return "\n".join(lines)
