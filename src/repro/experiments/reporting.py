"""Plain-text rendering of experiment tables (Table 1 lookalike)."""

from __future__ import annotations

from typing import Dict, List, Sequence

from .runner import RunRecord
from .table1 import Table1Result


def format_matrix(
    records: Dict[str, List[RunRecord]], solver_names: Sequence[str]
) -> str:
    """One family's block: instances as rows, solvers as columns."""
    if not records or not solver_names:
        return ""
    labels = [record.instance_label for record in records[solver_names[0]]]
    best_costs = []
    for index in range(len(labels)):
        costs = [
            records[name][index].result.best_cost
            for name in solver_names
            if records[name][index].result.solved
            and records[name][index].result.best_cost is not None
        ]
        best_costs.append(min(costs) if costs else None)

    header = ["Benchmark", "Sol."] + list(solver_names)
    rows = [header]
    for index, label in enumerate(labels):
        statuses = {
            records[name][index].result.status for name in solver_names
        }
        if "satisfiable" in statuses:
            sol = "SAT"  # pure satisfaction row (paper's [16] family)
        elif best_costs[index] is None:
            sol = "-"
        else:
            sol = str(best_costs[index])
        row = [label, sol]
        for name in solver_names:
            row.append(records[name][index].cell())
        rows.append(row)
    return _align(rows)


def format_table1(result: Table1Result) -> str:
    """The full report: one block per family plus the #Solved row."""
    blocks = []
    for family, records in result.per_family.items():
        blocks.append("[%s]" % family)
        blocks.append(format_matrix(records, result.solver_names))
    totals = result.solved_by_solver()
    total_instances = sum(
        len(next(iter(records.values()))) for records in result.per_family.values()
    )
    summary = [["#Solved", str(total_instances)] + [
        str(totals[name]) for name in result.solver_names
    ]]
    blocks.append(_align(summary))
    return "\n".join(blocks)


def _align(rows: List[List[str]]) -> str:
    widths = [0] * max(len(row) for row in rows)
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    for row in rows:
        lines.append(
            "  ".join(cell.rjust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)
