"""Timed solver runs and the solver registry (paper Section 6 harness).

The registry names mirror Table 1's columns: ``pbs``, ``galena``,
``cplex`` (our reimplementations of the comparators) and the four bsolo
configurations ``bsolo-plain`` / ``bsolo-mis`` / ``bsolo-lgr`` /
``bsolo-lpr``.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional, Sequence

from ..api import make_solver as _registry_make_solver
from ..core.options import SolverOptions
from ..core.result import SolveResult
from ..pb.instance import PBInstance

#: Table 1 column order.
SOLVER_NAMES = (
    "pbs",
    "galena",
    "cplex",
    "bsolo-plain",
    "bsolo-mis",
    "bsolo-lgr",
    "bsolo-lpr",
)

#: The bsolo variants (the paper's four right-most columns).
BSOLO_NAMES = ("bsolo-plain", "bsolo-mis", "bsolo-lgr", "bsolo-lpr")


def make_solver(
    name: str,
    instance: PBInstance,
    time_limit: Optional[float],
    tracer=None,
    profile: bool = False,
    on_progress=None,
    progress_interval: int = 1000,
    propagation: str = "counter",
    lb_schedule: str = "static",
    incremental_bounds: bool = True,
    proof=None,
    metrics=None,
    hotspot=None,
):
    """Instantiate a registered solver for one instance.

    Thin wrapper over the :mod:`repro.api` registry, keeping the paper's
    Table 1 column names (``pbs``/``galena``/``cplex``/``scherzo`` are
    registry aliases).  Beyond the Table 1 columns, every registered
    solver — ``bsolo-hybrid``, ``covering-bnb``, ``portfolio``, … — is
    available.  The observability hooks (``tracer``, ``profile``,
    ``on_progress``, ``metrics``, ``hotspot``) and the ``propagation``
    backend name are honoured by the solvers that support them and
    ignored by the rest.
    """
    options = SolverOptions(
        time_limit=time_limit,
        tracer=tracer,
        profile=profile,
        on_progress=on_progress,
        progress_interval=progress_interval,
        propagation=propagation,
        lb_schedule=lb_schedule,
        incremental_bounds=incremental_bounds,
        proof=proof,
        metrics=metrics,
        hotspot=hotspot,
    )
    return _registry_make_solver(instance, name, options)


class RunRecord:
    """One (solver, instance) cell of an experiment table."""

    __slots__ = ("solver", "instance_label", "result", "seconds")

    def __init__(self, solver: str, instance_label: str, result: SolveResult, seconds: float):
        self.solver = solver
        self.instance_label = instance_label
        self.result = result
        self.seconds = seconds

    @property
    def solved(self) -> bool:
        """True when the run ended with a proven answer."""
        return self.result.solved

    def cell(self) -> str:
        """Table 1 style cell: time when solved, "ub N" / "time" otherwise."""
        if self.result.solved:
            return "%.2f" % self.seconds
        if self.result.best_cost is not None:
            return "ub %d" % self.result.best_cost
        return "time"

    def as_dict(self) -> Dict[str, Any]:
        """Machine-readable record: outcome plus the full structured
        stats, for persisted per-run trajectories."""
        return {
            "solver": self.solver,
            "instance": self.instance_label,
            "status": self.result.status,
            "cost": self.result.best_cost,
            "seconds": round(self.seconds, 6),
            "stats": self.result.stats.as_dict(),
        }

    def __repr__(self) -> str:
        return "RunRecord(%s on %s: %s)" % (
            self.solver, self.instance_label, self.cell()
        )


def run_one(
    solver_name: str,
    instance: PBInstance,
    instance_label: str,
    time_limit: Optional[float] = None,
    tracer=None,
    profile: bool = False,
    on_progress=None,
    progress_interval: int = 1000,
    propagation: str = "counter",
    lb_schedule: str = "static",
    incremental_bounds: bool = True,
    proof=None,
    metrics=None,
    hotspot=None,
) -> RunRecord:
    """Run one solver on one instance with a wall-clock budget.

    ``proof`` is an optional :class:`repro.certify.ProofLogger`; only
    the bsolo solvers honour it (they record a checkable derivation of
    the answer — see ``docs/PROOFS.md``).  ``metrics`` is an optional
    :class:`repro.obs.metrics.MetricsRegistry`, ``hotspot`` an optional
    :class:`repro.obs.prof.HotspotProfiler`; both are live-updated by
    the solvers that support them.
    """
    solver = make_solver(
        solver_name,
        instance,
        time_limit,
        tracer=tracer,
        profile=profile,
        on_progress=on_progress,
        progress_interval=progress_interval,
        propagation=propagation,
        lb_schedule=lb_schedule,
        incremental_bounds=incremental_bounds,
        proof=proof,
        metrics=metrics,
        hotspot=hotspot,
    )
    start = time.monotonic()
    result = solver.solve()
    seconds = time.monotonic() - start
    return RunRecord(solver_name, instance_label, result, seconds)


def run_matrix(
    instances: Sequence,
    labels: Sequence[str],
    solver_names: Sequence[str] = SOLVER_NAMES,
    time_limit: Optional[float] = None,
) -> Dict[str, List[RunRecord]]:
    """Run every named solver over every instance.

    Returns ``{solver_name: [RunRecord per instance]}``.
    """
    records: Dict[str, List[RunRecord]] = {name: [] for name in solver_names}
    for instance, label in zip(instances, labels):
        for name in solver_names:
            records[name].append(run_one(name, instance, label, time_limit))
    return records


def solved_counts(records: Dict[str, List[RunRecord]]) -> Dict[str, int]:
    """The paper's "#Solved" summary row."""
    return {
        name: sum(1 for record in runs if record.solved)
        for name, runs in records.items()
    }


def write_records_jsonl(
    records: Dict[str, List[RunRecord]],
    path: str,
    extra: Optional[Dict[str, Any]] = None,
    append: bool = False,
) -> int:
    """Persist a run matrix as JSONL, one record per (solver, instance).

    ``extra`` key/values (e.g. a family label) are merged into every
    record.  Returns the number of lines written.
    """
    written = 0
    with open(path, "a" if append else "w") as handle:
        for name in records:
            for record in records[name]:
                row = record.as_dict()
                if extra:
                    row.update(extra)
                handle.write(json.dumps(row) + "\n")
                written += 1
    return written
