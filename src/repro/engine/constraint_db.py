"""Constraint databases: classification, counters, and watcher lists.

Every constraint is *classified on add* into one of three propagation
kinds (paper Section 2 vocabulary):

* :data:`KIND_CLAUSE` — any single true literal satisfies it;
* :data:`KIND_CARDINALITY` — all coefficients equal, ``b`` of the
  literals must be true;
* :data:`KIND_GENERAL` — arbitrary normalized PB constraint.

Two databases share the :class:`StoredConstraint` record:

:class:`ConstraintDatabase` (counter backend)
    For each stored constraint maintains

        slack = sum_{literal not currently false} coefficient  -  rhs

    eagerly via occurrence lists: a constraint is *violated* when its
    slack is negative and it *implies* an unassigned literal whenever
    that literal's coefficient exceeds the slack.

:class:`WatchedConstraintDatabase` (watched backend)
    Keeps per-kind watcher lists (literal -> constraints to wake when
    that literal becomes false) so that assignments cost O(watchers)
    instead of O(occurrences); see :mod:`repro.engine.watched` for the
    wake dynamics.

Constraints may be added mid-search (learned clauses, bound-conflict
clauses, knapsack cuts — paper Sections 4 and 5): the initial state is
computed against the current trail.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..pb.constraints import Constraint
from .assignment import Trail

#: Propagation kinds, decided once per constraint at add time.
KIND_CLAUSE = "clause"
KIND_CARDINALITY = "cardinality"
KIND_GENERAL = "general"


def classify(constraint: Constraint) -> str:
    """Propagation kind of a normalized constraint.

    Clause takes precedence (a saturated clause also has all-equal
    coefficients); tautologies fall through to :data:`KIND_GENERAL`,
    where they are inert under every backend.
    """
    if constraint.is_clause:
        return KIND_CLAUSE
    if constraint.is_cardinality:
        return KIND_CARDINALITY
    return KIND_GENERAL


class StoredConstraint:
    """A constraint plus its mutable propagation state.

    The counter backend uses ``slack``; the watched backend uses the
    ``wlits``/``threshold``/``watch_set``/``wsum``/``watch_all`` group.
    Both use ``kind``, ``index``, ``learned``, ``max_coef``, ``queued``.
    """

    __slots__ = (
        "constraint",
        "slack",
        "index",
        "learned",
        "max_coef",
        "required",
        "queued",
        "kind",
        "wlits",
        "threshold",
        "watch_set",
        "wsum",
        "watch_all",
    )

    def __init__(self, constraint: Constraint, index: int, learned: bool):
        self.constraint = constraint
        self.slack = 0  # set by ConstraintDatabase.attach
        self.index = index
        self.learned = learned
        #: Largest coefficient: when ``slack >= max_coef`` the constraint
        #: can neither be violated further nor imply anything — an O(1)
        #: filter that skips most implication scans.
        self.max_coef = max((coef for coef, _ in constraint.terms), default=0)
        #: Watched-sum threshold ``rhs + max_coef``: while the watched
        #: non-false supply stays at or above it, nothing can be implied.
        self.required = constraint.rhs + self.max_coef
        #: Already sitting in the propagation queue (dedup flag).
        self.queued = False
        #: Propagation kind (clause / cardinality / general).
        self.kind = classify(constraint)
        #: Mutable literal list for clause/cardinality watching: the
        #: first 2 (clause) or ``threshold + 1`` (cardinality) positions
        #: are the watched literals.
        self.wlits: Optional[List[int]] = None
        #: Cardinality: how many literals must be true.
        self.threshold = 0
        #: General PB: the literals currently watched.
        self.watch_set: Optional[Set[int]] = None
        #: General PB: sum of coefficients of watched, non-false literals.
        self.wsum = 0
        #: General PB: degraded mode — every literal is watched.
        self.watch_all = False

    def __repr__(self) -> str:
        return "Stored(#%d %s slack=%d %r)" % (
            self.index, self.kind, self.slack, self.constraint
        )


class ConstraintDatabase:
    """All constraints (original + learned) with slack bookkeeping."""

    def __init__(self, trail: Trail):
        self._trail = trail
        self.constraints: List[StoredConstraint] = []
        # literal -> list of (stored, coefficient) for constraints containing it
        self._occurrences: Dict[int, List[Tuple[StoredConstraint, int]]] = {}

    # ------------------------------------------------------------------
    def add(self, constraint: Constraint, learned: bool = False) -> StoredConstraint:
        """Attach a constraint; slack reflects the current trail."""
        stored = StoredConstraint(constraint, len(self.constraints), learned)
        self.constraints.append(stored)
        slack = -constraint.rhs
        for coef, lit in constraint.terms:
            self._occurrences.setdefault(lit, []).append((stored, coef))
            if not self._trail.literal_is_false(lit):
                slack += coef
        stored.slack = slack
        return stored

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self):
        return iter(self.constraints)

    def occurrences(self, literal: int) -> List[Tuple[StoredConstraint, int]]:
        """Constraints containing ``literal`` (with its coefficient)."""
        return self._occurrences.get(literal, [])

    # ------------------------------------------------------------------
    # Slack maintenance, driven by the propagator
    # ------------------------------------------------------------------
    def on_literal_true(self, literal: int) -> List[StoredConstraint]:
        """Update slacks after ``literal`` became true.

        The complement became false; every constraint containing the
        complement loses that coefficient from its slack.  Returns the
        touched constraints (candidates for conflict/implication).
        """
        touched: List[StoredConstraint] = []
        for stored, coef in self._occurrences.get(-literal, ()):
            stored.slack -= coef
            touched.append(stored)
        return touched

    def on_literal_unassigned(self, literal: int) -> None:
        """Restore slacks after backtracking undid ``literal`` (was true)."""
        for stored, coef in self._occurrences.get(-literal, ()):
            stored.slack += coef

    # ------------------------------------------------------------------
    def remove_learned(self, keep) -> int:
        """Drop learned constraints for which ``keep(stored)`` is false.

        Safe at any point of the search: implication *reasons* are stored
        by value on the trail, so deleting the clause they came from
        cannot corrupt conflict analysis.  Returns the number removed.
        """
        kept: List[StoredConstraint] = []
        removed = 0
        for stored in self.constraints:
            if stored.learned and not keep(stored):
                removed += 1
                continue
            kept.append(stored)
        if not removed:
            return 0
        self.constraints = kept
        self._occurrences = {}
        for index, stored in enumerate(kept):
            stored.index = index
            for coef, lit in stored.constraint.terms:
                self._occurrences.setdefault(lit, []).append((stored, coef))
        return removed

    def num_learned(self) -> int:
        """Number of learned (non-input) constraints in the database."""
        return sum(1 for stored in self.constraints if stored.learned)

    # ------------------------------------------------------------------
    def check_slacks(self) -> None:
        """Debug invariant: recompute every slack from scratch."""
        assignment = self._trail.assignment()
        for stored in self.constraints:
            expected = stored.constraint.slack(assignment)
            if expected != stored.slack:
                raise AssertionError(
                    "slack drift on %r: stored %d, recomputed %d"
                    % (stored.constraint, stored.slack, expected)
                )


class WatchedConstraintDatabase:
    """All constraints (original + learned) with per-kind watcher lists.

    Watcher lists map a literal to the constraints that must be *woken*
    when that literal becomes false.  Clauses and cardinality
    constraints keep their watched literals in the leading positions of
    ``stored.wlits`` (2 and ``threshold + 1`` respectively); general PB
    constraints keep a watched set whose non-false coefficient sum
    (``stored.wsum``) is held at ``rhs + max_coef`` or above — below
    that, the constraint *degrades* permanently: its watch entries move
    to the counter-style occurrence map ``pb_occ`` (``watch_all``),
    where ``wsum`` is the non-false coefficient sum over **all** terms
    and ``wsum - rhs`` is the exact slack.  The wake dynamics live in
    :class:`~repro.engine.watched.WatchedPropagator`; this class owns
    attachment, classification-based dispatch and deletion.
    """

    def __init__(self, trail: Trail):
        self._trail = trail
        self.constraints: List[StoredConstraint] = []
        #: literal -> [(stored, other_lit)] for binary clauses.  Both
        #: literals of a binary clause are permanently watched: no
        #: replacement can ever exist, so the wake path skips watcher
        #: maintenance entirely and tests the single other literal.
        self.binary_watch: Dict[int, List[Tuple[StoredConstraint, int]]] = {}
        #: literal -> clauses watching it (woken when it becomes false).
        self.clause_watch: Dict[int, List[StoredConstraint]] = {}
        #: literal -> cardinality constraints watching it.
        self.card_watch: Dict[int, List[StoredConstraint]] = {}
        #: literal -> [(stored, coefficient)] for general PB watchers.
        self.pb_watch: Dict[int, List[Tuple[StoredConstraint, int]]] = {}
        #: literal -> [(stored, coefficient)] occurrence lists for
        #: *degraded* (watch-all) general PB constraints; maintained by
        #: the engine exactly like the counter backend's occurrences.
        self.pb_occ: Dict[int, List[Tuple[StoredConstraint, int]]] = {}

    # ------------------------------------------------------------------
    def add(self, constraint: Constraint, learned: bool = False) -> StoredConstraint:
        """Attach a constraint; watches reflect the current trail.

        ``stored.slack`` is set to the attach-time slack as a snapshot
        for the caller's violation check — unlike the counter database
        it is **not** maintained afterwards.
        """
        stored = StoredConstraint(constraint, len(self.constraints), learned)
        self.constraints.append(stored)
        stored.slack = self._attach(stored)
        return stored

    def _attach(self, stored: StoredConstraint) -> int:
        """Initialize watch structures; returns the attach-time slack."""
        trail = self._trail
        constraint = stored.constraint
        nonfalse = sum(
            coef
            for coef, lit in constraint.terms
            if not trail.literal_is_false(lit)
        )
        if stored.kind == KIND_GENERAL:
            self._attach_general(stored, nonfalse)
            return nonfalse - constraint.rhs

        # Clause / cardinality: order literals non-false first, false
        # ones by descending assignment level, so that when a false
        # literal must be watched it is the one undone soonest — the
        # watch invariant then survives every backtrack.
        def sort_key(lit: int) -> Tuple[int, int]:
            if not trail.literal_is_false(lit):
                return (0, 0)
            return (1, -trail.level(lit if lit > 0 else -lit))

        lits = sorted(constraint.literals, key=sort_key)
        stored.wlits = lits
        if stored.kind == KIND_CLAUSE:
            if len(lits) == 2:
                self.binary_watch.setdefault(lits[0], []).append((stored, lits[1]))
                self.binary_watch.setdefault(lits[1], []).append((stored, lits[0]))
                return nonfalse - constraint.rhs
            watch_count = min(2, len(lits))
            watch_map = self.clause_watch
        else:
            stored.threshold = constraint.cardinality_threshold
            watch_count = min(stored.threshold + 1, len(lits))
            if 4 * watch_count >= 3 * len(lits):
                # Dense: the watched block covers (nearly) every literal,
                # so almost any falsification wakes the constraint anyway
                # — laziness buys nothing while the wake machinery costs
                # plenty.  Run it in the counter regime from birth
                # (eager wsum + deduped exact scans), which also matches
                # the profile winner on tight routing cardinalities.
                self._degrade_at_birth(stored, nonfalse)
                return nonfalse - constraint.rhs
            watch_map = self.card_watch
        for lit in lits[:watch_count]:
            watch_map.setdefault(lit, []).append(stored)
        return nonfalse - constraint.rhs

    def _degrade_at_birth(self, stored: StoredConstraint, nonfalse: int) -> None:
        """Counter-regime attachment: every term in ``pb_occ``.

        ``wsum`` is the non-false coefficient sum over all terms, so
        ``wsum - rhs`` is the exact slack — the same invariant
        :meth:`watch_everything` establishes, here without ever paying
        for a watch set.  Used for constraints the watch scheme cannot
        make lazy (dense cardinalities, near-full PB watch sets).
        """
        stored.watch_all = True
        stored.wsum = nonfalse
        if stored.watch_set is None:
            stored.watch_set = set()
        pb_occ = self.pb_occ
        for coef, lit in stored.constraint.terms:
            pb_occ.setdefault(lit, []).append((stored, coef))

    def _attach_general(self, stored: StoredConstraint, nonfalse: int) -> None:
        trail = self._trail
        constraint = stored.constraint
        required = stored.required
        watch_set: Set[int] = set()
        stored.watch_set = watch_set
        if nonfalse < required:
            # Degraded from birth: counter-style occurrence entries
            # (false literals contribute 0 to wsum; undo restores them).
            self._degrade_at_birth(stored, nonfalse)
            return
        # Greedy: largest coefficients first needs the fewest watchers.
        wsum = 0
        chosen: List[Tuple[int, int]] = []
        for coef, lit in sorted(constraint.terms, key=lambda t: -t[0]):
            if trail.literal_is_false(lit):
                continue
            chosen.append((coef, lit))
            wsum += coef
            if wsum >= required:
                break
        if 4 * len(chosen) >= 3 * len(constraint.terms):
            # The greedy watch set covers (nearly) every term: dense —
            # see _degrade_at_birth.
            self._degrade_at_birth(stored, nonfalse)
            return
        for coef, lit in chosen:
            watch_set.add(lit)
            self.pb_watch.setdefault(lit, []).append((stored, coef))
        stored.wsum = wsum

    def watch_everything(self, stored: StoredConstraint) -> None:
        """Degrade a general PB constraint permanently to watch-all.

        Called by the engine when the watched sum cannot be restored.
        Every term enters the counter-style ``pb_occ`` occurrence map;
        the constraint's now-stale ``pb_watch`` entries are dropped
        lazily by the engine on their next wake (and are skipped in the
        eager wsum updates via the ``watch_all`` flag).  Degradation is
        sticky: near-bound constraints (e.g. objective knapsack cuts)
        would otherwise pay an O(arity) shrink/re-extend cycle on every
        level, which profiling shows dominates the search.
        """
        pb_occ = self.pb_occ
        for coef, lit in stored.constraint.terms:
            pb_occ.setdefault(lit, []).append((stored, coef))
        stored.watch_set.clear()
        stored.watch_all = True

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self):
        return iter(self.constraints)

    def num_learned(self) -> int:
        """Number of learned (non-input) constraints in the database."""
        return sum(1 for stored in self.constraints if stored.learned)

    # ------------------------------------------------------------------
    def remove_learned(self, keep) -> int:
        """Drop learned constraints for which ``keep(stored)`` is false.

        Rebuilds every watcher list from the survivors so no deleted
        constraint can ever be woken again (the stale-reference audit of
        the engine protocol).  Returns the number removed.
        """
        kept: List[StoredConstraint] = []
        removed = 0
        for stored in self.constraints:
            if stored.learned and not keep(stored):
                removed += 1
                continue
            kept.append(stored)
        if not removed:
            return 0
        self.constraints = kept
        # cleared in place: the engine holds direct references to these maps
        self.binary_watch.clear()
        self.clause_watch.clear()
        self.card_watch.clear()
        self.pb_watch.clear()
        self.pb_occ.clear()
        for index, stored in enumerate(kept):
            stored.index = index
            self._reregister(stored)
        return removed

    def _reregister(self, stored: StoredConstraint) -> None:
        """Re-enter a survivor's existing watches into the fresh maps."""
        if stored.kind == KIND_CLAUSE:
            wlits = stored.wlits
            if len(wlits) == 2:
                self.binary_watch.setdefault(wlits[0], []).append((stored, wlits[1]))
                self.binary_watch.setdefault(wlits[1], []).append((stored, wlits[0]))
                return
            for lit in wlits[: min(2, len(wlits))]:
                self.clause_watch.setdefault(lit, []).append(stored)
        elif stored.watch_all:  # degraded card or general PB
            for coef, lit in stored.constraint.terms:
                self.pb_occ.setdefault(lit, []).append((stored, coef))
        elif stored.kind == KIND_CARDINALITY:
            count = min(stored.threshold + 1, len(stored.wlits))
            for lit in stored.wlits[:count]:
                self.card_watch.setdefault(lit, []).append(stored)
        else:
            constraint = stored.constraint
            for lit in stored.watch_set:
                self.pb_watch.setdefault(lit, []).append(
                    (stored, constraint.coefficient(lit))
                )

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Debug validator: watch maps and per-constraint watch state
        agree, and every general PB constraint satisfies the watched-sum
        invariant (``wsum >= rhs + max_coef`` or watch-all).

        Only valid at *quiescence* — after a ``propagate()`` that
        returned no conflict.  While a conflict is outstanding the
        falsification queue may hold unprocessed literals whose watch
        repairs have not run yet; the solver always resolves that by
        backtracking past them (or terminating on a root-level
        conflict) before propagating again.
        """
        trail = self._trail
        for stored in self.constraints:
            if stored.watch_all:  # degraded card or general PB
                expected = sum(
                    coef
                    for coef, lit in stored.constraint.terms
                    if not trail.literal_is_false(lit)
                )
                if expected != stored.wsum:
                    raise AssertionError(
                        "degraded wsum drift on %r: stored %d, "
                        "recomputed %d" % (stored, stored.wsum, expected)
                    )
                for coef, lit in stored.constraint.terms:
                    entries = self.pb_occ.get(lit, ())
                    if not any(e[0] is stored for e in entries):
                        raise AssertionError(
                            "term %d of degraded %r missing from pb_occ"
                            % (lit, stored)
                        )
                continue
            if stored.kind == KIND_GENERAL:
                expected = sum(
                    stored.constraint.coefficient(lit)
                    for lit in stored.watch_set
                    if not trail.literal_is_false(lit)
                )
                if expected != stored.wsum:
                    raise AssertionError(
                        "wsum drift on %r: stored %d, recomputed %d"
                        % (stored, stored.wsum, expected)
                    )
                if stored.wsum < stored.required:
                    raise AssertionError(
                        "watched-sum invariant broken on %r: wsum %d < %d "
                        "without watch_all"
                        % (stored, stored.wsum, stored.required)
                    )
                for lit in stored.watch_set:
                    entries = self.pb_watch.get(lit, ())
                    if not any(entry[0] is stored for entry in entries):
                        raise AssertionError(
                            "watched literal %d of %r missing from pb_watch"
                            % (lit, stored)
                        )
            elif stored.kind == KIND_CLAUSE:
                if len(stored.wlits) == 2:
                    for lit in stored.wlits:
                        entries = self.binary_watch.get(lit, ())
                        if not any(e[0] is stored for e in entries):
                            raise AssertionError(
                                "binary watch %d of %r missing" % (lit, stored)
                            )
                    continue
                for lit in stored.wlits[: min(2, len(stored.wlits))]:
                    if stored not in self.clause_watch.get(lit, ()):
                        raise AssertionError(
                            "clause watch %d of %r missing" % (lit, stored)
                        )
            else:
                count = min(stored.threshold + 1, len(stored.wlits))
                for lit in stored.wlits[:count]:
                    if stored not in self.card_watch.get(lit, ()):
                        raise AssertionError(
                            "cardinality watch %d of %r missing" % (lit, stored)
                        )
        for lit, entries in self.pb_watch.items():
            for stored, coef in entries:
                # entries of degraded constraints linger until their next
                # wake drops them (lazy removal); anything else is stale
                if (
                    lit not in stored.watch_set
                    and not stored.watch_all
                    and stored in self.constraints
                ):
                    raise AssertionError(
                        "stale pb_watch entry %d -> %r" % (lit, stored)
                    )
        for lit, entries in self.pb_occ.items():
            for stored, coef in entries:
                if not stored.watch_all:
                    raise AssertionError(
                        "pb_occ entry %d -> %r but constraint is not "
                        "degraded" % (lit, stored)
                    )
