"""Constraint database with occurrence lists and incremental slacks.

Implements the counter-based representation used by the propagator: for
each stored constraint we maintain

    slack = sum_{literal not currently false} coefficient  -  rhs

A constraint is *violated* when its slack is negative and it *implies* an
unassigned literal whenever that literal's coefficient exceeds the slack
(making the literal false would push the slack negative).  Occurrence
lists map literals to the constraints they appear in so that slacks can be
updated in O(occurrences) when a literal becomes false or is unassigned on
backtracking.

Constraints may be added mid-search (learned clauses, bound-conflict
clauses, knapsack cuts — paper Sections 4 and 5): the initial slack is
computed against the current trail.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..pb.constraints import Constraint
from .assignment import Trail


class StoredConstraint:
    """A constraint plus its mutable propagation state."""

    __slots__ = ("constraint", "slack", "index", "learned", "max_coef", "queued")

    def __init__(self, constraint: Constraint, index: int, learned: bool):
        self.constraint = constraint
        self.slack = 0  # set by ConstraintDatabase.attach
        self.index = index
        self.learned = learned
        #: Largest coefficient: when ``slack >= max_coef`` the constraint
        #: can neither be violated further nor imply anything — an O(1)
        #: filter that skips most implication scans.
        self.max_coef = max((coef for coef, _ in constraint.terms), default=0)
        #: Already sitting in the propagation queue (dedup flag).
        self.queued = False

    def __repr__(self) -> str:
        return "Stored(#%d slack=%d %r)" % (self.index, self.slack, self.constraint)


class ConstraintDatabase:
    """All constraints (original + learned) with slack bookkeeping."""

    def __init__(self, trail: Trail):
        self._trail = trail
        self.constraints: List[StoredConstraint] = []
        # literal -> list of (stored, coefficient) for constraints containing it
        self._occurrences: Dict[int, List[Tuple[StoredConstraint, int]]] = {}

    # ------------------------------------------------------------------
    def add(self, constraint: Constraint, learned: bool = False) -> StoredConstraint:
        """Attach a constraint; slack reflects the current trail."""
        stored = StoredConstraint(constraint, len(self.constraints), learned)
        self.constraints.append(stored)
        slack = -constraint.rhs
        for coef, lit in constraint.terms:
            self._occurrences.setdefault(lit, []).append((stored, coef))
            if not self._trail.literal_is_false(lit):
                slack += coef
        stored.slack = slack
        return stored

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self):
        return iter(self.constraints)

    def occurrences(self, literal: int) -> List[Tuple[StoredConstraint, int]]:
        """Constraints containing ``literal`` (with its coefficient)."""
        return self._occurrences.get(literal, [])

    # ------------------------------------------------------------------
    # Slack maintenance, driven by the propagator
    # ------------------------------------------------------------------
    def on_literal_true(self, literal: int) -> List[StoredConstraint]:
        """Update slacks after ``literal`` became true.

        The complement became false; every constraint containing the
        complement loses that coefficient from its slack.  Returns the
        touched constraints (candidates for conflict/implication).
        """
        touched: List[StoredConstraint] = []
        for stored, coef in self._occurrences.get(-literal, ()):
            stored.slack -= coef
            touched.append(stored)
        return touched

    def on_literal_unassigned(self, literal: int) -> None:
        """Restore slacks after backtracking undid ``literal`` (was true)."""
        for stored, coef in self._occurrences.get(-literal, ()):
            stored.slack += coef

    # ------------------------------------------------------------------
    def remove_learned(self, keep) -> int:
        """Drop learned constraints for which ``keep(stored)`` is false.

        Safe at any point of the search: implication *reasons* are stored
        by value on the trail, so deleting the clause they came from
        cannot corrupt conflict analysis.  Returns the number removed.
        """
        kept: List[StoredConstraint] = []
        removed = 0
        for stored in self.constraints:
            if stored.learned and not keep(stored):
                removed += 1
                continue
            kept.append(stored)
        if not removed:
            return 0
        self.constraints = kept
        self._occurrences = {}
        for index, stored in enumerate(kept):
            stored.index = index
            for coef, lit in stored.constraint.terms:
                self._occurrences.setdefault(lit, []).append((stored, coef))
        return removed

    def num_learned(self) -> int:
        return sum(1 for stored in self.constraints if stored.learned)

    # ------------------------------------------------------------------
    def check_slacks(self) -> None:
        """Debug invariant: recompute every slack from scratch."""
        assignment = self._trail.assignment()
        for stored in self.constraints:
            expected = stored.constraint.slack(assignment)
            if expected != stored.slack:
                raise AssertionError(
                    "slack drift on %r: stored %d, recomputed %d"
                    % (stored.constraint, stored.slack, expected)
                )
