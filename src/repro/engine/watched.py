"""Watched-literal propagation backends for PB constraints.

Registry name ``"watched"``.  Where the counter engine
(:mod:`repro.engine.propagation`) pays O(occurrences) on **every**
assignment and undo, this engine pays only for *watched* occurrences,
with a constraint-kind-specialized scheme (cf. Le Berre & Wallon's
dedicated PB watching strategies):

clauses (two watched literals)
    Classical unit propagation: a clause is woken only when one of its
    two watched literals becomes false, and first looks for a non-false
    replacement.

cardinality constraints (``b + 1`` watchers)
    A constraint requiring ``b`` true literals watches ``b + 1`` of
    them.  While all watched literals are non-false nothing can be
    implied; when one falls and no replacement exists, the remaining
    ``b`` watched literals are exactly the non-false ones — imply the
    unassigned, or conflict when fewer than ``b`` survive.

general PB constraints (watched sum with slack)
    Watch a subset of literals whose non-false coefficient sum
    (``wsum``) is at least ``rhs + max_coef``; under that invariant no
    implication is possible, so unwatched falsifications are free.
    When a watched literal falls below the threshold the watch set is
    extended with non-false literals; if the sum cannot be restored the
    constraint *degrades permanently to the counter regime*: its terms
    enter the ``pb_occ`` occurrence map (false literals contribute
    zero), ``wsum - rhs`` is the exact slack, and implication scans are
    queued straight from the eager assignment hook.  Degradation is
    sticky by design — constraints that go tight once (objective cuts,
    learned PB resolvents) go tight on every level, and re-shrinking
    the watch set would pay an O(arity) extension scan each time.
    ``wsum`` is maintained eagerly on assignment and restored on
    backtrack for watched and degraded occurrences alike.

The implied-literal fixed point is identical to the counter engine's by
construction (both close the rule "coefficient exceeds slack"); the
differential test suite enforces this on randomized instances.  That
shared fixed point is also the **proof-logging contract**: the
independent checker (:class:`repro.certify.checker.ProofChecker`)
replays RUP steps with the same rule, so proofs logged under either
backend verify identically.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..pb.constraints import Constraint
from .constraint_db import (
    KIND_CLAUSE,
    KIND_GENERAL,
    StoredConstraint,
    WatchedConstraintDatabase,
)
from .interface import Conflict, PropagationEngine, register_engine

__all__ = ["WatchedPropagator"]


class WatchedPropagator(PropagationEngine):
    """Lazy engine: per-kind watcher lists, trail-queue propagation."""

    name = "watched"

    def __init__(self, num_variables: int, tracer=None, metrics=None):
        super().__init__(num_variables, tracer=tracer, metrics=metrics)
        self.database = WatchedConstraintDatabase(self.trail)
        #: Newly added constraints awaiting one exact implication scan.
        self._pending: Deque[StoredConstraint] = deque()
        #: Trail index up to which falsifications have been processed.
        self._qhead = 0
        # hot-path aliases; the database mutates these maps in place, so
        # the references stay valid across learned-constraint deletion
        self._binary_watch = self.database.binary_watch
        self._clause_watch = self.database.clause_watch
        self._card_watch = self.database.card_watch
        self._pb_watch = self.database.pb_watch
        self._pb_occ = self.database.pb_occ

    # ------------------------------------------------------------------
    # Constraint management
    # ------------------------------------------------------------------
    def add_constraint(
        self, constraint: Constraint, learned: bool = False
    ) -> Optional[Conflict]:
        """Attach a constraint mid-search.

        Returns a conflict immediately when the constraint is violated
        under the current trail; otherwise schedules it for an exact
        implication scan by the next :meth:`propagate`.
        """
        stored = self.database.add(constraint, learned=learned)
        if stored.slack < 0:  # attach-time snapshot
            return Conflict(stored, self.explain_violation(stored))
        stored.queued = True
        self._pending.append(stored)
        return None

    # ------------------------------------------------------------------
    # Eager watched-sum maintenance (general PB only)
    # ------------------------------------------------------------------
    def _on_assign(self, literal: int) -> None:
        # ``literal`` became true, so its negation became false: every
        # general PB constraint watching the negation loses that
        # coefficient from its watched sum.  Watch repair for the
        # non-degraded constraints happens lazily at wake time (the
        # trail queue); degraded constraints live entirely here — the
        # counter rule on their exact slack decides whether to queue an
        # implication scan (deduped via ``queued``).
        pb_occ = self._pb_occ
        if pb_occ:
            entries = pb_occ.get(-literal)
            if entries:
                pending = self._pending
                for stored, coef in entries:
                    wsum = stored.wsum - coef
                    stored.wsum = wsum
                    if wsum < stored.required and not stored.queued:
                        stored.queued = True
                        pending.append(stored)
        pb_watch = self._pb_watch
        if pb_watch:
            entries = pb_watch.get(-literal)
            if entries:
                for stored, coef in entries:
                    if not stored.watch_all:  # skip stale degraded entries
                        stored.wsum -= coef

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _propagate_loop(self) -> Optional[Conflict]:
        trail_list = self.trail._trail
        values = self.trail._value
        pending = self._pending
        binary_get = self._binary_watch.get
        clause_get = self._clause_watch.get
        # instances are often clause-only: skip the cardinality/PB maps
        # entirely while they are empty
        card_watch = self._card_watch
        pb_watch = self._pb_watch
        while True:
            # Drain the falsification queue first.  Binary clauses are
            # fully inline (the single other literal decides everything,
            # no watcher maintenance); clause/cardinality wakes imply
            # inline (extending the queue in place, hence
            # len(trail_list) is re-read every iteration); general PB
            # wakes only adjust watches and *defer* their exact scans to
            # the pending queue, whose ``queued`` flag dedups them — a
            # high-arity constraint touched by many literals of one
            # propagation round is scanned once, not once per literal.
            qhead = self._qhead
            while qhead < len(trail_list):
                lit = -trail_list[qhead]  # just became false
                qhead += 1
                self._qhead = qhead
                conflict = None
                entries = binary_get(lit)
                if entries:
                    for stored, other in entries:
                        v = values[other if other > 0 else -other]
                        if v == (1 if other > 0 else 0):
                            continue  # satisfied
                        if v < 0:
                            self.num_propagations += 1
                            self.imply(
                                other, (other, lit),
                                antecedent=stored.constraint,
                            )
                        else:  # both literals false
                            conflict = Conflict(
                                stored, self.explain_violation(stored)
                            )
                            break
                if conflict is None:
                    watchers = clause_get(lit)
                    if watchers:
                        conflict = self._visit_clauses(lit, watchers, values)
                if card_watch and conflict is None:
                    watchers = card_watch.get(lit)
                    if watchers:
                        conflict = self._visit_cards(lit, watchers, values)
                if pb_watch and conflict is None:
                    watchers = pb_watch.get(lit)
                    if watchers:
                        self._visit_pb(lit, watchers, values)
                if conflict is not None:
                    self._clear_pending()
                    return conflict
            if not pending:
                return None
            stored = pending.popleft()
            stored.queued = False
            conflict = self._exact_scan(stored)
            if conflict is not None:
                self._clear_pending()
                return conflict

    def _clear_pending(self) -> None:
        for stored in self._pending:
            stored.queued = False
        self._pending.clear()

    # ------------------------------------------------------------------
    def _visit_clauses(self, lit: int, watchers, values) -> Optional[Conflict]:
        clause_watch = self.database.clause_watch
        kept = []
        i = 0
        total = len(watchers)
        while i < total:
            stored = watchers[i]
            i += 1
            wl = stored.wlits
            if len(wl) < 2:
                # unit clause: its only literal just became false
                kept.append(stored)
                watchers[:] = kept + watchers[i:]
                return Conflict(stored, self.explain_violation(stored))
            if wl[0] == lit:
                wl[0] = wl[1]
                wl[1] = lit
            first = wl[0]
            fval = values[first if first > 0 else -first]
            # values are {-1, 0, 1}: "satisfied" needs no assigned check
            # and "non-false" is a single != against the falsifying value.
            if fval == (1 if first > 0 else 0):
                kept.append(stored)  # satisfied: keep watching lit
                continue
            moved = False
            for k in range(2, len(wl)):
                w = wl[k]
                if values[w if w > 0 else -w] != (0 if w > 0 else 1):
                    wl[1] = w
                    wl[k] = lit
                    clause_watch.setdefault(w, []).append(stored)
                    moved = True
                    break
            if moved:
                continue
            kept.append(stored)
            if fval >= 0:  # first is false too: every literal is false
                watchers[:] = kept + watchers[i:]
                return Conflict(stored, self.explain_violation(stored))
            # first is the single non-false literal: unit implication;
            # the clause itself (oriented) is the reason
            self.num_propagations += 1
            self.imply(first, (first,) + tuple(wl[1:]), antecedent=stored.constraint)
        watchers[:] = kept
        return None

    # ------------------------------------------------------------------
    def _visit_cards(self, lit: int, watchers, values) -> Optional[Conflict]:
        card_watch = self.database.card_watch
        kept = []
        i = 0
        total = len(watchers)
        while i < total:
            stored = watchers[i]
            i += 1
            wl = stored.wlits
            threshold = stored.threshold
            count = threshold + 1
            if count > len(wl):
                count = len(wl)
            pos = -1
            for j in range(count):
                if wl[j] == lit:
                    pos = j
                    break
            if pos < 0:  # pragma: no cover - defensive (stale entry)
                continue
            moved = False
            for k in range(count, len(wl)):
                w = wl[k]
                # non-false is one comparison: values are {-1, 0, 1}
                if values[w if w > 0 else -w] != (0 if w > 0 else 1):
                    wl[pos] = w
                    wl[k] = lit
                    card_watch.setdefault(w, []).append(stored)
                    moved = True
                    break
            if moved:
                continue
            kept.append(stored)
            # every unwatched literal is false: the watched block holds
            # all remaining non-false literals
            nonfalse = 0
            unassigned = []
            for j in range(count):
                w = wl[j]
                v = values[w if w > 0 else -w]
                if v < 0:
                    nonfalse += 1
                    unassigned.append(w)
                elif v == (1 if w > 0 else 0):
                    nonfalse += 1
            if nonfalse < threshold:
                watchers[:] = kept + watchers[i:]
                return Conflict(stored, self.explain_violation(stored))
            if nonfalse == threshold and unassigned:
                constraint = stored.constraint
                false_lits = tuple(
                    l
                    for _, l in constraint.terms
                    if values[l if l > 0 else -l] == (0 if l > 0 else 1)
                )
                for u in unassigned:
                    self.num_propagations += 1
                    self.imply(u, (u,) + false_lits, antecedent=constraint)
        watchers[:] = kept
        return None

    # ------------------------------------------------------------------
    def _visit_pb(self, lit: int, watchers, values) -> None:
        """Wake general PB constraints watching ``lit``.

        Only adjusts watch structures; violation/implication discovery is
        deferred to a deduped :meth:`_exact_scan` through the pending
        queue, so a constraint touched by many falsifications in one
        propagation round pays one scan (matching the counter engine's
        pending-queue batching).
        """
        database = self.database
        pb_watch = database.pb_watch
        pending = self._pending
        kept = []
        for stored, coef in watchers:
            if stored.watch_all:
                # Degraded since this entry was registered: the
                # constraint now lives in ``pb_occ`` (handled eagerly in
                # ``_on_assign``); drop the stale watch entry.
                continue
            # wsum already excludes ``lit`` (eager update on assignment)
            constraint = stored.constraint
            required = stored.required
            if stored.wsum >= required:
                # enough watched supply left: stop watching ``lit``
                stored.watch_set.discard(lit)
                continue
            watch_set = stored.watch_set
            wsum = stored.wsum
            for c2, l2 in constraint.terms:
                if l2 in watch_set:
                    continue
                if values[l2 if l2 > 0 else -l2] == (0 if l2 > 0 else 1):
                    continue  # false: cannot help the watched sum
                watch_set.add(l2)
                pb_watch.setdefault(l2, []).append((stored, c2))
                wsum += c2
                if wsum >= required:
                    break
            stored.wsum = wsum
            if wsum >= required:
                watch_set.discard(lit)
                continue
            # Cannot restore the invariant: every non-false literal is
            # already watched.  Degrade permanently to the counter
            # regime (pb_occ occurrence lists; false literals contribute
            # zero, so undo events keep wsum exact).  Degradation is
            # sticky — recovering a small watch set would pay the
            # O(arity) extension scan again at the next tight spot, and
            # near-bound constraints (e.g. objective knapsack cuts) hit
            # that spot on every level.
            database.watch_everything(stored)
            if not stored.queued:
                stored.queued = True
                pending.append(stored)
        watchers[:] = kept

    # ------------------------------------------------------------------
    def _exact_scan(self, stored: StoredConstraint) -> Optional[Conflict]:
        """Exact-slack scan (counter rule) for a pending constraint."""
        values = self.trail._value
        constraint = stored.constraint
        if stored.watch_all:
            # degraded PB constraint: wsum is the exact non-false supply
            # (maintained eagerly on assignment, restored on backtrack)
            slack = stored.wsum - constraint.rhs
        else:
            slack = -constraint.rhs
            for coef, l in constraint.terms:
                if values[l if l > 0 else -l] != (0 if l > 0 else 1):
                    slack += coef  # non-false: one comparison suffices
        if slack < 0:
            return Conflict(stored, self.explain_violation(stored))
        if slack >= stored.max_coef:
            return None
        for coef, l in constraint.terms:
            if coef <= slack:
                continue
            if values[l if l > 0 else -l] < 0:
                self.num_propagations += 1
                self.imply(
                    l, self._build_reason(stored, l, coef), antecedent=constraint
                )
        return None

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------
    def backtrack(self, target_level: int) -> None:
        """Undo assignments above ``target_level``; watched sums are
        restored through the watcher lists (watched occurrences only)."""
        pb_watch = self._pb_watch
        pb_occ = self._pb_occ
        antecedents = self._antecedent
        if pb_watch or pb_occ:
            for lit in self.trail.backtrack(target_level):
                antecedents.pop(lit if lit > 0 else -lit, None)
                entries = pb_occ.get(-lit)
                if entries:
                    for stored, coef in entries:
                        stored.wsum += coef
                entries = pb_watch.get(-lit)
                if entries:
                    for stored, coef in entries:
                        if not stored.watch_all:  # skip stale entries
                            stored.wsum += coef
        elif antecedents:
            for lit in self.trail.backtrack(target_level):
                antecedents.pop(lit if lit > 0 else -lit, None)
        else:
            self.trail.backtrack(target_level)
        self._clear_pending()
        # Unprocessed queue entries were all above the target level.
        trail_len = len(self.trail._trail)
        if self._qhead > trail_len:
            self._qhead = trail_len

    def reschedule_all(self) -> None:
        """Queue every constraint for an exact implication scan."""
        for stored in self.database.constraints:
            if not stored.queued:
                stored.queued = True
                self._pending.append(stored)

    # ------------------------------------------------------------------
    def reduce_learned(self, keep) -> int:
        """Forget learned constraints failing ``keep`` (clause deletion).

        Watcher lists are rebuilt from the survivors and the pending
        queue is purged, so no deleted constraint is ever woken or
        re-scanned.
        """
        removed = self.database.remove_learned(keep)
        if removed:
            survivors = set(map(id, self.database.constraints))
            fresh: Deque[StoredConstraint] = deque()
            for stored in self._pending:
                if id(stored) in survivors:
                    fresh.append(stored)
                else:
                    stored.queued = False
            self._pending = fresh
        return removed


register_engine(
    "watched",
    WatchedPropagator,
    "watched literals: 2-watch clauses, (b+1)-watch cardinality, "
    "watched-sum PB",
)
