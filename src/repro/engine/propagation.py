"""Counter-based boolean constraint propagation for PB constraints.

For a normalized constraint ``sum a_j l_j >= b`` define::

    slack = sum_{l_j not false} a_j  -  b

*Violation*: ``slack < 0`` — too many literals are already false.
*Implication*: an unassigned ``l_j`` with ``a_j > slack`` must be true.
For clauses this degenerates to classical unit propagation.

Slack updates are applied *eagerly* at assignment time (and undone at
backtrack time), which keeps the database consistent even when a conflict
interrupts the propagation queue.  Reasons for implications are computed
eagerly too, as clausal explanations: a greedy (largest coefficients
first) subset of the constraint's false literals strong enough to force
the implication — this keeps conflict analysis purely clausal, the
strategy of the bsolo family of solvers.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from ..obs.events import PropagationEvent
from ..pb.constraints import Constraint
from ..pb.literals import variable
from .assignment import Reason, Trail
from .constraint_db import ConstraintDatabase, StoredConstraint


class Conflict:
    """A violated constraint plus a clausal explanation.

    ``literals`` are all false under the current trail; together they are
    sufficient for the violation.  For bound conflicts (paper Section 4)
    ``stored`` is ``None`` and the literals come from ``w_bc``.
    """

    __slots__ = ("stored", "literals")

    def __init__(self, stored: Optional[StoredConstraint], literals: Tuple[int, ...]):
        self.stored = stored
        self.literals = literals

    def __repr__(self) -> str:
        return "Conflict(%r)" % (self.literals,)


class Propagator:
    """Drives assignments, slack maintenance and implication discovery.

    ``tracer`` (a :class:`repro.obs.trace.Tracer`) is optional; when
    given and enabled, every :meth:`propagate` call that produced
    implications or a conflict emits one batch event.  The hot loops are
    untouched — the accounting rides on the existing counter.
    """

    def __init__(self, num_variables: int, tracer=None):
        self.trail = Trail(num_variables)
        self.database = ConstraintDatabase(self.trail)
        self._pending: Deque[StoredConstraint] = deque()
        self.num_propagations = 0
        self._tracer = tracer if (tracer is not None and tracer.enabled) else None
        self._batch_mark = 0
        if self._tracer is None:
            # Skip the batch-accounting wrapper entirely on the null path.
            self.propagate = self._propagate_loop  # type: ignore[method-assign]
        # var -> the PB constraint that implied it (for cutting-plane
        # learning; the clausal reason on the trail is authoritative for
        # clausal analysis)
        self._antecedent: dict = {}

    # ------------------------------------------------------------------
    # Constraint management
    # ------------------------------------------------------------------
    def add_constraint(
        self, constraint: Constraint, learned: bool = False
    ) -> Optional[Conflict]:
        """Attach a constraint mid-search.

        Returns a conflict immediately when the constraint is violated
        under the current trail; otherwise schedules it for implication
        scanning by the next :meth:`propagate`.
        """
        stored = self.database.add(constraint, learned=learned)
        if stored.slack < 0:
            return Conflict(stored, self.explain_violation(stored))
        stored.queued = True
        self._pending.append(stored)
        return None

    # ------------------------------------------------------------------
    # Assignment entry points
    # ------------------------------------------------------------------
    def decide(self, literal: int) -> None:
        """Open a new decision level with ``literal`` true."""
        self.trail.decide(literal)
        self._after_assign(literal)

    def imply(
        self,
        literal: int,
        reason: Reason,
        antecedent: Optional[Constraint] = None,
    ) -> None:
        """Assert an implication at the current level."""
        self.trail.imply(literal, reason)
        if antecedent is not None:
            self._antecedent[variable(literal)] = antecedent
        self._after_assign(literal)

    def antecedent(self, var: int) -> Optional[Constraint]:
        """The PB constraint that implied ``var`` (None for decisions or
        externally asserted literals)."""
        return self._antecedent.get(var)

    def assume(self, literal: int) -> None:
        """Root-level assignment (preprocessing, necessary assignments)."""
        self.trail.assume(literal)
        self._after_assign(literal)

    def _after_assign(self, literal: int) -> None:
        pending = self._pending
        for stored in self.database.on_literal_true(literal):
            # enqueue only when the constraint might act: it is violated,
            # or some coefficient now exceeds the slack
            if not stored.queued and stored.slack < stored.max_coef:
                stored.queued = True
                pending.append(stored)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def propagate(self) -> Optional[Conflict]:
        """Run boolean constraint propagation to a fixed point.

        Returns the first conflict discovered, or ``None``.  The pending
        queue is fully drained either way (slacks stay consistent; stale
        entries are re-checked cheaply).
        """
        if self._tracer is None:
            return self._propagate_loop()
        conflict = self._propagate_loop()
        delta = self.num_propagations - self._batch_mark
        self._batch_mark = self.num_propagations
        if delta or conflict is not None:
            self._tracer.emit(
                PropagationEvent(
                    count=delta,
                    level=self.trail.decision_level,
                    conflict=conflict is not None,
                )
            )
        return conflict

    def _propagate_loop(self) -> Optional[Conflict]:
        while self._pending:
            stored = self._pending.popleft()
            stored.queued = False
            if stored.slack < 0:
                self._clear_pending()
                return Conflict(stored, self.explain_violation(stored))
            if stored.slack >= stored.max_coef:
                continue  # nothing can be implied
            conflict = self._scan_implications(stored)
            if conflict is not None:
                self._clear_pending()
                return conflict
        return None

    def _clear_pending(self) -> None:
        for stored in self._pending:
            stored.queued = False
        self._pending.clear()

    def _scan_implications(self, stored: StoredConstraint) -> Optional[Conflict]:
        slack = stored.slack
        constraint = stored.constraint
        # hot loop: read the trail's value array directly (UNASSIGNED = -1);
        # implying a literal never changes this constraint's own slack, so
        # the local `slack` stays valid for the whole scan
        values = self.trail._value
        for coef, lit in constraint.terms:
            if coef <= slack:
                continue
            var = lit if lit > 0 else -lit
            if values[var] >= 0:
                continue
            reason = self._build_reason(stored, lit, coef)
            self.num_propagations += 1
            self.imply(lit, reason, antecedent=constraint)
        return None

    # ------------------------------------------------------------------
    # Explanations
    # ------------------------------------------------------------------
    def _false_terms_descending(
        self, stored: StoredConstraint
    ) -> List[Tuple[int, int]]:
        trail = self.trail
        false_terms = [
            (coef, lit)
            for coef, lit in stored.constraint.terms
            if trail.literal_is_false(lit)
        ]
        false_terms.sort(key=lambda term: -term[0])
        return false_terms

    def _build_reason(self, stored: StoredConstraint, literal: int, coef: int) -> Reason:
        """Clausal reason for ``literal`` implied by ``stored``.

        Needs false literals whose combined coefficient exceeds
        ``total - rhs - coef`` (after which the remaining supply cannot
        reach the rhs without ``literal``).
        """
        constraint = stored.constraint
        total = sum(c for c, _ in constraint.terms)
        needed = total - constraint.rhs - coef
        chosen: List[int] = [literal]
        acc = 0
        for false_coef, false_lit in self._false_terms_descending(stored):
            if acc > needed:
                break
            chosen.append(false_lit)
            acc += false_coef
        if acc <= needed:  # pragma: no cover - defensive
            raise AssertionError("implication reason under-explains %r" % constraint)
        return tuple(chosen)

    def explain_violation(self, stored: StoredConstraint) -> Tuple[int, ...]:
        """False literals sufficient for ``slack < 0``.

        Their combined coefficient must exceed ``total - rhs``.
        """
        constraint = stored.constraint
        total = sum(c for c, _ in constraint.terms)
        needed = total - constraint.rhs
        chosen: List[int] = []
        acc = 0
        for false_coef, false_lit in self._false_terms_descending(stored):
            if acc > needed:
                break
            chosen.append(false_lit)
            acc += false_coef
        if acc <= needed:
            raise AssertionError("constraint %r is not violated" % constraint)
        return tuple(chosen)

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------
    def backtrack(self, target_level: int) -> None:
        """Undo assignments above ``target_level`` and restore slacks."""
        for lit in self.trail.backtrack(target_level):
            self.database.on_literal_unassigned(lit)
            self._antecedent.pop(variable(lit), None)
        self._clear_pending()
        # Constraints that became unit again are rediscovered lazily: any
        # implication missed here can only matter after the caller asserts
        # a learned clause and re-propagates, which re-queues via
        # add_constraint / assignments.  To stay complete we rescan all
        # constraints whose slack could imply at this level on demand via
        # reschedule_all() from the solver after a backjump.

    def reschedule_all(self) -> None:
        """Queue every constraint for an implication scan."""
        for stored in self.database.constraints:
            if not stored.queued:
                stored.queued = True
                self._pending.append(stored)

    # ------------------------------------------------------------------
    def reduce_learned(self, keep) -> int:
        """Forget learned constraints failing ``keep`` (clause deletion).

        An implied literal keeps its (value-copied) reason, so soundness
        is unaffected; only future propagation strength changes.
        """
        removed = self.database.remove_learned(keep)
        if removed:
            survivors = set(map(id, self.database.constraints))
            fresh = deque()
            for stored in self._pending:
                if id(stored) in survivors:
                    fresh.append(stored)
                else:
                    stored.queued = False
            self._pending = fresh
        return removed

    # ------------------------------------------------------------------
    def model(self) -> dict:
        """The current (complete) assignment as a var -> 0/1 mapping."""
        if not self.trail.all_assigned():
            raise ValueError("model requested from partial assignment")
        return self.trail.assignment()
