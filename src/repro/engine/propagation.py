"""Counter-based boolean constraint propagation for PB constraints.

This is the **reference backend** of the :class:`PropagationEngine`
protocol (registry name ``"counter"``).  For a normalized constraint
``sum a_j l_j >= b`` define::

    slack = sum_{l_j not false} a_j  -  b

*Violation*: ``slack < 0`` — too many literals are already false.
*Implication*: an unassigned ``l_j`` with ``a_j > slack`` must be true.
For clauses this degenerates to classical unit propagation.

Slack updates are applied *eagerly* at assignment time (and undone at
backtrack time), which keeps the database consistent even when a conflict
interrupts the propagation queue.  Reasons for implications are computed
eagerly too, as clausal explanations: a greedy (largest coefficients
first) subset of the constraint's false literals strong enough to force
the implication — this keeps conflict analysis purely clausal, the
strategy of the bsolo family of solvers.

The eager per-assignment work — O(occurrences) slack updates on every
assignment and undo — is what the ``"watched"`` backend
(:mod:`repro.engine.watched`) eliminates.

**Proof-logging contract** (``SolverOptions(proof=...)``): the
slack-based implication rule above is exactly the propagation strength
the independent checker's RUP replay assumes
(:class:`repro.certify.checker.ProofChecker`).  Every implication this
engine derives must be reproducible from "coefficient > slack" over the
proof database — true by construction here; any *stronger* future rule
must come with its own proof step kind, or first-UIP clauses would stop
being RUP-checkable.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..pb.constraints import Constraint
from .constraint_db import ConstraintDatabase, StoredConstraint
from .interface import Conflict, PropagationEngine, register_engine

__all__ = ["Conflict", "Propagator"]


class Propagator(PropagationEngine):
    """Counter-based engine: eager slacks, occurrence-list updates.

    ``tracer`` (a :class:`repro.obs.trace.Tracer`) is optional; when
    given and enabled, every :meth:`propagate` call that produced
    implications or a conflict emits one batch event.  The hot loops are
    untouched — the accounting rides on the existing counter.
    """

    name = "counter"

    def __init__(self, num_variables: int, tracer=None, metrics=None):
        super().__init__(num_variables, tracer=tracer, metrics=metrics)
        self.database = ConstraintDatabase(self.trail)
        self._pending: Deque[StoredConstraint] = deque()

    # ------------------------------------------------------------------
    # Constraint management
    # ------------------------------------------------------------------
    def add_constraint(
        self, constraint: Constraint, learned: bool = False
    ) -> Optional[Conflict]:
        """Attach a constraint mid-search.

        Returns a conflict immediately when the constraint is violated
        under the current trail; otherwise schedules it for implication
        scanning by the next :meth:`propagate`.
        """
        stored = self.database.add(constraint, learned=learned)
        if stored.slack < 0:
            return Conflict(stored, self.explain_violation(stored))
        stored.queued = True
        self._pending.append(stored)
        return None

    # ------------------------------------------------------------------
    # Eager slack maintenance on every assignment
    # ------------------------------------------------------------------
    def _on_assign(self, literal: int) -> None:
        pending = self._pending
        for stored in self.database.on_literal_true(literal):
            # enqueue only when the constraint might act: it is violated,
            # or some coefficient now exceeds the slack
            if not stored.queued and stored.slack < stored.max_coef:
                stored.queued = True
                pending.append(stored)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _propagate_loop(self) -> Optional[Conflict]:
        while self._pending:
            stored = self._pending.popleft()
            stored.queued = False
            if stored.slack < 0:
                self._clear_pending()
                return Conflict(stored, self.explain_violation(stored))
            if stored.slack >= stored.max_coef:
                continue  # nothing can be implied
            conflict = self._scan_implications(stored)
            if conflict is not None:  # pragma: no cover - scan never conflicts
                self._clear_pending()
                return conflict
        return None

    def _clear_pending(self) -> None:
        for stored in self._pending:
            stored.queued = False
        self._pending.clear()

    def _scan_implications(self, stored: StoredConstraint) -> Optional[Conflict]:
        slack = stored.slack
        constraint = stored.constraint
        # hot loop: read the trail's value array directly (UNASSIGNED = -1);
        # implying a literal never changes this constraint's own slack, so
        # the local `slack` stays valid for the whole scan
        values = self.trail._value
        for coef, lit in constraint.terms:
            if coef <= slack:
                continue
            var = lit if lit > 0 else -lit
            if values[var] >= 0:
                continue
            reason = self._build_reason(stored, lit, coef)
            self.num_propagations += 1
            self.imply(lit, reason, antecedent=constraint)
        return None

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------
    def backtrack(self, target_level: int) -> None:
        """Undo assignments above ``target_level`` and restore slacks."""
        for lit in self.trail.backtrack(target_level):
            self.database.on_literal_unassigned(lit)
            self._antecedent.pop(lit if lit > 0 else -lit, None)
        self._clear_pending()
        # Constraints that became unit again are rediscovered lazily: any
        # implication missed here can only matter after the caller asserts
        # a learned clause and re-propagates, which re-queues via
        # add_constraint / assignments.  To stay complete we rescan all
        # constraints whose slack could imply at this level on demand via
        # reschedule_all() from the solver after a backjump.

    def reschedule_all(self) -> None:
        """Queue every constraint for an implication scan."""
        for stored in self.database.constraints:
            if not stored.queued:
                stored.queued = True
                self._pending.append(stored)

    # ------------------------------------------------------------------
    def reduce_learned(self, keep) -> int:
        """Forget learned constraints failing ``keep`` (clause deletion).

        An implied literal keeps its (value-copied) reason, so soundness
        is unaffected; only future propagation strength changes.
        """
        removed = self.database.remove_learned(keep)
        if removed:
            survivors = set(map(id, self.database.constraints))
            fresh = deque()
            for stored in self._pending:
                if id(stored) in survivors:
                    fresh.append(stored)
                else:
                    stored.queued = False
            self._pending = fresh
        return removed


register_engine(
    "counter",
    Propagator,
    "eager slack counters over occurrence lists (reference backend)",
)
