"""CSR (compressed sparse row) constraint storage for the array backend.

The counter backend keeps one Python object per constraint and walks
per-literal occurrence *lists* of ``(stored, coef)`` pairs; every slack
update is a Python-level loop.  :class:`ArrayConstraintStore` flattens
the same data into contiguous numpy arrays:

``term_coefs`` / ``term_lits``
    All constraint terms back-to-back (int64 coefficients, int32
    literals); constraint ``i`` owns the slice
    ``con_start[i]:con_start[i + 1]`` — a classic CSR layout.

``slack`` / ``rhs`` / ``max_coef``
    One entry per constraint.  ``slack[i]`` is maintained exactly like
    the counter backend's per-object slack (sum of non-false
    coefficients minus the degree).  ``slack`` is deliberately a Python
    *list*: the propagator reads and writes it one row at a time on its
    sequential paths, where list indexing is several times faster than
    numpy scalar indexing; the vectorized scan gathers the few rows it
    needs with ``np.fromiter``.  ``rhs`` and ``max_coef`` are read-only
    after attach and stay int64 arrays for the batched masks.

per-literal occurrence index
    For each literal, the constraint rows containing it and their
    coefficients, as paired int32/int64 arrays.  Learned constraints
    arrive mid-search, so each occurrence list is an append-friendly
    Python pair with a lazily (re)built numpy cache — the hot path only
    ever touches the cached arrays.

A ``stored`` sidecar list of
:class:`~repro.engine.constraint_db.StoredConstraint` twins (one per
row) keeps the store compatible with everything that consumes
constraint *objects*: :class:`~repro.engine.interface.Conflict`
reporting, reason building, the solver's learned-clause reduction
policy and the session frame-tagging machinery all work unchanged.

Coefficients use int64 throughout (coefficient *sums* routinely exceed
int32 on weighted instances); inputs whose total coefficient mass could
overflow int64 arithmetic are rejected up front rather than silently
wrapping.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from ..pb.constraints import Constraint
from .assignment import Trail
from .constraint_db import StoredConstraint

#: Per-constraint coefficient totals beyond this cannot be summed in
#: int64 without overflow risk; such instances stay on the ``counter``
#: backend (exact bignum arithmetic).
MAX_COEFFICIENT_TOTAL = 1 << 62

_EMPTY_ROWS = np.empty(0, dtype=np.int32)
_EMPTY_COEFS = np.empty(0, dtype=np.int64)


def _literal_index(literal: int) -> int:
    """Dense index of a literal: ``2 * var`` for positive, ``+1`` for
    negative — keys the per-literal occurrence table."""
    return (literal << 1) if literal > 0 else ((-literal) << 1) | 1


class _OccurrenceList:
    """Append-friendly occurrence list with a cached numpy view."""

    __slots__ = ("rows", "coefs", "_np_rows", "_np_coefs", "dirty")

    def __init__(self):
        self.rows: List[int] = []
        self.coefs: List[int] = []
        self._np_rows = _EMPTY_ROWS
        self._np_coefs = _EMPTY_COEFS
        self.dirty = False

    def append(self, row: int, coef: int) -> None:
        """Record that constraint ``row`` contains the literal."""
        self.rows.append(row)
        self.coefs.append(coef)
        self.dirty = True

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The cached ``(rows, coefs)`` numpy pair (rebuilt if stale)."""
        if self.dirty:
            self._np_rows = np.asarray(self.rows, dtype=np.int32)
            self._np_coefs = np.asarray(self.coefs, dtype=np.int64)
            self.dirty = False
        return self._np_rows, self._np_coefs


class ArrayConstraintStore:
    """All constraints (original + learned) in CSR form.

    Mirrors the :class:`~repro.engine.constraint_db.ConstraintDatabase`
    surface the rest of the stack relies on (``constraints``,
    ``num_learned``, iteration) while exposing the flat arrays the
    vectorized propagator's kernels index.
    """

    #: Initial per-array capacities (doubled on demand).
    _MIN_ROWS = 64
    _MIN_TERMS = 256

    def __init__(self, trail: Trail):
        self._trail = trail
        #: StoredConstraint sidecar, row-aligned with the arrays.
        self.constraints: List[StoredConstraint] = []
        self.num_constraints = 0
        self._num_terms = 0
        rows = self._MIN_ROWS
        terms = self._MIN_TERMS
        self.term_coefs = np.zeros(terms, dtype=np.int64)
        self.term_lits = np.zeros(terms, dtype=np.int32)
        #: ``con_start[i]:con_start[i+1]`` is row ``i``'s term slice.
        self.con_start = np.zeros(rows + 1, dtype=np.int64)
        #: Python list: scalar-indexed on every assign/backtrack.
        self.slack: List[int] = []
        self.rhs = np.zeros(rows, dtype=np.int64)
        self.max_coef = np.zeros(rows, dtype=np.int64)
        # literal-index -> occurrence list (grown with the variable range)
        self._occ: List[Optional[_OccurrenceList]] = [None] * (
            2 * (trail.num_variables + 1) + 2
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_constraints

    def __iter__(self):
        return iter(self.constraints)

    def num_learned(self) -> int:
        """Number of learned (non-input) constraints in the store."""
        return sum(1 for stored in self.constraints if stored.learned)

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def _ensure_rows(self, needed: int) -> None:
        capacity = self.rhs.shape[0]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        self.rhs = np.resize(self.rhs, capacity)
        self.max_coef = np.resize(self.max_coef, capacity)
        self.con_start = np.resize(self.con_start, capacity + 1)

    def _ensure_terms(self, needed: int) -> None:
        capacity = self.term_coefs.shape[0]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        self.term_coefs = np.resize(self.term_coefs, capacity)
        self.term_lits = np.resize(self.term_lits, capacity)

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def add(self, constraint: Constraint, learned: bool = False) -> StoredConstraint:
        """Attach a constraint; its slack reflects the current trail."""
        terms = constraint.terms
        total = 0
        for coef, _ in terms:
            total += coef
        if total >= MAX_COEFFICIENT_TOTAL or constraint.rhs >= MAX_COEFFICIENT_TOTAL:
            raise OverflowError(
                "coefficient total %d exceeds the array backend's int64 "
                "range; use propagation='counter' for this instance" % total
            )
        row = self.num_constraints
        stored = StoredConstraint(constraint, row, learned)
        self.constraints.append(stored)
        self.num_constraints = row + 1
        start = self._num_terms
        self._ensure_rows(row + 1)
        self._ensure_terms(start + len(terms))
        trail = self._trail
        slack = -constraint.rhs
        offset = start
        for coef, lit in terms:
            self.term_coefs[offset] = coef
            self.term_lits[offset] = lit
            offset += 1
            index = _literal_index(lit)
            occ = self._occ[index]
            if occ is None:
                occ = self._occ[index] = _OccurrenceList()
            occ.append(row, coef)
            if not trail.literal_is_false(lit):
                slack += coef
        self._num_terms = offset
        self.con_start[row] = start
        self.con_start[row + 1] = offset
        self.slack.append(slack)
        stored.slack = slack
        self.rhs[row] = constraint.rhs
        self.max_coef[row] = stored.max_coef
        return stored

    # ------------------------------------------------------------------
    # Occurrence / term access (hot paths)
    # ------------------------------------------------------------------
    def occurrences(self, literal: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(rows, coefs)`` of constraints containing ``literal``."""
        occ = self._occ[_literal_index(literal)]
        if occ is None:
            return _EMPTY_ROWS, _EMPTY_COEFS
        return occ.arrays()

    def row_terms(self, row: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(coefs, lits)`` array views of constraint ``row``'s terms."""
        start = self.con_start[row]
        end = self.con_start[row + 1]
        return self.term_coefs[start:end], self.term_lits[start:end]

    # ------------------------------------------------------------------
    # Learned-constraint deletion
    # ------------------------------------------------------------------
    def remove_learned(
        self, keep: Callable[[StoredConstraint], bool]
    ) -> Tuple[int, Optional[np.ndarray]]:
        """Drop learned constraints failing ``keep``; rebuild the arrays.

        Returns ``(removed, old_to_new)`` where ``old_to_new`` maps old
        row indices to new ones (-1 for deleted rows) so the propagator
        can remap any queued row references; ``None`` when nothing was
        removed.  Surviving slacks are copied, not recomputed — they are
        already correct for the current trail.
        """
        survivors: List[StoredConstraint] = []
        old_rows: List[int] = []
        removed = 0
        for stored in self.constraints:
            if stored.learned and not keep(stored):
                removed += 1
                continue
            old_rows.append(stored.index)
            survivors.append(stored)
        if not removed:
            return 0, None
        old_to_new = np.full(self.num_constraints, -1, dtype=np.int64)
        old_rows_arr = np.asarray(old_rows, dtype=np.int64)
        old_to_new[old_rows_arr] = np.arange(len(survivors), dtype=np.int64)

        old_coefs = self.term_coefs
        old_lits = self.term_lits
        old_start = self.con_start
        old_slack = self.slack
        self.constraints = survivors
        self.num_constraints = len(survivors)
        self._num_terms = 0
        self._occ = [None] * len(self._occ)
        self.term_coefs = np.zeros(max(self._MIN_TERMS, old_coefs.shape[0]),
                                   dtype=np.int64)
        self.term_lits = np.zeros(self.term_coefs.shape[0], dtype=np.int32)
        new_rows = max(self._MIN_ROWS, self.rhs.shape[0])
        self.con_start = np.zeros(new_rows + 1, dtype=np.int64)
        self.slack = []
        self.rhs = np.zeros(new_rows, dtype=np.int64)
        self.max_coef = np.zeros(new_rows, dtype=np.int64)
        offset = 0
        for new_row, (stored, old_row) in enumerate(zip(survivors, old_rows)):
            start = old_start[old_row]
            end = old_start[old_row + 1]
            width = int(end - start)
            self._ensure_terms(offset + width)
            self.term_coefs[offset:offset + width] = old_coefs[start:end]
            self.term_lits[offset:offset + width] = old_lits[start:end]
            self.con_start[new_row] = offset
            self.con_start[new_row + 1] = offset + width
            self.slack.append(old_slack[old_row])
            self.rhs[new_row] = stored.constraint.rhs
            self.max_coef[new_row] = stored.max_coef
            stored.index = new_row
            for position in range(offset, offset + width):
                lit = int(self.term_lits[position])
                index = _literal_index(lit)
                occ = self._occ[index]
                if occ is None:
                    occ = self._occ[index] = _OccurrenceList()
                occ.append(new_row, int(self.term_coefs[position]))
            offset += width
        self._num_terms = offset
        return removed, old_to_new
