"""Conflict analysis: first-UIP clause learning over clausal reasons.

Given a conflicting set of false literals (from a violated constraint or
from a bound conflict ``w_bc``, paper Section 4), resolve backwards along
the implication graph until exactly one literal from the conflict decision
level remains (the first unique implication point).  The learned clause is
asserting after backjumping to the second-highest level it mentions —
this is precisely the mechanism that gives bsolo non-chronological
backtracking for both logic conflicts and bound conflicts.

Because every resolution partner is a clausal *reason* recorded by the
propagation engine, the learned clause is **RUP** (reverse unit
propagable) with respect to the constraints already in a proof log:
asserting its negation and unit-propagating replays the implication
chain back to the conflict.  Proof logging (``SolverOptions(proof=...)``)
therefore records first-UIP clauses as bare ``u`` steps, with no
per-resolution bookkeeping; see :mod:`repro.certify`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..pb.literals import variable
from .assignment import Trail


class AnalysisResult:
    """Outcome of conflict analysis."""

    __slots__ = (
        "learned_literals",
        "backtrack_level",
        "asserting_literal",
        "seen_variables",
        "resolved_variables",
    )

    def __init__(
        self,
        learned_literals: Tuple[int, ...],
        backtrack_level: int,
        asserting_literal: Optional[int],
        seen_variables: Tuple[int, ...],
        resolved_variables: Tuple[int, ...] = (),
    ):
        #: Literals of the learned clause (all false at conflict time).
        self.learned_literals = learned_literals
        #: Level to backjump to (clause is asserting there).
        self.backtrack_level = backtrack_level
        #: The clause literal that becomes implied after the backjump
        #: (``None`` only for an empty learned clause).
        self.asserting_literal = asserting_literal
        #: Variables touched during resolution (for VSIDS bumping).
        self.seen_variables = seen_variables
        #: Variables resolved away, in trail-reverse order (replayed by
        #: the optional cutting-plane learner).
        self.resolved_variables = resolved_variables

    @property
    def resolution_steps(self) -> int:
        """Resolution steps performed to reach the first UIP (the
        analysis-effort figure reported by ``SolverStats``)."""
        return len(self.resolved_variables)


class RootConflictError(Exception):
    """Conflict at decision level 0: the formula is unsatisfiable."""


def highest_level(literals: Iterable[int], trail: Trail) -> int:
    """Maximum decision level among the (assigned) literals."""
    result = 0
    for lit in literals:
        level = trail.level(variable(lit))
        if level > result:
            result = level
    return result


class ConflictAnalyzer:
    """First-UIP analysis with a flat, reusable scratchpad.

    The original :func:`analyze` allocated a fresh ``seen`` set per
    conflict; at tens of thousands of conflicts the per-element hashing
    dominates.  The analyzer instead keeps one flat byte buffer indexed
    by variable (a membership test is an array load) that is *sparsely*
    cleared after each run — only the touched entries are reset, so an
    analysis costs O(clause size), never O(num_variables).

    One instance per solver; :meth:`analyze` is reentrant-unsafe by
    design (the solver analyzes one conflict at a time).
    """

    __slots__ = ("_seen",)

    def __init__(self, num_variables: int):
        self._seen = bytearray(num_variables + 1)

    def _ensure_capacity(self, num_variables: int) -> None:
        """Grow the scratch buffer (sessions size it to the guard var)."""
        if num_variables + 1 > len(self._seen):
            self._seen = bytearray(num_variables + 1)

    def analyze(
        self, conflict_literals: Iterable[int], trail: Trail
    ) -> AnalysisResult:
        """First-UIP resolution from a set of false literals.

        Precondition: every literal in ``conflict_literals`` is false
        under ``trail`` and at least one was assigned at the current
        decision level (callers handling bound conflicts backtrack to
        ``highest_level`` of the clause first to establish this).

        Raises :class:`RootConflictError` when the conflict does not
        depend on any decision.
        """
        self._ensure_capacity(trail.num_variables)
        seen = self._seen
        conflict_level = trail.decision_level
        counter = 0  # literals of the current clause at conflict_level
        learned: List[int] = []  # literals below conflict_level
        all_seen: List[int] = []  # doubles as the sparse-clear worklist

        def absorb(literals: Iterable[int], skip_var: Optional[int]) -> None:
            nonlocal counter
            for lit in literals:
                var = variable(lit)
                if var == skip_var or seen[var]:
                    continue
                if not trail.literal_is_false(lit):  # pragma: no cover - defensive
                    raise AssertionError("conflict literal %d is not false" % lit)
                seen[var] = 1
                all_seen.append(var)
                level = trail.level(var)
                if level == 0:
                    continue  # root facts never appear in learned clauses
                if level == conflict_level:
                    counter += 1
                else:
                    learned.append(lit)

        try:
            absorb(conflict_literals, None)

            if counter == 0:
                # No dependence on the conflict level at all.
                if not learned:
                    raise RootConflictError(
                        "conflict explained by root-level assignments"
                    )
                raise AssertionError(
                    "analyze() requires a literal at the conflict level; "
                    "backtrack to highest_level() first"
                )

            asserting: Optional[int] = None
            resolved: List[int] = []
            for trail_lit in reversed(trail.literals):
                var = variable(trail_lit)
                if not seen[var] or trail.level(var) != conflict_level:
                    continue
                if counter == 1:
                    asserting = -trail_lit  # the UIP, negated
                    break
                reason = trail.reason(var)
                if reason is None:  # pragma: no cover - defensive
                    raise AssertionError(
                        "multiple conflict literals reached the decision"
                    )
                counter -= 1
                resolved.append(var)
                # reason = (implied literal, false literals...); resolve
                absorb(reason[1:], skip_var=var)
            if asserting is None:  # pragma: no cover - defensive
                raise AssertionError("first UIP not found")
        finally:
            for var in all_seen:
                seen[var] = 0

        backtrack_level = highest_level(learned, trail)
        return AnalysisResult(
            learned_literals=tuple([asserting] + learned),
            backtrack_level=backtrack_level,
            asserting_literal=asserting,
            seen_variables=tuple(all_seen),
            resolved_variables=tuple(resolved),
        )


def analyze(conflict_literals: Iterable[int], trail: Trail) -> AnalysisResult:
    """Module-level convenience wrapper over :class:`ConflictAnalyzer`.

    Allocates a throwaway scratchpad; long-running callers (the solver)
    hold one analyzer and reuse it across conflicts instead.
    """
    return ConflictAnalyzer(trail.num_variables).analyze(
        conflict_literals, trail
    )
