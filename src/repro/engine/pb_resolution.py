"""Cutting-plane resolution over pseudo-boolean constraints.

The Galena line of solvers (paper reference [4], Chai & Kuehlmann)
learns *pseudo-boolean* facts from conflicts instead of clauses: two
constraints with opposite-polarity occurrences of a variable are combined
with the non-negative multipliers that cancel it (the cutting-plane
rule), then saturated; PB constraints may additionally be weakened to
cardinality constraints (*cardinality reduction*) to keep coefficients
small.

Each derived constraint is a non-negative linear combination of implied
constraints followed by sound weakenings, hence itself implied — so the
learner below can bolt onto the clausal first-UIP analysis: the clause
drives backjumping/assertion as usual, and the cutting-plane resolvent is
stored as an *extra* learned constraint when it is stronger than a
clause.  (Purely-clausal inputs resolve to exactly the clausal resolvent,
which adds nothing; those are filtered out.)
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple

from ..pb.constraints import Constraint

#: Guard rails: resolvents beyond these sizes are cardinality-reduced.
MAX_COEFFICIENT = 1 << 40
MAX_LITERALS = 128


def cardinality_reduction(constraint: Constraint) -> Optional[Constraint]:
    """Weaken a PB constraint to a cardinality constraint it implies.

    ``sum a_j l_j >= b`` implies "at least r of the l_j are true" where
    ``r`` is the count needed even using the largest coefficients first.
    Returns None when the reduction is vacuous or the input is already a
    cardinality constraint.
    """
    if constraint.is_cardinality or constraint.rhs == 0:
        return None
    required = constraint.minimum_true_literals()
    if not isinstance(required, int) or required <= 0:
        return None
    reduced = Constraint.at_least(list(constraint.literals), required)
    if reduced.is_tautology:
        return None
    return reduced


def resolve(first: Constraint, second: Constraint, var: int) -> Optional[Constraint]:
    """Cutting-plane resolution on ``var``.

    ``first`` and ``second`` must contain opposite-polarity literals of
    ``var``; the result is their canceling non-negative combination,
    normalized (which folds the cancellation into the rhs and saturates).
    Returns None when the polarities do not oppose.
    """
    a_pos = first.coefficient(var)
    a_neg = first.coefficient(-var)
    b_pos = second.coefficient(var)
    b_neg = second.coefficient(-var)
    if a_pos and b_neg:
        a, b = a_pos, b_neg
    elif a_neg and b_pos:
        a, b = a_neg, b_pos
    else:
        return None
    g = math.gcd(a, b)
    lambda_first = b // g
    lambda_second = a // g
    terms: List[Tuple[int, int]] = [
        (lambda_first * coef, lit) for coef, lit in first.terms
    ]
    terms.extend((lambda_second * coef, lit) for coef, lit in second.terms)
    rhs = lambda_first * first.rhs + lambda_second * second.rhs
    return Constraint.greater_equal(terms, rhs)


def _tame(constraint: Constraint) -> Optional[Constraint]:
    """Keep resolvent sizes in check via cardinality reduction."""
    too_big = (
        len(constraint) > MAX_LITERALS
        or any(coef > MAX_COEFFICIENT for coef, _ in constraint.terms)
    )
    if not too_big:
        return constraint
    return cardinality_reduction(constraint)


class ResolutionScratch:
    """Flat, reusable coefficient buffers for the resolution walk.

    :func:`derive_resolvent` probes the working resolvent once per
    resolved variable; on a fresh :class:`~repro.pb.constraints.Constraint`
    every probe first builds the constraint's lazy literal->coefficient
    dict — an O(n) allocation per resolution step.  The scratchpad
    instead mirrors the working resolvent into two flat lists indexed by
    variable (the literal present and its coefficient), so the
    "already cancelled" test and the cancellation lookup are plain array
    loads.  Buffers are sparsely cleared through a touched-variable
    worklist, exactly like :class:`~repro.engine.conflict.ConflictAnalyzer`,
    so a derivation costs O(resolvent size), never O(num_variables).

    The combination itself still goes through
    :meth:`Constraint.greater_equal` — normalization's output is
    independent of term order, so each intermediate resolvent is
    byte-identical to what :func:`resolve` builds and proof traces
    replay unchanged.

    One instance per solver; reused across every conflict.
    """

    __slots__ = ("_lit", "_coef", "_touched")

    def __init__(self, num_variables: int = 0):
        self._lit = [0] * (num_variables + 1)  # literal present (0 = absent)
        self._coef = [0] * (num_variables + 1)  # its coefficient
        self._touched: List[int] = []

    def _load(self, constraint: Constraint) -> None:
        lit_of, coef_of, touched = self._lit, self._coef, self._touched
        size = len(lit_of)
        for coef, lit in constraint.terms:
            var = lit if lit > 0 else -lit
            if var >= size:
                grow = var + 1 - size
                lit_of.extend([0] * grow)
                coef_of.extend([0] * grow)
                size = var + 1
            lit_of[var] = lit
            coef_of[var] = coef
            touched.append(var)

    def _clear(self) -> None:
        lit_of = self._lit
        for var in self._touched:
            lit_of[var] = 0
        self._touched.clear()

    def derive(
        self,
        conflict_constraint: Constraint,
        resolved_variables: Sequence[int],
        antecedent_of: Callable[[int], Optional[Constraint]],
        trace: Optional[List[Tuple]] = None,
    ) -> Optional[Constraint]:
        """See :func:`derive_resolvent` (same contract, reused buffers)."""
        resolvent = conflict_constraint
        lit_of, coef_of = self._lit, self._coef
        self._load(resolvent)
        try:
            for var in resolved_variables:
                if var >= len(lit_of) or not lit_of[var]:
                    continue  # already cancelled along the way
                antecedent = antecedent_of(var)
                if antecedent is None:
                    return None
                a = coef_of[var]
                # The antecedent's lazy coefficient dict persists on the
                # stored constraint, so this lookup amortizes across
                # conflicts (unlike one on the throwaway resolvent).
                b = antecedent.coefficient(-lit_of[var])
                if not b:
                    return None  # polarities do not oppose
                g = math.gcd(a, b)
                lambda_first = b // g
                lambda_second = a // g
                terms: List[Tuple[int, int]] = [
                    (lambda_first * coef, lit) for coef, lit in resolvent.terms
                ]
                terms.extend(
                    (lambda_second * coef, lit) for coef, lit in antecedent.terms
                )
                rhs = lambda_first * resolvent.rhs + lambda_second * antecedent.rhs
                combined = Constraint.greater_equal(terms, rhs)
                if combined.is_tautology:
                    return None
                if trace is not None:
                    trace.append(("r", var, antecedent))
                tamed = _tame(combined)
                if tamed is None:
                    return None
                if trace is not None and tamed is not combined:
                    trace.append(("w",))
                resolvent = tamed
                self._clear()
                self._load(resolvent)
        finally:
            self._clear()
        if resolvent.is_tautology or resolvent.is_clause:
            return None  # nothing beyond the clausal learner
        return resolvent


def derive_resolvent(
    conflict_constraint: Constraint,
    resolved_variables: Sequence[int],
    antecedent_of: Callable[[int], Optional[Constraint]],
    trace: Optional[List[Tuple]] = None,
) -> Optional[Constraint]:
    """Replay the first-UIP resolution walk with cutting planes.

    ``resolved_variables`` comes from
    :attr:`~repro.engine.conflict.AnalysisResult.resolved_variables`;
    ``antecedent_of`` maps a variable to the PB constraint that implied
    it (None aborts — e.g. the literal was asserted by the solver, not
    propagation).  Returns the final implied constraint, or None when the
    derivation is impossible or yields nothing beyond a clause.

    When ``trace`` is given, the successful derivation's ops are appended
    to it — ``("r", var, antecedent_constraint)`` per resolution and
    ``("w",)`` per applied cardinality reduction — in replayable order
    (the format :class:`repro.certify.ProofLogger.log_resolvent` takes).

    Convenience wrapper over :class:`ResolutionScratch`; long-running
    callers (the solver) hold one scratchpad and reuse it instead.
    """
    return ResolutionScratch().derive(
        conflict_constraint, resolved_variables, antecedent_of, trace
    )
