"""The engine-facing propagation protocol and the backend registry.

:class:`PropagationEngine` is the contract between the search loops
(:class:`~repro.core.solver.BsoloSolver`, the SAT-based baselines, the
probing preprocessor) and a boolean-constraint-propagation backend.  Two
backends ship with the repository:

``counter``
    The reference engine (:class:`~repro.engine.propagation.Propagator`):
    eager per-assignment slack counters over occurrence lists.
``watched``
    The lazy engine (:class:`~repro.engine.watched.WatchedPropagator`):
    two watched literals per clause, ``b+1`` watchers per cardinality
    constraint, and a watched coefficient sum with slack for general PB
    constraints.

Third-party engines plug in through :func:`register_engine` and are then
selectable everywhere a backend name is accepted
(``SolverOptions.propagation``, the CLI ``--propagation`` flag, portfolio
worker specs).

Protocol invariants
-------------------
Every backend must guarantee, for any interleaving of the calls below:

* ``add_constraint`` either returns a :class:`Conflict` (the constraint
  is violated under the current trail) or schedules the constraint so
  that the next ``propagate`` discovers every implication it forces.
* ``decide``/``assume``/``imply`` make a literal true on the shared
  :class:`~repro.engine.assignment.Trail`; ``decide`` opens a decision
  level, ``assume`` is only legal at level 0, and ``imply`` records a
  clausal reason (all literals false except the implied one).
* ``propagate`` runs implication discovery to a fixed point and returns
  the first conflict found, or ``None``.  The set of literals implied at
  a fixed point is the closure of the rule "an unassigned literal whose
  coefficient exceeds the constraint's slack is true" and therefore
  identical across backends; only discovery *order* (and which violated
  constraint is reported on a conflict) may differ.
* Every implication carries an eagerly computed clausal reason on the
  trail and, when it came from a PB constraint, an ``antecedent`` entry,
  so conflict analysis never needs the engine's internal state.
* ``backtrack(level)`` undoes every assignment above ``level`` and
  restores all internal bookkeeping; a subsequent ``propagate`` is a
  no-op unless constraints were added in between.
* ``reduce_learned`` must purge every internal reference (watcher lists,
  pending queues) to deleted constraints: no deleted
  :class:`~repro.engine.constraint_db.StoredConstraint` may ever be
  returned inside a later :class:`Conflict` or re-propagated.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Tuple

from ..obs.events import PropagationEvent
from ..pb.constraints import Constraint
from ..pb.literals import variable
from .assignment import Reason, Trail
from .constraint_db import StoredConstraint


class Conflict:
    """A violated constraint plus a clausal explanation.

    ``literals`` are all false under the current trail; together they are
    sufficient for the violation.  For bound conflicts (paper Section 4)
    ``stored`` is ``None`` and the literals come from ``w_bc``.
    """

    __slots__ = ("stored", "literals")

    def __init__(self, stored: Optional[StoredConstraint], literals: Tuple[int, ...]):
        self.stored = stored
        self.literals = literals

    def __repr__(self) -> str:
        return "Conflict(%r)" % (self.literals,)


class PropagationEngine(ABC):
    """Abstract propagation backend (see the module docstring for the
    full protocol contract).

    The base class owns everything that is *engine independent*: the
    trail, the assignment entry points, PB antecedent bookkeeping, the
    clausal explanation builders and the optional trace accounting.
    Concrete backends implement constraint attachment, the propagation
    loop, backtracking and learned-constraint deletion.
    """

    #: Registry name of the backend (set by subclasses).
    name = "abstract"

    def __init__(self, num_variables: int, tracer=None, metrics=None):
        self.trail = Trail(num_variables)
        self.num_propagations = 0
        self._tracer = tracer if (tracer is not None and tracer.enabled) else None
        self._metrics = metrics if (metrics is not None and metrics.enabled) else None
        self._batch_mark = 0
        if self._metrics is not None:
            # Resolve instruments once; the propagate wrapper only calls
            # .inc() on the hot path.
            self._m_propagations = self._metrics.counter(
                "engine_propagations",
                "Implications discovered by BCP",
                labels=("backend",),
            ).labels(backend=self.name)
            self._m_propagate_calls = self._metrics.counter(
                "engine_propagate_calls",
                "Calls to the propagation fixed-point loop",
                labels=("backend",),
            ).labels(backend=self.name)
        if self._tracer is None and self._metrics is None:
            # Skip the batch-accounting wrapper entirely on the null path.
            self.propagate = self._propagate_loop  # type: ignore[method-assign]
        # var -> the PB constraint that implied it (for cutting-plane
        # learning; the clausal reason on the trail is authoritative for
        # clausal analysis)
        self._antecedent: dict = {}

    # ------------------------------------------------------------------
    # Backend-specific obligations
    # ------------------------------------------------------------------
    @abstractmethod
    def add_constraint(
        self, constraint: Constraint, learned: bool = False
    ) -> Optional[Conflict]:
        """Attach a constraint mid-search.

        Returns a conflict immediately when the constraint is violated
        under the current trail; otherwise schedules it for implication
        scanning by the next :meth:`propagate`.
        """

    @abstractmethod
    def _propagate_loop(self) -> Optional[Conflict]:
        """Run implication discovery to a fixed point (no tracing)."""

    @abstractmethod
    def backtrack(self, target_level: int) -> None:
        """Undo assignments above ``target_level`` and restore all
        internal bookkeeping."""

    @abstractmethod
    def reschedule_all(self) -> None:
        """Queue every constraint for a full implication scan."""

    @abstractmethod
    def reduce_learned(self, keep) -> int:
        """Forget learned constraints failing ``keep`` (clause deletion).

        An implied literal keeps its (value-copied) reason, so soundness
        is unaffected; only future propagation strength changes.  All
        internal references to deleted constraints are purged.
        """

    # ------------------------------------------------------------------
    # Assignment entry points (shared)
    # ------------------------------------------------------------------
    def decide(self, literal: int) -> None:
        """Open a new decision level with ``literal`` true."""
        self.trail.decide(literal)
        self._on_assign(literal)

    def imply(
        self,
        literal: int,
        reason: Reason,
        antecedent: Optional[Constraint] = None,
    ) -> None:
        """Assert an implication at the current level."""
        self.trail.imply(literal, reason)
        if antecedent is not None:
            self._antecedent[variable(literal)] = antecedent
        self._on_assign(literal)

    def assume(self, literal: int) -> None:
        """Root-level assignment (preprocessing, necessary assignments)."""
        self.trail.assume(literal)
        self._on_assign(literal)

    def _on_assign(self, literal: int) -> None:
        """Hook run after any literal becomes true; backends that keep
        eager per-assignment state override this."""

    def antecedent(self, var: int) -> Optional[Constraint]:
        """The PB constraint that implied ``var`` (None for decisions or
        externally asserted literals)."""
        return self._antecedent.get(var)

    # ------------------------------------------------------------------
    # Propagation entry point (adds trace batching over the raw loop)
    # ------------------------------------------------------------------
    def propagate(self) -> Optional[Conflict]:
        """Run boolean constraint propagation to a fixed point.

        Returns the first conflict discovered, or ``None``.
        """
        if self._tracer is None and self._metrics is None:
            return self._propagate_loop()
        conflict = self._propagate_loop()
        delta = self.num_propagations - self._batch_mark
        self._batch_mark = self.num_propagations
        if self._tracer is not None and (delta or conflict is not None):
            self._tracer.emit(
                PropagationEvent(
                    count=delta,
                    level=self.trail.decision_level,
                    conflict=conflict is not None,
                )
            )
        if self._metrics is not None:
            self._m_propagate_calls.inc()
            if delta:
                self._m_propagations.inc(delta)
        return conflict

    # ------------------------------------------------------------------
    # Explanations (shared: they read only the constraint and the trail)
    # ------------------------------------------------------------------
    def _false_terms_descending(
        self, stored: StoredConstraint
    ) -> List[Tuple[int, int]]:
        # inlined literal_is_false: this runs once per implication reason
        values = self.trail._value
        false_terms = [
            (coef, lit)
            for coef, lit in stored.constraint.terms
            if values[lit if lit > 0 else -lit] == (0 if lit > 0 else 1)
        ]
        false_terms.sort(key=lambda term: -term[0])
        return false_terms

    def _build_reason(self, stored: StoredConstraint, literal: int, coef: int) -> Reason:
        """Clausal reason for ``literal`` implied by ``stored``.

        Needs false literals whose combined coefficient exceeds
        ``total - rhs - coef`` (after which the remaining supply cannot
        reach the rhs without ``literal``).
        """
        constraint = stored.constraint
        total = sum(c for c, _ in constraint.terms)
        needed = total - constraint.rhs - coef
        chosen: List[int] = [literal]
        acc = 0
        for false_coef, false_lit in self._false_terms_descending(stored):
            if acc > needed:
                break
            chosen.append(false_lit)
            acc += false_coef
        if acc <= needed:  # pragma: no cover - defensive
            raise AssertionError("implication reason under-explains %r" % constraint)
        return tuple(chosen)

    def explain_violation(self, stored: StoredConstraint) -> Tuple[int, ...]:
        """False literals sufficient for ``slack < 0``.

        Their combined coefficient must exceed ``total - rhs``.
        """
        constraint = stored.constraint
        total = sum(c for c, _ in constraint.terms)
        needed = total - constraint.rhs
        chosen: List[int] = []
        acc = 0
        for false_coef, false_lit in self._false_terms_descending(stored):
            if acc > needed:
                break
            chosen.append(false_lit)
            acc += false_coef
        if acc <= needed:
            raise AssertionError("constraint %r is not violated" % constraint)
        return tuple(chosen)

    # ------------------------------------------------------------------
    def model(self) -> dict:
        """The current (complete) assignment as a var -> 0/1 mapping."""
        if not self.trail.all_assigned():
            raise ValueError("model requested from partial assignment")
        return self.trail.assignment()


# ----------------------------------------------------------------------
# Backend registry (mirrors the repro.api solver registry pattern)
# ----------------------------------------------------------------------
#: name -> (factory, description); factory(num_variables, tracer) -> engine
_EngineFactory = Callable[..., PropagationEngine]
_ENGINES: Dict[str, Tuple[_EngineFactory, str]] = {}


class UnknownEngineError(ValueError):
    """The requested propagation backend name is not registered."""


def register_engine(
    name: str, factory: _EngineFactory, description: str = ""
) -> None:
    """Register ``factory(num_variables, tracer=None) -> engine`` under
    ``name``.  Re-registering a name replaces it (tests use this to
    inject instrumented engines).  Factories that also accept a
    ``metrics`` keyword get it forwarded when the caller supplies one;
    older two-argument factories keep working as long as nobody asks
    them for metrics."""
    _ENGINES[name] = (factory, description)


def available_engines() -> List[str]:
    """Registered propagation backend names, sorted."""
    return sorted(_ENGINES)


def engine_descriptions() -> Dict[str, str]:
    """Backend name -> one-line description (for ``--help`` output)."""
    return {name: desc for name, (_, desc) in sorted(_ENGINES.items())}


def make_engine(
    name: str, num_variables: int, tracer=None, metrics=None
) -> PropagationEngine:
    """Instantiate a registered propagation backend.

    ``metrics`` is forwarded only when set, so third-party factories
    registered before the metrics layer existed keep working.
    """
    try:
        factory = _ENGINES[name][0]
    except KeyError:
        raise UnknownEngineError(
            "unknown propagation engine %r (choose from %s)"
            % (name, ", ".join(available_engines()))
        ) from None
    if metrics is not None:
        return factory(num_variables, tracer=tracer, metrics=metrics)
    return factory(num_variables, tracer=tracer)
