"""Vectorized boolean constraint propagation over CSR arrays.

Registry name ``"array"``.  Semantically this backend is the counter
engine — eager slacks, the same "coefficient > slack implies the
literal" rule, eagerly built clausal reasons — so it closes the exact
same implication fixpoint and keeps the proof-logging contract (every
implication is RUP-replayable from "coefficient > slack").  What changes
is *how* the bookkeeping runs: constraints live in one flat CSR store
(:class:`ArrayConstraintStore`) instead of per-object term tuples, and
the implication scan is *batch-adaptive*:

* small rounds (a handful of touched rows — the common case on sparse
  instances) take a sequential scalar path over Python lists, mirroring
  the counter loop with zero numpy kernel launches;
* large rounds (dense instances, ``reschedule_all``, big learned
  batches) switch to vector kernels: violated / implication-candidate
  detection is two boolean masks over the batch, and all candidate
  terms are gathered through one flat-CSR fancy index and compared
  against their row slacks in a single vectorized test — the
  per-element Python overhead that capped the pure-Python backends
  (ROADMAP Open item 1) is paid once per *batch*.

Slack bookkeeping itself stays scalar (Python-list reads/writes): each
assignment touches only the falsified literal's occurrence rows, a
batch too small for fancy indexing to amortize its kernel launch.  The
win over ``counter`` therefore grows with constraint density — exactly
where the counter loop struggles — while tiny instances pay only list
overhead, not numpy overhead.

The backend rides on :class:`~repro.engine.assignment.ArrayTrail` (the
kernels fancy-index ``trail.values_array``) but honors the full
:class:`~repro.engine.interface.PropagationEngine` contract, including
``reduce_learned`` purging queued references and ``backtrack`` restoring
slacks — the PR 3/4 lockstep differential harnesses run it node-for-node
against ``counter``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..pb.constraints import Constraint
from .array_store import ArrayConstraintStore
from .assignment import ArrayTrail
from .interface import Conflict, PropagationEngine, register_engine

__all__ = ["ArrayPropagator"]


class ArrayPropagator(PropagationEngine):
    """Array-native engine: CSR store + batched numpy kernels."""

    name = "array"

    def __init__(self, num_variables: int, tracer=None, metrics=None):
        super().__init__(num_variables, tracer=tracer, metrics=metrics)
        # Replace the list-backed trail with the numpy-backed one before
        # anything observes it; the API is identical.
        self.trail = ArrayTrail(num_variables)
        self.database = ArrayConstraintStore(self.trail)
        #: Batches of constraint rows whose slack changed since the last
        #: propagate drain (python lists from assignments, numpy arrays
        #: from reschedule/remap; may overlap across batches).
        self._touched: List = []

    # ------------------------------------------------------------------
    # Constraint management
    # ------------------------------------------------------------------
    def add_constraint(
        self, constraint: Constraint, learned: bool = False
    ) -> Optional[Conflict]:
        """Attach a constraint mid-search.

        Returns a conflict immediately when the constraint is violated
        under the current trail; otherwise schedules it for implication
        scanning by the next :meth:`propagate`.
        """
        stored = self.database.add(constraint, learned=learned)
        if self.database.slack[stored.index] < 0:
            return Conflict(stored, self.explain_violation(stored))
        self._touched.append([stored.index])
        return None

    # ------------------------------------------------------------------
    # Eager slack maintenance on every assignment
    # ------------------------------------------------------------------
    def _on_assign(self, literal: int) -> None:
        # inlined occurrence lookup for the falsified literal -literal
        database = self.database
        index = (
            (literal << 1) | 1 if literal > 0 else ((-literal) << 1)
        )
        occ = database._occ[index]
        if occ is None:
            return
        rows = occ.rows
        slack = database.slack
        for row, coef in zip(rows, occ.coefs):
            slack[row] -= coef
        # the live list, not a snapshot: if a learned constraint grows it
        # before the drain, the extra row is scanned with fresh slack
        # (sound) and is queued under its own batch anyway
        self._touched.append(rows)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    #: Candidate-row count below which the per-row Python scan beats the
    #: vector gather (a handful of numpy kernel launches cost more than
    #: walking a few short term tuples).
    _SMALL_BATCH = 16

    def _propagate_loop(self) -> Optional[Conflict]:
        touched = self._touched
        database = self.database
        values = self.trail.values_array
        # the scalar mirror: several times faster for one-at-a-time reads
        values_list = self.trail._value
        while touched:
            # batches are python lists (from assignments) or numpy
            # arrays (reschedule/remap); len() covers both
            total = sum(map(len, touched))
            if total <= self._SMALL_BATCH:
                # Small round: a handful of rows to look at — any numpy
                # kernel here costs more than the whole Python scan.
                # Duplicate rows across batches are rescanned, which is
                # harmless and cheaper than dedup.
                batch_list: List[int] = []
                for rows in touched:
                    if isinstance(rows, list):
                        batch_list.extend(rows)
                    else:
                        batch_list.extend(rows.tolist())
                touched.clear()
                conflict = self._scan_small(batch_list, values_list)
                if conflict is not None:
                    return conflict
                continue
            if len(touched) == 1:
                batch = np.asarray(touched[0], dtype=np.int64)
            else:
                batch = np.unique(
                    np.concatenate(
                        [np.asarray(rows, dtype=np.int64) for rows in touched]
                    )
                )
            touched.clear()
            slack = database.slack
            batch_slack = np.fromiter(
                (slack[row] for row in batch),
                dtype=np.int64,
                count=batch.shape[0],
            )
            violated = np.nonzero(batch_slack < 0)[0]
            if violated.shape[0]:
                stored = database.constraints[int(batch[violated[0]])]
                touched.clear()
                return Conflict(stored, self.explain_violation(stored))
            mask = batch_slack < database.max_coef[batch]
            if not mask.any():
                continue
            candidates = batch[mask]
            # Vector path: gather every candidate's terms into one flat
            # index set and run a single coefficient-vs-slack compare.
            # Slacks are snapshotted before any implication; a row whose
            # slack changes mid-round is re-touched by ``_on_assign`` and
            # rescanned next round, and because slacks only decrease
            # during propagation the stale test is conservative (it can
            # only miss implications that the rescan recovers, never
            # invent one).
            con_start = database.con_start
            starts = con_start[candidates]
            lens = con_start[candidates + 1] - starts
            stops = np.cumsum(lens)
            total = int(stops[-1])
            flat = (
                np.repeat(starts - (stops - lens), lens)
                + np.arange(total, dtype=np.int64)
            )
            coefs = database.term_coefs[flat]
            lits = database.term_lits[flat]
            implied = coefs > np.repeat(batch_slack[mask], lens)
            if not implied.any():
                continue
            implied &= values[np.abs(lits)] < 0
            if not implied.any():
                continue
            rows_rep = np.repeat(candidates, lens)
            for position in np.nonzero(implied)[0]:
                lit = int(lits[position])
                # an earlier implication in this very round may have
                # assigned the variable already
                if values[lit if lit > 0 else -lit] >= 0:
                    continue
                stored = database.constraints[int(rows_rep[position])]
                reason = self._build_reason(stored, lit, int(coefs[position]))
                self.num_propagations += 1
                self.imply(lit, reason, antecedent=stored.constraint)
        return None

    def _scan_small(self, rows, values) -> Optional[Conflict]:
        """Sequential implication scan for a few touched rows.

        Reads fresh slacks (an implication from an earlier row is seen
        by later rows immediately), exactly like the counter loop.
        """
        database = self.database
        slack = database.slack
        for row in rows:
            row_slack = slack[row]
            stored = database.constraints[row]
            if row_slack < 0:
                self._touched.clear()
                return Conflict(stored, self.explain_violation(stored))
            if stored.max_coef <= row_slack:
                continue
            constraint = stored.constraint
            for coef, lit in constraint.terms:
                # implying a term of this row never changes this row's
                # slack (a normalized constraint holds each variable
                # once), so row_slack stays valid across the loop
                if coef > row_slack and values[lit if lit > 0 else -lit] < 0:
                    reason = self._build_reason(stored, lit, coef)
                    self.num_propagations += 1
                    self.imply(lit, reason, antecedent=constraint)
        return None

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------
    def backtrack(self, target_level: int) -> None:
        """Undo assignments above ``target_level`` and restore slacks."""
        database = self.database
        slack = database.slack
        antecedents = self._antecedent
        occ_table = database._occ
        for lit in self.trail.backtrack(target_level):
            index = (lit << 1) | 1 if lit > 0 else ((-lit) << 1)
            occ = occ_table[index]
            if occ is not None:
                for row, coef in zip(occ.rows, occ.coefs):
                    slack[row] += coef
            antecedents.pop(lit if lit > 0 else -lit, None)
        self._touched.clear()

    def reschedule_all(self) -> None:
        """Queue every constraint for an implication scan."""
        if self.database.num_constraints:
            self._touched.append(
                np.arange(self.database.num_constraints, dtype=np.int32)
            )

    # ------------------------------------------------------------------
    def reduce_learned(self, keep) -> int:
        """Forget learned constraints failing ``keep`` (clause deletion).

        Rebuilds the CSR arrays from the survivors and remaps any queued
        rows, so no deleted constraint is ever re-propagated.
        """
        removed, old_to_new = self.database.remove_learned(keep)
        if removed and self._touched:
            remapped: List[np.ndarray] = []
            for rows in self._touched:
                fresh = old_to_new[rows]
                fresh = fresh[fresh >= 0]
                if fresh.shape[0]:
                    remapped.append(fresh.astype(np.int32))
            self._touched = remapped
        return removed


register_engine(
    "array",
    ArrayPropagator,
    "CSR numpy arrays with batched slack/implication kernels",
)
