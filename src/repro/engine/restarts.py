"""Restart scheduling (Luby sequence).

Not part of the DATE'05 bsolo, but a standard SAT-era technique worth an
ablation: restarting clears the decision stack while keeping learned
constraints (including bound-conflict clauses and the incumbent), so the
search is still complete for optimization.
"""

from __future__ import annotations


def luby(index: int) -> int:
    """The Luby et al. restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...

    ``index`` is 1-based (``luby(1) == 1``); the classical iterative
    formulation from MiniSat.
    """
    if index < 1:
        raise ValueError("luby index is 1-based")
    i = index - 1
    size, exponent = 1, 0
    while size < i + 1:
        exponent += 1
        size = 2 * size + 1
    while size - 1 != i:
        size = (size - 1) // 2
        exponent -= 1
        i = i % size
    return 1 << exponent


class RestartScheduler:
    """Counts conflicts and says when to restart."""

    def __init__(self, base_interval: int = 100):
        if base_interval < 1:
            raise ValueError("base_interval must be positive")
        self._base = base_interval
        self._sequence_index = 1
        self._conflicts = 0
        self.num_restarts = 0

    @property
    def threshold(self) -> int:
        """Conflicts allowed before the next restart (Luby-scaled)."""
        return self._base * luby(self._sequence_index)

    def on_conflict(self) -> bool:
        """Record a conflict; True when a restart is due."""
        self._conflicts += 1
        if self._conflicts >= self.threshold:
            self._conflicts = 0
            self._sequence_index += 1
            self.num_restarts += 1
            return True
        return False
