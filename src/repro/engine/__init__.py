"""SAT-engine substrate: trail, PB propagation, CDCL analysis, VSIDS.

These are the "SAT-related techniques" of the paper's introduction:
boolean constraint propagation over pseudo-boolean constraints,
conflict-based learning and non-chronological backtracking, plus the
Chaff VSIDS branching heuristic (Section 5).
"""

from .activity import VSIDSActivity
from .assignment import Reason, Trail, UNASSIGNED
from .conflict import AnalysisResult, RootConflictError, analyze, highest_level
from .constraint_db import ConstraintDatabase, StoredConstraint
from .propagation import Conflict, Propagator
from .restarts import RestartScheduler, luby

__all__ = [
    "AnalysisResult",
    "Conflict",
    "ConstraintDatabase",
    "Propagator",
    "Reason",
    "RestartScheduler",
    "RootConflictError",
    "StoredConstraint",
    "Trail",
    "UNASSIGNED",
    "VSIDSActivity",
    "analyze",
    "luby",
    "highest_level",
]
