"""SAT-engine substrate: trail, PB propagation, CDCL analysis, VSIDS.

These are the "SAT-related techniques" of the paper's introduction:
boolean constraint propagation over pseudo-boolean constraints,
conflict-based learning and non-chronological backtracking, plus the
Chaff VSIDS branching heuristic (Section 5).
"""

from .activity import VSIDSActivity
from .array_engine import ArrayPropagator
from .array_store import ArrayConstraintStore
from .assignment import ArrayTrail, Reason, Trail, UNASSIGNED
from .conflict import (
    AnalysisResult,
    ConflictAnalyzer,
    RootConflictError,
    analyze,
    highest_level,
)
from .constraint_db import (
    KIND_CARDINALITY,
    KIND_CLAUSE,
    KIND_GENERAL,
    ConstraintDatabase,
    StoredConstraint,
    WatchedConstraintDatabase,
    classify,
)
from .interface import (
    Conflict,
    PropagationEngine,
    UnknownEngineError,
    available_engines,
    engine_descriptions,
    make_engine,
    register_engine,
)
from .propagation import Propagator
from .restarts import RestartScheduler, luby
from .watched import WatchedPropagator

__all__ = [
    "AnalysisResult",
    "ArrayConstraintStore",
    "ArrayPropagator",
    "ArrayTrail",
    "Conflict",
    "ConflictAnalyzer",
    "ConstraintDatabase",
    "KIND_CARDINALITY",
    "KIND_CLAUSE",
    "KIND_GENERAL",
    "PropagationEngine",
    "Propagator",
    "Reason",
    "RestartScheduler",
    "RootConflictError",
    "StoredConstraint",
    "Trail",
    "UNASSIGNED",
    "UnknownEngineError",
    "VSIDSActivity",
    "WatchedConstraintDatabase",
    "WatchedPropagator",
    "analyze",
    "available_engines",
    "classify",
    "engine_descriptions",
    "highest_level",
    "luby",
    "make_engine",
    "register_engine",
]
