"""VSIDS variable activity (Chaff-style), paper Section 5.

The paper uses "the VSIDS heuristic of Chaff" as the base branching
heuristic (and as the tie-breaker for LP-guided branching).  We implement
the modern exponential variant: bump the activity of every variable
involved in a conflict, geometrically grow the bump increment (equivalent
to decaying all activities), and rescale on overflow.
"""

from __future__ import annotations

from typing import Iterable, Optional

_RESCALE_LIMIT = 1e100
_RESCALE_FACTOR = 1e-100


class VSIDSActivity:
    """Per-variable activity scores with geometric decay."""

    def __init__(self, num_variables: int, decay: float = 0.95):
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1], got %r" % decay)
        self._activity = [0.0] * (num_variables + 1)
        self._increment = 1.0
        self._decay = decay

    def bump(self, var: int) -> None:
        """Increase ``var``'s activity by the current increment."""
        self._activity[var] += self._increment
        if self._activity[var] > _RESCALE_LIMIT:
            self._rescale()

    def bump_all(self, variables: Iterable[int]) -> None:
        """Bump every variable involved in a conflict."""
        for var in variables:
            self.bump(var)

    def decay(self) -> None:
        """Age all activities (done once per conflict)."""
        self._increment /= self._decay
        if self._increment > _RESCALE_LIMIT:
            self._rescale()

    def _rescale(self) -> None:
        self._activity = [a * _RESCALE_FACTOR for a in self._activity]
        self._increment *= _RESCALE_FACTOR

    def activity(self, var: int) -> float:
        """Current (decayed) activity score of ``var``."""
        return self._activity[var]

    def best(self, candidates: Iterable[int]) -> Optional[int]:
        """The candidate with the highest activity (ties: lowest index)."""
        best_var: Optional[int] = None
        best_score = -1.0
        for var in candidates:
            score = self._activity[var]
            if score > best_score:
                best_var, best_score = var, score
        return best_var
