"""Assignment trail with decision levels and clausal antecedents.

The trail records, in chronological order, every literal made true —
either by a *decision* (opening a new decision level) or by an
*implication* discovered by propagation.  Each implied variable remembers
a clausal *reason*: a tuple of literals, all false except the implied one,
that justifies the implication (used by conflict analysis to resolve
backwards, paper Section 4 relies on the same machinery for bound
conflicts).

Two implementations share the interface: :class:`Trail` (plain Python
lists, the reference) and :class:`ArrayTrail` (preallocated numpy
``values``/``levels``/``trail`` arrays with a Python-object sidecar for
the clausal reasons).  The array variant exists for the vectorized
``array`` propagation backend, whose kernels fancy-index the value and
trail arrays directly; it preserves the full Trail API — including the
:class:`TrailDelta` feeds that drive incremental lower bounding — so
every consumer (conflict analysis, ``MISBound.attach_trail``, the
benches) works against either.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..pb.literals import variable

#: A clausal reason: the implied literal first, then false literals.
Reason = Tuple[int, ...]

UNASSIGNED = -1


class TrailDelta:
    """Accumulates the variables assigned *or* unassigned since the last
    drain — the feed behind incremental lower bounding.

    Consumers register through :meth:`Trail.register_delta` and call
    :meth:`drain` at each bound computation; between drains the trail
    adds every variable it pushes or pops.  A variable that was assigned
    and then backtracked still appears (conservative: consumers
    re-evaluate it), and draining resets the set.
    """

    __slots__ = ("changed",)

    def __init__(self):
        self.changed: set = set()

    def add(self, var: int) -> None:
        """Record that ``var`` changed since the last snapshot."""
        self.changed.add(var)

    def drain(self) -> set:
        """Return-and-reset the changed-variable set."""
        changed = self.changed
        self.changed = set()
        return changed


class Trail:
    """Chronological assignment stack over variables ``1..num_variables``."""

    def __init__(self, num_variables: int):
        self.num_variables = num_variables
        # value per variable: 0, 1 or UNASSIGNED
        self._value: List[int] = [UNASSIGNED] * (num_variables + 1)
        self._level: List[int] = [0] * (num_variables + 1)
        self._reason: List[Optional[Reason]] = [None] * (num_variables + 1)
        self._trail: List[int] = []  # literals made true, in order
        self._level_start: List[int] = [0]  # trail index where each level begins
        # last value each variable ever took (phase saving; 0 initially)
        self._saved_phase: List[int] = [0] * (num_variables + 1)
        # registered TrailDelta feeds (empty in the common case, so the
        # hot push/pop paths pay only a truthiness check)
        self._deltas: List[TrailDelta] = []

    # ------------------------------------------------------------------
    # Change feeds (incremental lower bounding)
    # ------------------------------------------------------------------
    def register_delta(self) -> TrailDelta:
        """A new :class:`TrailDelta` fed by every future push/pop."""
        delta = TrailDelta()
        self._deltas.append(delta)
        return delta

    def unregister_delta(self, delta: TrailDelta) -> None:
        """Stop feeding ``delta`` (its consumer was rebuilt or dropped).

        Sessions rebuild their bounders on ``set_objective``/``pop``;
        without unregistration every push/pop would keep updating the
        dead feeds forever.  Unknown feeds are ignored.
        """
        try:
            self._deltas.remove(delta)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def decision_level(self) -> int:
        """Current decision level (0 = root)."""
        return len(self._level_start) - 1

    def value(self, var: int) -> int:
        """0, 1, or ``UNASSIGNED`` for a variable."""
        return self._value[var]

    def literal_is_true(self, literal: int) -> bool:
        """True when ``literal`` is assigned and satisfied."""
        value = self._value[variable(literal)]
        if value == UNASSIGNED:
            return False
        return value == (1 if literal > 0 else 0)

    def literal_is_false(self, literal: int) -> bool:
        """True when ``literal`` is assigned and falsified."""
        value = self._value[variable(literal)]
        if value == UNASSIGNED:
            return False
        return value == (0 if literal > 0 else 1)

    def is_assigned(self, var: int) -> bool:
        """True when ``var`` has a value on the trail."""
        return self._value[var] != UNASSIGNED

    def level(self, var: int) -> int:
        """Decision level at which ``var`` was assigned."""
        return self._level[var]

    def reason(self, var: int) -> Optional[Reason]:
        """Clausal antecedent of ``var`` (None for decisions/unassigned)."""
        return self._reason[var]

    def saved_phase(self, var: int) -> int:
        """The value ``var`` last held (0 if never assigned) — phase saving."""
        return self._saved_phase[var]

    def __len__(self) -> int:
        return len(self._trail)

    @property
    def literals(self) -> Sequence[int]:
        """All true literals, oldest first."""
        return self._trail

    def assignment(self) -> Dict[int, int]:
        """Snapshot as a var -> 0/1 mapping (assigned variables only)."""
        result: Dict[int, int] = {}
        for lit in self._trail:
            var = variable(lit)
            result[var] = 1 if lit > 0 else 0
        return result

    def num_assigned(self) -> int:
        """Number of assigned variables."""
        return len(self._trail)

    def all_assigned(self) -> bool:
        """True when every variable has a value (a complete model)."""
        return len(self._trail) == self.num_variables

    def unassigned_variables(self) -> List[int]:
        """The variables still free, ascending."""
        return [
            var
            for var in range(1, self.num_variables + 1)
            if self._value[var] == UNASSIGNED
        ]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def decide(self, literal: int) -> None:
        """Open a new decision level and make ``literal`` true."""
        self._level_start.append(len(self._trail))
        self._push(literal, None)

    def imply(self, literal: int, reason: Reason) -> None:
        """Make ``literal`` true at the current level with a clausal reason."""
        self._push(literal, reason)

    def assume(self, literal: int) -> None:
        """Root-level (level 0) assignment, e.g. from preprocessing."""
        if self.decision_level != 0:
            raise ValueError("assumptions only at decision level 0")
        self._push(literal, None)

    def _push(self, literal: int, reason: Optional[Reason]) -> None:
        var = variable(literal)
        if self._value[var] != UNASSIGNED:
            raise ValueError("variable %d already assigned" % var)
        self._value[var] = 1 if literal > 0 else 0
        self._level[var] = self.decision_level
        self._reason[var] = reason
        self._saved_phase[var] = self._value[var]
        self._trail.append(literal)
        if self._deltas:
            for delta in self._deltas:
                delta.changed.add(var)

    def backtrack(self, target_level: int) -> List[int]:
        """Undo every assignment above ``target_level``.

        Returns the list of unassigned literals (most recent first) so the
        propagator can restore constraint slacks.
        """
        if target_level < 0 or target_level > self.decision_level:
            raise ValueError(
                "cannot backtrack to level %d from %d"
                % (target_level, self.decision_level)
            )
        if target_level == self.decision_level:
            return []
        cut = self._level_start[target_level + 1]
        undone: List[int] = []
        while len(self._trail) > cut:
            lit = self._trail.pop()
            var = variable(lit)
            self._value[var] = UNASSIGNED
            self._reason[var] = None
            undone.append(lit)
        del self._level_start[target_level + 1 :]
        if self._deltas and undone:
            for delta in self._deltas:
                delta.changed.update(variable(lit) for lit in undone)
        return undone

    def decision_at(self, level: int) -> int:
        """The decision literal that opened ``level`` (level >= 1)."""
        if level < 1 or level > self.decision_level:
            raise ValueError("no decision at level %d" % level)
        return self._trail[self._level_start[level]]


class ArrayTrail(Trail):
    """A :class:`Trail` over preallocated flat numpy arrays.

    ``_value`` (int8), ``_level`` (int32) and ``_saved_phase`` (int8)
    are variable-indexed numpy arrays so vectorized propagation kernels
    can fancy-index them in bulk; ``_trail_array`` mirrors the literal
    stack as a preallocated int32 array (a trail never exceeds
    ``num_variables`` entries, so no growth is ever needed).  The
    chronological ``_trail`` *list* of Python ints is kept alongside the
    mirror: conflict analysis, proof logging and the solver iterate it
    literal-by-literal and expect exact :class:`Trail` semantics (plain
    ``int`` elements), while the kernels slice the mirror.  Reasons stay
    a Python-object sidecar — they are tuples of literals, not numbers.
    """

    def __init__(self, num_variables: int):
        self.num_variables = num_variables
        #: Scalar mirror of the value array: shared engine helpers and
        #: the propagator's sequential fallback paths index values one
        #: variable at a time, where a Python list is several times
        #: faster than numpy scalar indexing.  ``_push``/``backtrack``
        #: keep the two in sync; the kernels only see ``_value_np``.
        self._value: List[int] = [UNASSIGNED] * (num_variables + 1)
        self._value_np = np.full(num_variables + 1, UNASSIGNED, dtype=np.int8)
        self._level = np.zeros(num_variables + 1, dtype=np.int32)
        self._saved_phase = np.zeros(num_variables + 1, dtype=np.int8)
        self._trail: List[int] = []
        self._trail_array = np.zeros(num_variables + 1, dtype=np.int32)
        self._reason: List[Optional[Reason]] = [None] * (num_variables + 1)
        self._level_start: List[int] = [0]
        self._deltas: List[TrailDelta] = []

    # ------------------------------------------------------------------
    # Array views (consumed by the vectorized propagation kernels)
    # ------------------------------------------------------------------
    @property
    def values_array(self) -> np.ndarray:
        """The variable-indexed value array (int8; UNASSIGNED = -1)."""
        return self._value_np

    def trail_slice(self, start: int, stop: int) -> np.ndarray:
        """Trail literals ``start:stop`` as an int32 array view."""
        return self._trail_array[start:stop]

    # ------------------------------------------------------------------
    # Mutation (array-aware overrides)
    # ------------------------------------------------------------------
    def value(self, var: int) -> int:
        """0, 1, or ``UNASSIGNED`` for a variable (as a Python int)."""
        return self._value[var]

    def level(self, var: int) -> int:
        """Decision level at which ``var`` was assigned."""
        return int(self._level[var])

    def saved_phase(self, var: int) -> int:
        """The value ``var`` last held (0 if never assigned)."""
        return int(self._saved_phase[var])

    def unassigned_variables(self) -> List[int]:
        """The variables still free, ascending (vectorized scan)."""
        free = np.nonzero(self._value_np[1:] == UNASSIGNED)[0] + 1
        return free.tolist()

    def _push(self, literal: int, reason: Optional[Reason]) -> None:
        var = literal if literal > 0 else -literal
        if self._value[var] != UNASSIGNED:
            raise ValueError("variable %d already assigned" % var)
        value = 1 if literal > 0 else 0
        self._value[var] = value
        self._value_np[var] = value
        self._level[var] = len(self._level_start) - 1
        self._reason[var] = reason
        self._saved_phase[var] = value
        self._trail_array[len(self._trail)] = literal
        self._trail.append(literal)
        if self._deltas:
            for delta in self._deltas:
                delta.changed.add(var)

    def backtrack(self, target_level: int) -> List[int]:
        """Undo every assignment above ``target_level`` (bulk unassign).

        The value-array reset is one fancy-indexed store; only the
        reason sidecar needs a per-variable Python loop.
        """
        if target_level < 0 or target_level > self.decision_level:
            raise ValueError(
                "cannot backtrack to level %d from %d"
                % (target_level, self.decision_level)
            )
        if target_level == self.decision_level:
            return []
        cut = self._level_start[target_level + 1]
        undone = self._trail[cut:]
        undone.reverse()
        del self._trail[cut:]
        reasons = self._reason
        values = self._value
        variables = []
        for lit in undone:
            var = lit if lit > 0 else -lit
            variables.append(var)
            reasons[var] = None
            values[var] = UNASSIGNED
        self._value_np[variables] = UNASSIGNED
        del self._level_start[target_level + 1 :]
        if self._deltas and undone:
            for delta in self._deltas:
                delta.changed.update(variables)
        return undone
