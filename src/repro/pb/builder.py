"""Fluent model builder for pseudo-boolean optimization instances.

:class:`PBModel` is the friendly front door of the library: it manages
named variables, accepts constraints in ``>=`` / ``<=`` / ``==`` form, and
normalizes arbitrary objective terms (negative costs, complemented
literals) into the paper's non-negative-cost model -- introducing auxiliary
complement variables where required -- before producing an immutable
:class:`~repro.pb.instance.PBInstance`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .constraints import Constraint, Term
from .instance import PBInstance
from .objective import Objective


class PBModel:
    """Mutable builder producing :class:`PBInstance` objects.

    Example::

        model = PBModel()
        x, y, z = model.new_variables("x", "y", "z")
        model.add_clause([x, y, z])
        model.add_at_most([x, y], 1)
        model.minimize([(3, x), (2, y), (5, z)])
        instance = model.build()
    """

    def __init__(self):
        self._num_variables = 0
        self._names: Dict[int, str] = {}
        self._index_of: Dict[str, int] = {}
        self._constraints: List[Constraint] = []
        self._objective_terms: List[Term] = []

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def new_variable(self, name: Optional[str] = None) -> int:
        """Allocate a fresh variable; returns its positive literal."""
        self._num_variables += 1
        var = self._num_variables
        if name is not None:
            if name in self._index_of:
                raise ValueError("variable name %r already used" % name)
            self._names[var] = name
            self._index_of[name] = var
        return var

    def new_variables(self, *names: str) -> Tuple[int, ...]:
        """Allocate several named variables at once."""
        return tuple(self.new_variable(name) for name in names)

    def variable(self, name: str) -> int:
        """Look up a previously created named variable."""
        return self._index_of[name]

    @property
    def num_variables(self) -> int:
        """Number of distinct variables registered so far."""
        return self._num_variables

    def _register(self, literals: Iterable[int]) -> None:
        for lit in literals:
            var = lit if lit > 0 else -lit
            if var > self._num_variables:
                self._num_variables = var

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------
    def add_greater_equal(self, terms: Iterable[Term], rhs: int) -> Constraint:
        """Add ``sum a_j l_j >= rhs``; returns the normalized constraint."""
        terms = list(terms)
        self._register(lit for _, lit in terms)
        constraint = Constraint.greater_equal(terms, rhs)
        self._constraints.append(constraint)
        return constraint

    def add_less_equal(self, terms: Iterable[Term], rhs: int) -> Constraint:
        """Add ``sum a_j l_j <= rhs``."""
        terms = list(terms)
        self._register(lit for _, lit in terms)
        constraint = Constraint.less_equal(terms, rhs)
        self._constraints.append(constraint)
        return constraint

    def add_equal(self, terms: Iterable[Term], rhs: int) -> Tuple[Constraint, Constraint]:
        """Add ``sum a_j l_j == rhs`` as a pair of inequalities."""
        terms = list(terms)
        return (
            self.add_greater_equal(terms, rhs),
            self.add_less_equal(terms, rhs),
        )

    def add_clause(self, literals: Iterable[int]) -> Constraint:
        """At least one literal true."""
        return self.add_greater_equal([(1, lit) for lit in literals], 1)

    def add_at_least(self, literals: Iterable[int], count: int) -> Constraint:
        """Cardinality constraint: at least ``count`` literals true."""
        return self.add_greater_equal([(1, lit) for lit in literals], count)

    def add_at_most(self, literals: Iterable[int], count: int) -> Constraint:
        """Cardinality constraint: at most ``count`` literals true."""
        return self.add_less_equal([(1, lit) for lit in literals], count)

    def add_exactly(self, literals: Iterable[int], count: int) -> Tuple[Constraint, Constraint]:
        """Exactly ``count`` literals true (an at-least/at-most pair)."""
        literals = list(literals)
        return (
            self.add_at_least(literals, count),
            self.add_at_most(literals, count),
        )

    def add_implication(self, antecedent: int, consequent: int) -> Constraint:
        """``antecedent -> consequent`` as the clause ``~a \\/ c``."""
        return self.add_clause([-antecedent, consequent])

    # ------------------------------------------------------------------
    # Objective
    # ------------------------------------------------------------------
    def minimize(self, terms: Iterable[Term]) -> None:
        """Set (accumulate) minimization terms ``(cost, literal)``.

        Costs may be negative and literals complemented; :meth:`build`
        normalizes, adding complement variables when a variable ends up
        with net negative cost.
        """
        terms = list(terms)
        self._register(lit for _, lit in terms)
        self._objective_terms.extend(terms)

    def maximize(self, terms: Iterable[Term]) -> None:
        """Convenience: maximize ``sum`` == minimize the negation."""
        self.minimize([(-cost, lit) for cost, lit in terms])

    # ------------------------------------------------------------------
    def build(self) -> PBInstance:
        """Produce the immutable normalized instance."""
        per_var: Dict[int, int] = {}
        offset = 0
        for cost, lit in self._objective_terms:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            if cost == 0:
                continue
            if lit < 0:
                offset += cost
                cost, lit = -cost, -lit
            per_var[lit] = per_var.get(lit, 0) + cost

        costs: Dict[int, int] = {}
        extra: List[Constraint] = []
        for var, cost in sorted(per_var.items()):
            if cost > 0:
                costs[var] = cost
            elif cost < 0:
                # minimize -c*x == -c + c*(1-x): pay |c| when x = 0.  The
                # paper's model only costs value 1, so introduce the
                # complement variable z with z + x == 1 and cost |c| on z.
                offset += cost
                complement = self.new_variable()
                base = self._names.get(var)
                if base is not None:
                    self._names[complement] = "~" + base
                extra.append(Constraint.clause([var, complement]))
                extra.append(Constraint.clause([-var, -complement]))
                costs[complement] = -cost

        objective = Objective(costs, offset)
        return PBInstance(
            list(self._constraints) + extra,
            objective,
            num_variables=self._num_variables,
            variable_names=self._names,
        )
