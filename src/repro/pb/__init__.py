"""Pseudo-boolean data model: literals, constraints, objectives, instances.

This package implements the formulation of paper Section 2: normalized
linear pseudo-boolean constraints ``sum a_j l_j >= b`` with non-negative
integer coefficients, non-negative integer variable costs, plus the OPB
interchange format.
"""

from .builder import PBModel
from .canonical import CanonicalForm, canonical_form, canonical_hash
from .constraints import Constraint, ConstraintError, Term, normalize_terms
from .instance import InfeasibleConstraintError, PBInstance
from .literals import (
    FALSE,
    TRUE,
    is_positive,
    literal_to_str,
    literal_value,
    make_literal,
    max_variable,
    negate,
    variable,
)
from .objective import Objective
from .opb import OPBError, parse, parse_file, write, write_file

__all__ = [
    "CanonicalForm",
    "Constraint",
    "ConstraintError",
    "FALSE",
    "InfeasibleConstraintError",
    "OPBError",
    "Objective",
    "PBInstance",
    "PBModel",
    "TRUE",
    "Term",
    "canonical_form",
    "canonical_hash",
    "is_positive",
    "literal_to_str",
    "literal_value",
    "make_literal",
    "max_variable",
    "negate",
    "normalize_terms",
    "parse",
    "parse_file",
    "variable",
    "write",
    "write_file",
]
