"""Cost functions for pseudo-boolean optimization.

The paper's formulation (eq. 1) minimizes ``sum_j c_j x_j`` with
non-negative integer costs over *positive* variables.  Arbitrary objectives
(negative costs, costs on complemented literals) are normalized into that
shape plus a constant offset:

* ``c * ~x`` becomes ``c - c*x`` (offset grows, cost ``-c`` on ``x``);
* a negative cost ``-c * x`` becomes ``-c + c*~x`` which in turn becomes a
  cost on the complement; the solver works over variables only, so we flip
  the *variable meaning* instead: cost ``c`` is attached to ``x = 0``.

To keep the core solver exactly in the paper's model we resolve the second
case at model-build time by literal rewriting (see
:meth:`Objective.from_terms`), producing variable costs ``c_j >= 0`` plus an
integer ``offset`` added to every reported cost value.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from .literals import negate


class Objective:
    """Minimization objective ``offset + sum_j c_j x_j`` with ``c_j >= 0``.

    ``costs`` maps variable index to a *positive* integer cost; variables
    with zero cost are simply absent.  The paper's ``Cost(x_j)`` is
    :meth:`cost_of`.
    """

    __slots__ = ("costs", "offset")

    def __init__(self, costs: Mapping[int, int], offset: int = 0):
        cleaned: Dict[int, int] = {}
        for var, cost in costs.items():
            if var <= 0:
                raise ValueError("variable indices are positive, got %d" % var)
            if not isinstance(cost, int) or isinstance(cost, bool):
                raise ValueError("costs must be integers, got %r" % (cost,))
            if cost < 0:
                raise ValueError(
                    "normalized objectives have non-negative costs; "
                    "use Objective.from_terms for raw input"
                )
            if cost:
                cleaned[var] = cost
        self.costs: Dict[int, int] = cleaned
        self.offset = offset

    # ------------------------------------------------------------------
    @classmethod
    def from_terms(cls, terms: Iterable[Tuple[int, int]]) -> "Objective":
        """Build from raw ``(cost, literal)`` terms, any signs allowed.

        Negative costs and complemented literals are folded into the
        non-negative-variable-cost + offset normal form.
        """
        per_var: Dict[int, int] = {}
        offset = 0
        for cost, lit in terms:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            if cost == 0:
                continue
            if lit < 0:
                # c * ~x == c - c * x
                offset += cost
                cost, lit = -cost, negate(lit)
            per_var[lit] = per_var.get(lit, 0) + cost
        costs: Dict[int, int] = {}
        for var, cost in per_var.items():
            if cost > 0:
                costs[var] = cost
            elif cost < 0:
                # -c * x == -c + c * ~x; re-express as cost on x being 0 is
                # impossible in the paper's model, so shift: minimize
                # -c*x  ==  -c + c*(1-x).  The solver cannot carry a cost on
                # (1-x) directly; we instead remember it via a negative
                # offset and a cost on the *complement variable value*.
                # Concretely: add offset -|c| and cost |c| "for x = 0",
                # which equals cost |c| on a virtual literal ~x.  The PBO
                # model only costs x = 1, so we encode by flipping at the
                # instance level -- callers that need this should introduce
                # an auxiliary variable.  Rejecting keeps the core honest.
                raise ValueError(
                    "net negative cost on variable %d; introduce an auxiliary "
                    "complement variable at model level" % var
                )
        return cls(costs, offset)

    # ------------------------------------------------------------------
    def cost_of(self, var: int) -> int:
        """The paper's ``Cost(x_j)``: objective coefficient of ``var``."""
        return self.costs.get(var, 0)

    def evaluate(self, assignment: Mapping[int, int]) -> int:
        """Objective value (including offset) of a complete assignment."""
        total = self.offset
        for var, cost in self.costs.items():
            value = assignment.get(var)
            if value is None:
                raise ValueError("assignment does not cover variable %d" % var)
            total += cost * value
        return total

    def path_cost(self, assignment: Mapping[int, int]) -> int:
        """The paper's ``P.path``: cost of the assignments made so far.

        Only variables assigned 1 contribute (costs are non-negative and
        attach to value 1); the offset is *excluded* -- bound comparisons
        cancel it on both sides.
        """
        total = 0
        for var, cost in self.costs.items():
            if assignment.get(var) == 1:
                total += cost
        return total

    @property
    def is_constant(self) -> bool:
        """True for pure satisfaction instances (paper's [16] family)."""
        return not self.costs

    @property
    def max_value(self) -> int:
        """Cost of setting every costed variable to 1 (excludes offset)."""
        return sum(self.costs.values())

    def variables(self) -> Tuple[int, ...]:
        """The costed variables, ascending."""
        return tuple(sorted(self.costs))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Objective):
            return NotImplemented
        return self.costs == other.costs and self.offset == other.offset

    def __repr__(self) -> str:
        body = " + ".join("%d*x%d" % (self.costs[v], v) for v in sorted(self.costs))
        if self.offset:
            body = "%d + %s" % (self.offset, body) if body else str(self.offset)
        return "Objective(min %s)" % (body or "0")
