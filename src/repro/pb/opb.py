"""Reader/writer for the OPB pseudo-boolean format.

The OPB format is the interchange format of the pseudo-boolean evaluation
(PB competition) and is accepted by PBS, Galena, bsolo and modern PB
solvers.  Supported subset::

    * comment lines start with '*'
    min: +1 x1 -2 x2 +3 ~x4 ;
    +1 x1 +4 x2 -2 x5 >= 2 ;
    +1 x3 +1 ~x4 = 1 ;

Terms are ``<integer> <literal>`` with literals ``xN`` / ``~xN``; relations
are ``>=``, ``<=`` and ``=``; every statement ends with ``;``.  The
objective line is optional (pure satisfaction instances omit it).
"""

from __future__ import annotations

import io
import re
from typing import List, Optional, TextIO, Tuple, Union

from .builder import PBModel
from .constraints import Term
from .instance import PBInstance

_TOKEN = re.compile(r"[+-]?\d+|~?x\d+|>=|<=|=|;|min:|max:")


class OPBError(ValueError):
    """Malformed OPB input."""


_OFFSET_COMMENT = re.compile(r"^\*\s*offset=\s*(-?\d+)\s*$")


def _tokenize(text: str) -> Tuple[List[str], int]:
    tokens: List[str] = []
    offset = 0
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("*"):
            match = _OFFSET_COMMENT.match(line)
            if match:
                offset = int(match.group(1))
            continue
        pos = 0
        for match in _TOKEN.finditer(line):
            between = line[pos : match.start()]
            if between.strip():
                raise OPBError("unexpected text %r in line %r" % (between.strip(), raw_line))
            tokens.append(match.group(0))
            pos = match.end()
        if line[pos:].strip():
            raise OPBError("unexpected text %r in line %r" % (line[pos:].strip(), raw_line))
    return tokens, offset


def _parse_literal(token: str) -> int:
    negated = token.startswith("~")
    var = int(token[2:]) if negated else int(token[1:])
    if var <= 0:
        raise OPBError("variable indices start at 1: %r" % token)
    return -var if negated else var


def parse(source: Union[str, TextIO]) -> PBInstance:
    """Parse OPB text (or a readable file object) into a ``PBInstance``."""
    text = source if isinstance(source, str) else source.read()
    tokens, offset = _tokenize(text)
    model = PBModel()
    if offset:
        model.minimize([(offset, 1), (offset, -1)])  # constant: c*x + c*~x
    i = 0
    n = len(tokens)
    seen_objective = False
    seen_constraint = False
    while i < n:
        token = tokens[i]
        if token in ("min:", "max:"):
            if seen_objective:
                raise OPBError("multiple objective lines")
            if seen_constraint:
                raise OPBError("objective must precede constraints")
            seen_objective = True
            i += 1
            terms, i = _parse_terms(tokens, i)
            if i >= n or tokens[i] != ";":
                raise OPBError("objective line missing ';'")
            i += 1
            if token == "min:":
                model.minimize(terms)
            else:
                model.maximize(terms)
        else:
            seen_constraint = True
            terms, i = _parse_terms(tokens, i)
            if i >= n or tokens[i] not in (">=", "<=", "="):
                raise OPBError("constraint missing relation operator")
            relation = tokens[i]
            i += 1
            if i >= n:
                raise OPBError("constraint missing right-hand side")
            try:
                rhs = int(tokens[i])
            except ValueError:
                raise OPBError("right-hand side must be an integer, got %r" % tokens[i])
            i += 1
            if i >= n or tokens[i] != ";":
                raise OPBError("constraint missing ';'")
            i += 1
            if relation == ">=":
                model.add_greater_equal(terms, rhs)
            elif relation == "<=":
                model.add_less_equal(terms, rhs)
            else:
                model.add_equal(terms, rhs)
    return model.build()


def _parse_terms(tokens: List[str], i: int) -> Tuple[List[Term], int]:
    terms: List[Term] = []
    n = len(tokens)
    while i < n:
        token = tokens[i]
        if token in (">=", "<=", "=", ";"):
            break
        try:
            coef = int(token)
        except ValueError:
            raise OPBError("expected coefficient, got %r" % token)
        i += 1
        if i >= n or not tokens[i].lstrip("~").startswith("x"):
            raise OPBError("coefficient %d not followed by a literal" % coef)
        terms.append((coef, _parse_literal(tokens[i])))
        i += 1
    return terms, i


def parse_file(path: str) -> PBInstance:
    """Parse an ``.opb`` file from disk."""
    with open(path, "r") as handle:
        return parse(handle)


def write(instance: PBInstance, sink: Optional[TextIO] = None) -> str:
    """Serialize an instance to OPB text; also writes to ``sink`` if given."""
    out = io.StringIO()
    stats = instance.statistics()
    out.write(
        "* #variable= %d #constraint= %d\n"
        % (stats["variables"], stats["constraints"])
    )
    objective = instance.objective
    if objective.offset:
        # OPB has no constant objective term; preserve it in a comment
        # that parse() understands.
        out.write("* offset= %d\n" % objective.offset)
    if not objective.is_constant:
        parts = ["min:"]
        for var in sorted(objective.costs):
            parts.append("%+d x%d" % (objective.costs[var], var))
        out.write(" ".join(parts) + " ;\n")
    for constraint in instance.constraints:
        parts = []
        for coef, lit in constraint.terms:
            if lit > 0:
                parts.append("%+d x%d" % (coef, lit))
            else:
                parts.append("%+d ~x%d" % (coef, -lit))
        parts.append(">= %d ;" % constraint.rhs)
        out.write(" ".join(parts) + "\n")
    text = out.getvalue()
    if sink is not None:
        sink.write(text)
    return text


def write_file(instance: PBInstance, path: str) -> None:
    """Write an instance to an ``.opb`` file."""
    with open(path, "w") as handle:
        write(instance, handle)
