"""Reader/writer for the OPB and WBO pseudo-boolean formats.

The OPB format is the interchange format of the pseudo-boolean evaluation
(PB competition) and is accepted by PBS, Galena, bsolo and modern PB
solvers.  Supported subset::

    * comment lines start with '*'
    min: +1 x1 -2 x2 +3 ~x4 ;
    +1 x1 +4 x2 -2 x5 >= 2 ;
    +1 x3 +1 ~x4 = 1 ;

Terms are ``<integer> <literal>`` with literals ``xN`` / ``~xN``; relations
are ``>=``, ``<=`` and ``=``; every statement ends with ``;``.  The
objective line is optional (pure satisfaction instances omit it).

The WBO variant (:func:`parse_wbo`) is the competition's soft-constraint
format: no objective line, a ``soft: <top> ;`` header (``top`` optional —
when present, solutions with violation cost ``>= top`` are rejected), and
constraints optionally prefixed with a ``[<weight>]`` marker making them
soft::

    soft: 6 ;
    [2] +1 x1 >= 1 ;
    +1 x2 +1 x3 >= 2 ;
"""

from __future__ import annotations

import io
import re
from typing import List, Optional, TextIO, Tuple, Union

from .builder import PBModel
from .constraints import Constraint, Term
from .instance import PBInstance

_TOKEN = re.compile(r"[+-]?\d+|~?x\d+|>=|<=|=|;|min:|max:")

#: WBO adds the ``soft:`` header and ``[w]`` weight prefixes (and drops
#: the objective keywords — a ``min:`` line in a ``.wbo`` file is an
#: error, surfaced as unexpected text).
_WBO_TOKEN = re.compile(r"\[\d+\]|soft:|[+-]?\d+|~?x\d+|>=|<=|=|;")


class OPBError(ValueError):
    """Malformed OPB input."""


_OFFSET_COMMENT = re.compile(r"^\*\s*offset=\s*(-?\d+)\s*$")


def _tokenize(
    text: str, token: "re.Pattern[str]" = _TOKEN
) -> Tuple[List[str], int]:
    tokens: List[str] = []
    offset = 0
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("*"):
            match = _OFFSET_COMMENT.match(line)
            if match:
                offset = int(match.group(1))
            continue
        pos = 0
        for match in token.finditer(line):
            between = line[pos : match.start()]
            if between.strip():
                raise OPBError("unexpected text %r in line %r" % (between.strip(), raw_line))
            tokens.append(match.group(0))
            pos = match.end()
        if line[pos:].strip():
            raise OPBError("unexpected text %r in line %r" % (line[pos:].strip(), raw_line))
    return tokens, offset


def _parse_literal(token: str) -> int:
    negated = token.startswith("~")
    var = int(token[2:]) if negated else int(token[1:])
    if var <= 0:
        raise OPBError("variable indices start at 1: %r" % token)
    return -var if negated else var


def parse(source: Union[str, TextIO]) -> PBInstance:
    """Parse OPB text (or a readable file object) into a ``PBInstance``."""
    text = source if isinstance(source, str) else source.read()
    tokens, offset = _tokenize(text)
    model = PBModel()
    if offset:
        model.minimize([(offset, 1), (offset, -1)])  # constant: c*x + c*~x
    i = 0
    n = len(tokens)
    seen_objective = False
    seen_constraint = False
    while i < n:
        token = tokens[i]
        if token in ("min:", "max:"):
            if seen_objective:
                raise OPBError("multiple objective lines")
            if seen_constraint:
                raise OPBError("objective must precede constraints")
            seen_objective = True
            i += 1
            terms, i = _parse_terms(tokens, i)
            if i >= n or tokens[i] != ";":
                raise OPBError("objective line missing ';'")
            i += 1
            if token == "min:":
                model.minimize(terms)
            else:
                model.maximize(terms)
        else:
            seen_constraint = True
            terms, i = _parse_terms(tokens, i)
            if i >= n or tokens[i] not in (">=", "<=", "="):
                raise OPBError("constraint missing relation operator")
            relation = tokens[i]
            i += 1
            if i >= n:
                raise OPBError("constraint missing right-hand side")
            try:
                rhs = int(tokens[i])
            except ValueError:
                raise OPBError("right-hand side must be an integer, got %r" % tokens[i])
            i += 1
            if i >= n or tokens[i] != ";":
                raise OPBError("constraint missing ';'")
            i += 1
            if relation == ">=":
                model.add_greater_equal(terms, rhs)
            elif relation == "<=":
                model.add_less_equal(terms, rhs)
            else:
                model.add_equal(terms, rhs)
    return model.build()


def _parse_terms(tokens: List[str], i: int) -> Tuple[List[Term], int]:
    terms: List[Term] = []
    n = len(tokens)
    while i < n:
        token = tokens[i]
        if token in (">=", "<=", "=", ";"):
            break
        try:
            coef = int(token)
        except ValueError:
            raise OPBError("expected coefficient, got %r" % token)
        i += 1
        if i >= n or not tokens[i].lstrip("~").startswith("x"):
            raise OPBError("coefficient %d not followed by a literal" % coef)
        terms.append((coef, _parse_literal(tokens[i])))
        i += 1
    return terms, i


def parse_file(path: str) -> PBInstance:
    """Parse an ``.opb`` file from disk."""
    with open(path, "r") as handle:
        return parse(handle)


def write(instance: PBInstance, sink: Optional[TextIO] = None) -> str:
    """Serialize an instance to OPB text; also writes to ``sink`` if given."""
    out = io.StringIO()
    stats = instance.statistics()
    out.write(
        "* #variable= %d #constraint= %d\n"
        % (stats["variables"], stats["constraints"])
    )
    objective = instance.objective
    if objective.offset:
        # OPB has no constant objective term; preserve it in a comment
        # that parse() understands.
        out.write("* offset= %d\n" % objective.offset)
    if not objective.is_constant:
        parts = ["min:"]
        for var in sorted(objective.costs):
            parts.append("%+d x%d" % (objective.costs[var], var))
        out.write(" ".join(parts) + " ;\n")
    for constraint in instance.constraints:
        parts = []
        for coef, lit in constraint.terms:
            if lit > 0:
                parts.append("%+d x%d" % (coef, lit))
            else:
                parts.append("%+d ~x%d" % (coef, -lit))
        parts.append(">= %d ;" % constraint.rhs)
        out.write(" ".join(parts) + "\n")
    text = out.getvalue()
    if sink is not None:
        sink.write(text)
    return text


def write_file(instance: PBInstance, path: str) -> None:
    """Write an instance to an ``.opb`` file."""
    with open(path, "w") as handle:
        write(instance, handle)


# ----------------------------------------------------------------------
# WBO (soft-constraint) variant
# ----------------------------------------------------------------------
def parse_wbo(source: Union[str, TextIO]):
    """Parse WBO text (or a readable file object) into a
    :class:`~repro.wbo.model.WBOInstance`.

    Grammar (module docstring): an optional ``soft: [top] ;`` header
    followed by constraints, each optionally prefixed by ``[weight]``.
    Soft equality constraints are rejected — a soft ``=`` has no single
    violated/satisfied reading in the relaxation encoding (its two
    directions would need separate weights); model them as two soft
    ``>=``/``<=`` constraints instead.
    """
    from ..wbo.model import SoftConstraint, WBOInstance

    text = source if isinstance(source, str) else source.read()
    tokens, _ = _tokenize(text, _WBO_TOKEN)
    hard: List[Constraint] = []
    soft: List[SoftConstraint] = []
    top: Optional[int] = None
    i = 0
    n = len(tokens)
    seen_header = False
    seen_constraint = False
    while i < n:
        token = tokens[i]
        if token == "soft:":
            if seen_header:
                raise OPBError("multiple 'soft:' header lines")
            if seen_constraint:
                raise OPBError("'soft:' header must precede constraints")
            seen_header = True
            i += 1
            if i < n and tokens[i] != ";":
                try:
                    top = int(tokens[i])
                except ValueError:
                    raise OPBError(
                        "soft: header expects an integer, got %r" % tokens[i]
                    )
                if top <= 0:
                    raise OPBError("soft: top bound must be positive")
                i += 1
            if i >= n or tokens[i] != ";":
                raise OPBError("'soft:' header missing ';'")
            i += 1
            continue
        weight: Optional[int] = None
        if token.startswith("["):
            weight = int(token[1:-1])
            if weight <= 0:
                raise OPBError("soft-constraint weight must be positive")
            i += 1
        seen_constraint = True
        terms, i = _parse_terms(tokens, i)
        if i >= n or tokens[i] not in (">=", "<=", "="):
            raise OPBError("constraint missing relation operator")
        relation = tokens[i]
        i += 1
        if i >= n:
            raise OPBError("constraint missing right-hand side")
        try:
            rhs = int(tokens[i])
        except ValueError:
            raise OPBError(
                "right-hand side must be an integer, got %r" % tokens[i]
            )
        i += 1
        if i >= n or tokens[i] != ";":
            raise OPBError("constraint missing ';'")
        i += 1
        if relation == ">=":
            built = [Constraint.greater_equal(terms, rhs)]
        elif relation == "<=":
            built = [Constraint.less_equal(terms, rhs)]
        else:
            if weight is not None:
                raise OPBError(
                    "soft equality constraints are not supported; "
                    "split into soft >= and <= halves"
                )
            built = [
                Constraint.greater_equal(terms, rhs),
                Constraint.less_equal(terms, rhs),
            ]
        for constraint in built:
            if weight is None:
                hard.append(constraint)
            else:
                soft.append(SoftConstraint(constraint, weight))
    return WBOInstance(hard, soft, top=top)


def parse_wbo_file(path: str):
    """Parse a ``.wbo`` file from disk."""
    with open(path, "r") as handle:
        return parse_wbo(handle)


def write_wbo(wbo, sink: Optional[TextIO] = None) -> str:
    """Serialize a :class:`~repro.wbo.model.WBOInstance` to WBO text;
    also writes to ``sink`` if given.  Constraints are emitted in the
    normalized ``>=`` form, softs with their ``[weight]`` prefix."""
    out = io.StringIO()
    out.write(
        "* #variable= %d #constraint= %d #soft= %d\n"
        % (wbo.num_variables, len(wbo.hard), len(wbo.soft))
    )
    out.write("soft: %s;\n" % ("%d " % wbo.top if wbo.top is not None else ""))

    def _render(constraint: Constraint) -> str:
        parts = []
        for coef, lit in constraint.terms:
            if lit > 0:
                parts.append("%+d x%d" % (coef, lit))
            else:
                parts.append("%+d ~x%d" % (coef, -lit))
        parts.append(">= %d ;" % constraint.rhs)
        return " ".join(parts)

    for constraint in wbo.hard:
        out.write(_render(constraint) + "\n")
    for entry in wbo.soft:
        out.write("[%d] %s\n" % (entry.weight, _render(entry.constraint)))
    text = out.getvalue()
    if sink is not None:
        sink.write(text)
    return text


def write_wbo_file(wbo, path: str) -> None:
    """Write a WBO instance to a ``.wbo`` file."""
    with open(path, "w") as handle:
        write_wbo(wbo, handle)
