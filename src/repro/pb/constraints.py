"""Normalized linear pseudo-boolean constraints.

The paper (Section 2) works with constraints of the form::

    sum_j a_ij * l_ij >= b_i        a_ij, b_i non-negative integers

where each ``l_ij`` is a literal.  "Every pseudo-boolean formulation can be
rewritten such that all coefficients a_ij and right-hand side b_i be
non-negative"; :func:`normalize_terms` performs exactly that rewriting:

* ``<=`` constraints are negated into ``>=`` form;
* equalities split into a pair of inequalities (at :class:`~repro.pb.builder`
  level);
* negative coefficients flip the literal polarity (``a*x == a - a*~x``);
* duplicate literals over one variable are merged, opposing literals cancel
  against the right-hand side;
* coefficients are *saturated* at the right-hand side
  (``a_j := min(a_j, b)``), a sound strengthening used throughout the PB
  literature.

A normalized constraint classifies itself as a clause or a cardinality
constraint exactly as the paper defines those terms.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .literals import literal_value, negate, variable

#: One addend of a constraint: (coefficient, literal).
Term = Tuple[int, int]


class ConstraintError(ValueError):
    """Raised for malformed constraint input (zero literals, bad types)."""


def normalize_terms(
    terms: Iterable[Term], rhs: int, saturate: bool = True
) -> Tuple[Tuple[Term, ...], int]:
    """Rewrite ``sum a_j l_j >= rhs`` into normalized form.

    Returns the new ``(terms, rhs)`` with positive integer coefficients,
    at most one literal per variable, non-negative rhs, terms sorted by
    variable index.  A tautological constraint normalizes to
    ``((), 0)``; an unsatisfiable one keeps ``rhs > sum(coefficients)`` so
    callers can detect it via :func:`is_unsatisfiable_terms`.
    """
    merged: Dict[int, int] = {}  # literal -> coefficient (may be negative)
    new_rhs = rhs
    for coef, lit in terms:
        if not isinstance(coef, int) or isinstance(coef, bool):
            raise ConstraintError("coefficients must be plain integers, got %r" % (coef,))
        if not isinstance(lit, int) or isinstance(lit, bool) or lit == 0:
            raise ConstraintError("literals must be non-zero integers, got %r" % (lit,))
        if coef == 0:
            continue
        if coef < 0:
            # a*l == a - a*~l  with a < 0:  move the constant to the rhs.
            new_rhs -= coef  # rhs grows by |coef|
            coef, lit = -coef, negate(lit)
        merged[lit] = merged.get(lit, 0) + coef

    # Merging may have produced both x and ~x entries: cancel the overlap.
    result: Dict[int, Term] = {}
    for lit, coef in merged.items():
        if coef == 0:
            continue
        var = variable(lit)
        if var in result:
            other_coef, other_lit = result[var]
            if other_lit == lit:
                result[var] = (other_coef + coef, lit)
            else:
                # a*x + b*~x = min(a,b) + |a-b| * (the heavier literal)
                common = min(other_coef, coef)
                new_rhs -= common
                remainder = other_coef - coef
                if remainder == 0:
                    del result[var]
                elif remainder > 0:
                    result[var] = (remainder, other_lit)
                else:
                    result[var] = (-remainder, lit)
        else:
            result[var] = (coef, lit)

    if new_rhs <= 0:
        return (), 0  # tautology

    final: List[Term] = []
    for var in sorted(result):
        coef, lit = result[var]
        if saturate and coef > new_rhs:
            coef = new_rhs
        final.append((coef, lit))
    return tuple(final), new_rhs


def is_unsatisfiable_terms(terms: Sequence[Term], rhs: int) -> bool:
    """True when even setting every literal true cannot reach ``rhs``."""
    return sum(coef for coef, _ in terms) < rhs


class Constraint:
    """An immutable, normalized pseudo-boolean ``>=`` constraint.

    Instances should be built through :meth:`Constraint.greater_equal` /
    :meth:`Constraint.less_equal` / :meth:`Constraint.clause` /
    :meth:`Constraint.at_most` / :meth:`Constraint.at_least` rather than the
    raw initializer, which expects already-normalized data.
    """

    __slots__ = ("terms", "rhs", "_coef_of")

    def __init__(self, terms: Tuple[Term, ...], rhs: int):
        self.terms = terms
        self.rhs = rhs
        self._coef_of: Optional[Dict[int, int]] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def greater_equal(cls, terms: Iterable[Term], rhs: int) -> "Constraint":
        """Normalize ``sum a_j l_j >= rhs`` into a constraint."""
        norm_terms, norm_rhs = normalize_terms(terms, rhs)
        return cls(norm_terms, norm_rhs)

    @classmethod
    def less_equal(cls, terms: Iterable[Term], rhs: int) -> "Constraint":
        """Normalize ``sum a_j l_j <= rhs`` (negated into ``>=`` form)."""
        flipped = [(-coef, lit) for coef, lit in terms]
        return cls.greater_equal(flipped, -rhs)

    @classmethod
    def clause(cls, literals: Iterable[int]) -> "Constraint":
        """Propositional clause: at least one of ``literals`` is true."""
        return cls.greater_equal([(1, lit) for lit in literals], 1)

    @classmethod
    def at_least(cls, literals: Iterable[int], count: int) -> "Constraint":
        """Cardinality constraint: at least ``count`` literals true."""
        return cls.greater_equal([(1, lit) for lit in literals], count)

    @classmethod
    def at_most(cls, literals: Iterable[int], count: int) -> "Constraint":
        """Cardinality constraint: at most ``count`` literals true."""
        return cls.less_equal([(1, lit) for lit in literals], count)

    # ------------------------------------------------------------------
    # Classification (paper Section 2)
    # ------------------------------------------------------------------
    @property
    def is_tautology(self) -> bool:
        """True when the constraint is satisfied by every assignment."""
        return self.rhs == 0

    @property
    def is_unsatisfiable(self) -> bool:
        """True when no assignment satisfies the constraint."""
        return is_unsatisfiable_terms(self.terms, self.rhs)

    @property
    def is_clause(self) -> bool:
        """Any single true literal satisfies it (all ``a_j >= rhs``)."""
        if self.rhs == 0:
            return False
        return all(coef >= self.rhs for coef, _ in self.terms)

    @property
    def is_cardinality(self) -> bool:
        """All coefficients share one value ``k`` (paper: needs
        ``ceil(rhs / k)`` true literals)."""
        if not self.terms or self.rhs == 0:
            return False
        first = self.terms[0][0]
        return all(coef == first for coef, _ in self.terms)

    @property
    def cardinality_threshold(self) -> int:
        """For a cardinality constraint, the number of literals required."""
        if not self.is_cardinality:
            raise ValueError("not a cardinality constraint")
        k = self.terms[0][0]
        return -(-self.rhs // k)  # ceil division

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def literals(self) -> Tuple[int, ...]:
        """The constraint's literals, in term order."""
        return tuple(lit for _, lit in self.terms)

    @property
    def variables(self) -> Tuple[int, ...]:
        """The underlying variables, in term order."""
        return tuple(variable(lit) for _, lit in self.terms)

    def coefficient(self, literal: int) -> int:
        """Coefficient of ``literal`` in this constraint (0 when absent)."""
        if self._coef_of is None:
            self._coef_of = {lit: coef for coef, lit in self.terms}
        return self._coef_of.get(literal, 0)

    def __len__(self) -> int:
        return len(self.terms)

    def __iter__(self):
        return iter(self.terms)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def left_hand_side(self, assignment: Mapping[int, int]) -> int:
        """Value of ``sum a_j l_j`` under a *complete* assignment."""
        total = 0
        for coef, lit in self.terms:
            value = literal_value(lit, assignment)
            if value is None:
                raise ValueError("assignment does not cover variable %d" % variable(lit))
            total += coef * value
        return total

    def is_satisfied_by(self, assignment: Mapping[int, int]) -> bool:
        """Whether a complete assignment satisfies the constraint."""
        return self.left_hand_side(assignment) >= self.rhs

    def slack(self, assignment: Mapping[int, int]) -> int:
        """``sum_{l_j not false} a_j - rhs`` under a *partial* assignment.

        Negative slack means the constraint is already violated; an
        unassigned literal with coefficient larger than the slack is
        implied true (counter-based propagation, see
        :mod:`repro.engine.propagation`).
        """
        supply = 0
        for coef, lit in self.terms:
            if literal_value(lit, assignment) != 0:
                supply += coef
        return supply - self.rhs

    # ------------------------------------------------------------------
    # Integer-space view (for LP / Lagrangian relaxation, Section 3)
    # ------------------------------------------------------------------
    def integer_form(self) -> Tuple[Dict[int, int], int]:
        """Rewrite over variables: ``sum_j w_j x_j >= r`` with ``~x -> 1-x``.

        Returns ``(weights_by_variable, r)``; weights may be negative.
        """
        weights: Dict[int, int] = {}
        r = self.rhs
        for coef, lit in self.terms:
            var = variable(lit)
            if lit > 0:
                weights[var] = weights.get(var, 0) + coef
            else:
                weights[var] = weights.get(var, 0) - coef
                r -= coef
        return weights, r

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Constraint):
            return NotImplemented
        return self.terms == other.terms and self.rhs == other.rhs

    def __hash__(self) -> int:
        return hash((self.terms, self.rhs))

    def __repr__(self) -> str:
        body = " + ".join(
            "%d*%s" % (coef, ("x%d" % lit if lit > 0 else "~x%d" % -lit))
            for coef, lit in self.terms
        )
        return "Constraint(%s >= %d)" % (body or "0", self.rhs)

    def minimum_true_literals(self) -> int:
        """Fewest literals that must be true in any satisfying assignment.

        Greedy over descending coefficients; exact because taking the
        largest coefficients first is optimal for counting.
        """
        if self.rhs == 0:
            return 0
        remaining = self.rhs
        count = 0
        for coef in sorted((c for c, _ in self.terms), reverse=True):
            remaining -= coef
            count += 1
            if remaining <= 0:
                return count
        return math.inf  # type: ignore[return-value]  # unsatisfiable
