"""Canonical forms for pseudo-boolean instances: normalize, rename, hash.

The solve service caches results keyed on the *canonical form* of an
instance, so equivalent submissions from different users hit the cache
even when their variables are numbered differently or their terms and
constraints arrive in a different order.  Two layers of normalization:

* **term/constraint order** — :class:`~repro.pb.constraints.Constraint`
  already normalizes coefficients and sorts terms by variable; this
  module additionally sorts the constraint *list*, so shuffled inputs
  serialize identically;
* **variable renaming** — variables are relabeled by
  individualization-refinement (the standard canonical-labeling loop:
  Weisfeiler-Leman-style color refinement over the variable/constraint
  incidence structure, then repeatedly fix the first member of the
  smallest ambiguous color class and re-refine).

Soundness does not depend on the refinement being a perfect isomorphism
test: the canonical instance is produced by applying an *actual
permutation* to the input, so ``canonical_form(A).text ==
canonical_form(B).text`` proves ``A`` and ``B`` are renamings of each
other (both are isomorphic to the shared canonical instance).  A weak
tie-break can only *miss* an equivalence (a cache miss), never fabricate
one — which is why cache lookups compare the full canonical text, not
just the digest (see :mod:`repro.service.cache`).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Mapping, Optional, Tuple

from .instance import PBInstance
from .literals import variable


class CanonicalForm:
    """The canonical serialization of one instance plus its renaming.

    ``renaming`` maps original variable indices to canonical ones
    (both 1-based); ``text`` is the deterministic serialization of the
    renamed instance and ``key`` its SHA-256 hex digest.  Models travel
    through the renaming with :meth:`to_canonical_model` /
    :meth:`from_canonical_model`, which is how the service cache serves
    a result computed for one user's variable numbering to another
    user's equivalent instance.
    """

    __slots__ = ("text", "key", "renaming", "_inverse")

    def __init__(self, text: str, renaming: Dict[int, int]):
        self.text = text
        self.key = hashlib.sha256(text.encode("utf-8")).hexdigest()
        self.renaming = renaming
        self._inverse: Optional[Dict[int, int]] = None

    @property
    def inverse(self) -> Dict[int, int]:
        """Canonical variable index -> original variable index."""
        if self._inverse is None:
            self._inverse = {c: v for v, c in self.renaming.items()}
        return self._inverse

    def to_canonical_model(
        self, model: Mapping[int, int]
    ) -> Dict[int, int]:
        """Rename an assignment over original variables into canonical
        variable space (variables outside the renaming are dropped)."""
        return {
            self.renaming[var]: value
            for var, value in model.items()
            if var in self.renaming
        }

    def from_canonical_model(
        self, model: Mapping[int, int]
    ) -> Dict[int, int]:
        """Rename a canonical-space assignment back to this instance's
        original variable numbering."""
        inverse = self.inverse
        return {
            inverse[var]: value
            for var, value in model.items()
            if var in inverse
        }

    def __repr__(self) -> str:
        return "CanonicalForm(key=%s..., %d vars)" % (
            self.key[:12],
            len(self.renaming),
        )


def _rank(signatures: Dict[int, tuple]) -> Dict[int, int]:
    """Replace each signature with its rank in the sorted unique order."""
    order = {sig: index for index, sig in enumerate(sorted(set(signatures.values())))}
    return {key: order[sig] for key, sig in signatures.items()}


def _refine(
    instance: PBInstance,
    occurrences: Dict[int, List[Tuple[int, bool, int]]],
    assigned: Dict[int, int],
    var_color: Dict[int, int],
    con_color: Dict[int, int],
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Run color refinement to a fixpoint.

    Variable signatures combine the previous color, the objective cost,
    the already-fixed canonical index (individualization) and the
    multiset of ``(coefficient, polarity, constraint color)``
    occurrences; constraint signatures combine the previous color, the
    right-hand side and the multiset of ``(coefficient, polarity,
    variable color)`` terms.  Including the previous colors makes the
    partitions refine monotonically, so the loop terminates after at
    most ``num_variables + num_constraints`` rounds.
    """
    costs = instance.objective.costs
    while True:
        con_sigs = {
            index: (
                con_color[index],
                constraint.rhs,
                tuple(
                    sorted(
                        (coef, lit > 0, var_color[variable(lit)])
                        for coef, lit in constraint.terms
                    )
                ),
            )
            for index, constraint in enumerate(instance.constraints)
        }
        new_con = _rank(con_sigs)
        var_sigs = {
            var: (
                var_color[var],
                assigned.get(var, -1),
                costs.get(var, 0),
                tuple(
                    sorted(
                        (coef, positive, new_con[index])
                        for coef, positive, index in occurrences[var]
                    )
                ),
            )
            for var in var_color
        }
        new_var = _rank(var_sigs)
        if (
            len(set(new_var.values())) == len(set(var_color.values()))
            and len(set(new_con.values())) == len(set(con_color.values()))
            and new_var == var_color
            and new_con == con_color
        ):
            return var_color, con_color
        var_color, con_color = new_var, new_con


def canonical_form(instance: PBInstance) -> CanonicalForm:
    """Compute the canonical form (renaming + serialization) of an
    instance.

    Runs individualization-refinement to derive a variable permutation
    that is invariant under renaming wherever the refinement
    discriminates (ties between structurally interchangeable variables
    resolve to the same serialized text by symmetry), then serializes
    the renamed instance with sorted constraints.
    """
    # Only *used* variables participate: a variable absent from both the
    # objective and every constraint is free, so instances differing only
    # in how many unused indices they declare canonicalize identically.
    used = set(instance.objective.costs)
    for constraint in instance.constraints:
        for _coef, lit in constraint.terms:
            used.add(variable(lit))
    occurrences: Dict[int, List[Tuple[int, bool, int]]] = {
        var: [] for var in used
    }
    for index, constraint in enumerate(instance.constraints):
        for coef, lit in constraint.terms:
            occurrences[variable(lit)].append((coef, lit > 0, index))

    assigned: Dict[int, int] = {}
    var_color = {var: 0 for var in used}
    con_color = {index: 0 for index in range(len(instance.constraints))}
    while len(assigned) < len(used):
        var_color, con_color = _refine(
            instance, occurrences, assigned, var_color, con_color
        )
        classes: Dict[int, List[int]] = {}
        for var in sorted(used):
            if var not in assigned:
                classes.setdefault(var_color[var], []).append(var)
        progressed = False
        for color in sorted(classes):
            members = classes[color]
            if len(members) == 1:
                assigned[members[0]] = len(assigned) + 1
                progressed = True
                continue
            if not progressed:
                # Individualize one member of the first ambiguous class
                # and re-refine; whichever member is picked, the
                # resulting serialization is identical when the members
                # are genuinely interchangeable (an automorphism maps
                # one choice onto another), and merely less shareable —
                # never wrong — when they are not.
                assigned[min(members)] = len(assigned) + 1
            break

    renaming = dict(assigned)
    return CanonicalForm(_serialize(instance, renaming), renaming)


def _serialize(instance: PBInstance, renaming: Dict[int, int]) -> str:
    """Deterministic text form of the instance under ``renaming``."""
    costs = instance.objective.costs
    objective_terms = sorted(
        (renaming[var], cost) for var, cost in costs.items()
    )
    lines = [
        "vars %d" % len(renaming),
        "min %d : %s"
        % (
            instance.objective.offset,
            " ".join("%d x%d" % (cost, var) for var, cost in objective_terms),
        ),
    ]
    rendered = []
    for constraint in instance.constraints:
        terms = sorted(
            (renaming[variable(lit)], lit > 0, coef)
            for coef, lit in constraint.terms
        )
        body = " ".join(
            "%d %sx%d" % (coef, "" if positive else "~", var)
            for var, positive, coef in terms
        )
        rendered.append("%s >= %d" % (body, constraint.rhs))
    lines.extend(sorted(rendered))
    return "\n".join(lines) + "\n"


def canonical_hash(instance: PBInstance) -> str:
    """SHA-256 hex digest of the instance's canonical form.

    Equal digests for instances that are term permutations or variable
    renamings of each other; cache implementations that must rule out
    digest collisions should compare :attr:`CanonicalForm.text` as well.
    """
    return canonical_form(instance).key
