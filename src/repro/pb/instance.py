"""The linear pseudo-boolean optimization instance (paper eq. 1)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from .constraints import Constraint
from .objective import Objective


class InfeasibleConstraintError(ValueError):
    """A constraint is unsatisfiable on its own (``sum a_j < rhs``)."""


class PBInstance:
    """An instance ``P`` of linear pseudo-boolean optimization.

    Holds a normalized objective and a list of normalized ``>=``
    constraints over variables ``1..num_variables``.  Tautological
    constraints are dropped at construction; individually unsatisfiable
    constraints raise :class:`InfeasibleConstraintError` (the overall
    instance may of course still be unsatisfiable through interaction).
    """

    def __init__(
        self,
        constraints: Iterable[Constraint],
        objective: Optional[Objective] = None,
        num_variables: Optional[int] = None,
        variable_names: Optional[Mapping[int, str]] = None,
    ):
        kept: List[Constraint] = []
        max_var = 0
        for constraint in constraints:
            if constraint.is_tautology:
                continue
            if constraint.is_unsatisfiable:
                raise InfeasibleConstraintError(
                    "constraint %r can never be satisfied" % (constraint,)
                )
            kept.append(constraint)
            for var in constraint.variables:
                if var > max_var:
                    max_var = var
        self.constraints: Tuple[Constraint, ...] = tuple(kept)
        self.objective = objective if objective is not None else Objective({})
        for var in self.objective.costs:
            if var > max_var:
                max_var = var
        if num_variables is not None:
            if num_variables < max_var:
                raise ValueError(
                    "num_variables=%d but variable %d appears" % (num_variables, max_var)
                )
            max_var = num_variables
        self.num_variables = max_var
        self.variable_names: Dict[int, str] = dict(variable_names or {})

    # ------------------------------------------------------------------
    @property
    def num_constraints(self) -> int:
        """Number of constraints kept after normalization."""
        return len(self.constraints)

    @property
    def is_satisfaction(self) -> bool:
        """True for pure PB-SAT instances (no cost function, paper [16])."""
        return self.objective.is_constant

    @property
    def is_covering(self) -> bool:
        """True when every constraint is a clause (binate covering, BCP)."""
        return all(c.is_clause for c in self.constraints)

    # ------------------------------------------------------------------
    def check(self, assignment: Mapping[int, int]) -> bool:
        """Whether a complete 0/1 assignment satisfies every constraint."""
        return all(c.is_satisfied_by(assignment) for c in self.constraints)

    def cost(self, assignment: Mapping[int, int]) -> int:
        """Objective value of a complete assignment (offset included)."""
        return self.objective.evaluate(assignment)

    def variables(self) -> range:
        """All variable indices, ``1..num_variables`` inclusive."""
        return range(1, self.num_variables + 1)

    # ------------------------------------------------------------------
    def restricted(self, fixed: Mapping[int, int]) -> "PBInstance":
        """A new instance with ``fixed`` variables substituted out.

        Used by relaxation-based lower bounders that want the subproblem
        "constraints not yet satisfied under the current assignments"
        (paper Section 3).  Variable indices are preserved.
        """
        new_constraints: List[Constraint] = []
        for constraint in self.constraints:
            terms = []
            rhs = constraint.rhs
            for coef, lit in constraint.terms:
                var = lit if lit > 0 else -lit
                value = fixed.get(var)
                if value is None:
                    terms.append((coef, lit))
                else:
                    lit_true = (value == 1) == (lit > 0)
                    if lit_true:
                        rhs -= coef
            if rhs <= 0:
                continue
            reduced = Constraint.greater_equal(terms, rhs)
            if reduced.is_unsatisfiable:
                raise InfeasibleConstraintError(
                    "fixing makes %r unsatisfiable" % (constraint,)
                )
            new_constraints.append(reduced)
        remaining_costs = {
            var: cost for var, cost in self.objective.costs.items() if var not in fixed
        }
        return PBInstance(
            new_constraints,
            Objective(remaining_costs, self.objective.offset),
            num_variables=self.num_variables,
            variable_names=self.variable_names,
        )

    # ------------------------------------------------------------------
    def statistics(self) -> Dict[str, int]:
        """Structural statistics (useful in reports and tests)."""
        clauses = sum(1 for c in self.constraints if c.is_clause)
        cards = sum(1 for c in self.constraints if c.is_cardinality and not c.is_clause)
        return {
            "variables": self.num_variables,
            "constraints": self.num_constraints,
            "clauses": clauses,
            "cardinality": cards,
            "general": self.num_constraints - clauses - cards,
            "costed_variables": len(self.objective.costs),
        }

    def __repr__(self) -> str:
        stats = self.statistics()
        return "PBInstance(%d vars, %d constraints, %d costed)" % (
            stats["variables"],
            stats["constraints"],
            stats["costed_variables"],
        )
