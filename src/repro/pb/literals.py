"""Literal representation for pseudo-boolean formulas.

A variable is a positive integer index (1-based, DIMACS style).  A literal
is a signed integer: ``+v`` denotes the variable ``x_v`` and ``-v`` denotes
its complement ``~x_v``.  Using plain integers keeps the hot propagation
loops free of attribute lookups.

Truth-value convention (paper Section 2): literal ``x_v`` is *true* when
``x_v = 1``; literal ``~x_v`` is *true* when ``x_v = 0``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

#: Truth values of a variable inside an assignment map.
TRUE = 1
FALSE = 0


def variable(literal: int) -> int:
    """Return the (positive) variable index underlying ``literal``."""
    if literal == 0:
        raise ValueError("0 is not a valid literal")
    return literal if literal > 0 else -literal


def negate(literal: int) -> int:
    """Return the complement literal (``x -> ~x`` and vice versa)."""
    if literal == 0:
        raise ValueError("0 is not a valid literal")
    return -literal


def is_positive(literal: int) -> bool:
    """True when the literal is an uncomplemented variable ``x_v``."""
    if literal == 0:
        raise ValueError("0 is not a valid literal")
    return literal > 0


def literal_value(literal: int, assignment: Mapping[int, int]) -> Optional[int]:
    """Evaluate ``literal`` under a partial assignment of variables.

    ``assignment`` maps variable index to 0/1.  Returns ``TRUE``/``FALSE``
    for assigned variables and ``None`` when the variable is unassigned.
    """
    value = assignment.get(variable(literal))
    if value is None:
        return None
    if literal > 0:
        return TRUE if value == TRUE else FALSE
    return TRUE if value == FALSE else FALSE


def make_literal(var: int, positive: bool) -> int:
    """Build the literal over variable ``var`` with the given polarity."""
    if var <= 0:
        raise ValueError("variable indices are positive integers")
    return var if positive else -var


def literal_to_str(literal: int, name_of: Optional[Mapping[int, str]] = None) -> str:
    """Render a literal as ``x3`` / ``~x3`` (or with symbolic names)."""
    var = variable(literal)
    name = name_of[var] if name_of and var in name_of else "x%d" % var
    return name if literal > 0 else "~" + name


def max_variable(literals: Iterable[int]) -> int:
    """Largest variable index appearing in ``literals`` (0 when empty)."""
    result = 0
    for lit in literals:
        var = variable(lit)
        if var > result:
            result = var
    return result
