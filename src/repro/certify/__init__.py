"""Certified answers: cutting-planes proof logging and checking.

A :class:`ProofLogger` attached to the bsolo solver (via
``SolverOptions(proof=...)``) records a machine-checkable derivation of
every constraint the search learns — first-UIP clauses as RUP steps,
cutting-plane resolvents as explicit resolution replays, Section-5 cuts
as recomputable consequences of the incumbent, and bound conflicts as
exact-arithmetic lower-bound certificates (MIS accounting or rationalized
LP/Lagrangian multipliers).  The standalone :class:`ProofChecker` replays
such a log against the parsed OPB instance using *only* ``repro.pb``
arithmetic — it imports nothing from ``repro.core`` or ``repro.engine``
— and either certifies the run's final claim or rejects the log with a
step-numbered error.

See ``docs/PROOFS.md`` for the format grammar, the derivation rules with
worked examples, and the checker's trust base.
"""

from .checker import CheckOutcome, ProofChecker, ProofError
from .format import ProofSyntaxError
from .logger import ProofLogger

__all__ = [
    "CheckOutcome",
    "ProofChecker",
    "ProofError",
    "ProofLogger",
    "ProofSyntaxError",
]
