"""The ``repro`` cutting-planes proof format: grammar, parse, serialize.

A proof is a line-oriented text file (conventionally ``*.pbp``).  Lines
starting with ``*`` are comments; the first two non-comment lines form
the header binding the proof to an instance::

    pbp repro 1
    f <m>

where ``m`` is the number of constraints of the parsed OPB instance;
those constraints get ids ``1 .. m``.  Every subsequent *derivation*
step appends one constraint to the database and receives the next id
(``m+1``, ``m+2``, ...); the ``c`` and ``e`` steps derive nothing and
get no id.  Literals are signed integers (``-4`` is the negation of
variable 4, DIMACS style); explicit constraints are written as
coefficient/literal pairs followed by ``>= rhs``.

Step grammar (one line each; every list is ``0``-terminated)::

    a <lit>                                    assumption axiom (unit clause)
    u <lit> ... 0                              clause derived by RUP
    o <lit> ... 0                              solution: a complete model;
                                               derives the improvement axiom
                                               ``sum c_j x_j <= cost - 1``
    t <cid>                                    cardinality-derived cut (eq. 13)
                                               recomputed from input <cid> and
                                               the current certified incumbent
    p <base> {r <var> <aid> | w}* 0 <constraint>
                                               cutting-plane resolution replay:
                                               start from <base>, resolve on
                                               <var> with antecedent <aid> /
                                               weaken to cardinality; the
                                               stated <constraint> must match
    b m <var> ... 0 <cid> ... 0 <lit> ... 0    bound-conflict clause certified
                                               by MIS accounting (path vars,
                                               responsible constraint ids,
                                               clause literals)
    b l {<cid> <mult>}* 0 <lit> ... 0          bound-conflict clause certified
                                               by a non-negative integer linear
                                               combination of constraints
    c                                          contradiction: the database
                                               propagates to a violation at
                                               the root
    e optimal <cost> | e satisfiable <cost>    final claim (cost includes the
      | e unsatisfiable | e unknown            objective offset)

``<constraint>`` is ``<coef> <lit> ... >= <rhs>`` (normalized terms).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..pb.constraints import Constraint

#: Header magic of version 1 of the format.
HEADER = "pbp repro 1"

#: Step kind tags (mirroring the grammar keywords).
ASSUMPTION = "a"
RUP = "u"
SOLUTION = "o"
CARD_CUT = "t"
RESOLVE = "p"
BOUND_MIS = "b m"
BOUND_LIN = "b l"
CONTRADICTION = "c"
END = "e"

#: ``e`` claims (``optimal``/``satisfiable`` carry a cost).
END_STATUSES = ("optimal", "satisfiable", "unsatisfiable", "unknown")


class ProofSyntaxError(ValueError):
    """A proof line that does not parse; carries the 1-based line number."""

    def __init__(self, line: int, message: str):
        super().__init__("line %d: %s" % (line, message))
        self.line = line


class Step:
    """One parsed proof step (a tagged union over the grammar above)."""

    __slots__ = (
        "kind",
        "line",
        "literals",
        "variables",
        "ids",
        "multipliers",
        "base",
        "ops",
        "constraint",
        "status",
        "cost",
    )

    def __init__(
        self,
        kind: str,
        line: int = 0,
        literals: Sequence[int] = (),
        variables: Sequence[int] = (),
        ids: Sequence[int] = (),
        multipliers: Sequence[int] = (),
        base: int = 0,
        ops: Sequence[Tuple] = (),
        constraint: Optional[Constraint] = None,
        status: str = "",
        cost: Optional[int] = None,
    ):
        self.kind = kind
        #: 1-based source line (0 for steps built programmatically).
        self.line = line
        self.literals = tuple(literals)
        self.variables = tuple(variables)
        self.ids = tuple(ids)
        self.multipliers = tuple(multipliers)
        self.base = base
        #: Resolution ops: ``("r", var, antecedent_id)`` or ``("w",)``.
        self.ops = tuple(ops)
        self.constraint = constraint
        self.status = status
        self.cost = cost

    def __repr__(self) -> str:
        return "Step(%r, line=%d)" % (self.kind, self.line)


# ----------------------------------------------------------------------
# Serialization (logger side)
# ----------------------------------------------------------------------
def format_constraint(constraint: Constraint) -> str:
    """``<coef> <lit> ... >= <rhs>`` for an explicit constraint."""
    parts: List[str] = []
    for coef, lit in constraint.terms:
        parts.append(str(coef))
        parts.append(str(lit))
    parts.append(">=")
    parts.append(str(constraint.rhs))
    return " ".join(parts)


def format_step(step: Step) -> str:
    """Render one step back into its grammar line."""
    if step.kind == ASSUMPTION:
        return "a %d" % step.literals[0]
    if step.kind == RUP:
        return "u " + _ints(step.literals)
    if step.kind == SOLUTION:
        return "o " + _ints(step.literals)
    if step.kind == CARD_CUT:
        return "t %d" % step.ids[0]
    if step.kind == RESOLVE:
        parts = ["p", str(step.base)]
        for op in step.ops:
            if op[0] == "r":
                parts.extend(("r", str(op[1]), str(op[2])))
            else:
                parts.append("w")
        parts.append("0")
        parts.append(format_constraint(step.constraint))
        return " ".join(parts)
    if step.kind == BOUND_MIS:
        return "b m %s%s%s" % (
            _ints(step.variables),
            " " + _ints(step.ids),
            " " + _ints(step.literals),
        )
    if step.kind == BOUND_LIN:
        parts = ["b", "l"]
        for cid, mult in zip(step.ids, step.multipliers):
            parts.extend((str(cid), str(mult)))
        parts.append("0")
        parts.append(_ints(step.literals))
        return " ".join(parts)
    if step.kind == CONTRADICTION:
        return "c"
    if step.kind == END:
        if step.status in ("optimal", "satisfiable"):
            return "e %s %d" % (step.status, step.cost)
        return "e %s" % step.status
    raise ValueError("unknown step kind %r" % step.kind)


def _ints(values: Sequence[int]) -> str:
    """Space-joined integers with the grammar's ``0`` terminator."""
    if not values:
        return "0"
    return " ".join(str(v) for v in values) + " 0"


# ----------------------------------------------------------------------
# Parsing (checker side)
# ----------------------------------------------------------------------
def parse_proof(text: str) -> Tuple[int, List[Step]]:
    """Parse a whole proof; returns ``(num_inputs, steps)``.

    Raises :class:`ProofSyntaxError` on any malformed line, a missing or
    wrong header, or a missing ``f`` line.
    """
    header_seen = False
    num_inputs: Optional[int] = None
    steps: List[Step] = []
    for line_no, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("*"):
            continue
        if not header_seen:
            if line != HEADER:
                raise ProofSyntaxError(
                    line_no, "expected header %r, got %r" % (HEADER, line)
                )
            header_seen = True
            continue
        if num_inputs is None:
            tokens = line.split()
            if len(tokens) != 2 or tokens[0] != "f":
                raise ProofSyntaxError(line_no, "expected 'f <m>', got %r" % line)
            num_inputs = _int(tokens[1], line_no)
            if num_inputs < 0:
                raise ProofSyntaxError(line_no, "negative constraint count")
            continue
        steps.append(parse_step(line, line_no))
    if not header_seen:
        raise ProofSyntaxError(1, "empty proof (missing %r header)" % HEADER)
    if num_inputs is None:
        raise ProofSyntaxError(1, "missing 'f <m>' instance-binding line")
    return num_inputs, steps


def parse_step(line: str, line_no: int = 0) -> Step:
    """Parse one step line into a :class:`Step`."""
    tokens = line.split()
    kind = tokens[0]
    if kind == "a":
        if len(tokens) != 2:
            raise ProofSyntaxError(line_no, "'a' takes exactly one literal")
        lit = _int(tokens[1], line_no)
        if lit == 0:
            raise ProofSyntaxError(line_no, "0 is not a literal")
        return Step(ASSUMPTION, line_no, literals=(lit,))
    if kind in ("u", "o"):
        lits, rest = _int_list(tokens[1:], line_no)
        if rest:
            raise ProofSyntaxError(line_no, "trailing tokens after literal list")
        return Step(RUP if kind == "u" else SOLUTION, line_no, literals=lits)
    if kind == "t":
        if len(tokens) != 2:
            raise ProofSyntaxError(line_no, "'t' takes exactly one constraint id")
        return Step(CARD_CUT, line_no, ids=(_int(tokens[1], line_no),))
    if kind == "p":
        return _parse_resolve(tokens, line_no)
    if kind == "b":
        if len(tokens) < 2 or tokens[1] not in ("m", "l"):
            raise ProofSyntaxError(line_no, "'b' must be 'b m' or 'b l'")
        if tokens[1] == "m":
            return _parse_bound_mis(tokens[2:], line_no)
        return _parse_bound_lin(tokens[2:], line_no)
    if kind == "c":
        if len(tokens) != 1:
            raise ProofSyntaxError(line_no, "'c' takes no arguments")
        return Step(CONTRADICTION, line_no)
    if kind == "e":
        return _parse_end(tokens, line_no)
    raise ProofSyntaxError(line_no, "unknown step kind %r" % kind)


def _parse_resolve(tokens: List[str], line_no: int) -> Step:
    ops: List[Tuple] = []
    if len(tokens) < 2:
        raise ProofSyntaxError(line_no, "'p' needs a base constraint id")
    base = _int(tokens[1], line_no)
    i = 2
    while i < len(tokens):
        token = tokens[i]
        if token == "0":
            i += 1
            break
        if token == "r":
            if i + 2 >= len(tokens):
                raise ProofSyntaxError(line_no, "'r' needs <var> <antecedent-id>")
            var = _int(tokens[i + 1], line_no)
            aid = _int(tokens[i + 2], line_no)
            if var <= 0:
                raise ProofSyntaxError(line_no, "'r' variable must be positive")
            ops.append(("r", var, aid))
            i += 3
        elif token == "w":
            ops.append(("w",))
            i += 1
        else:
            raise ProofSyntaxError(line_no, "expected 'r'/'w'/'0', got %r" % token)
    else:
        raise ProofSyntaxError(line_no, "'p' op list not 0-terminated")
    constraint, rest = _parse_constraint(tokens[i:], line_no)
    if rest:
        raise ProofSyntaxError(line_no, "trailing tokens after constraint")
    return Step(RESOLVE, line_no, base=base, ops=ops, constraint=constraint)


def _parse_bound_mis(tokens: List[str], line_no: int) -> Step:
    variables, rest = _int_list(tokens, line_no)
    ids, rest = _int_list(rest, line_no)
    literals, rest = _int_list(rest, line_no)
    if rest:
        raise ProofSyntaxError(line_no, "trailing tokens after 'b m' lists")
    if any(v <= 0 for v in variables):
        raise ProofSyntaxError(line_no, "'b m' path entries must be variables")
    return Step(BOUND_MIS, line_no, variables=variables, ids=ids, literals=literals)


def _parse_bound_lin(tokens: List[str], line_no: int) -> Step:
    ids: List[int] = []
    multipliers: List[int] = []
    i = 0
    while i < len(tokens):
        if tokens[i] == "0":
            i += 1
            break
        if i + 1 >= len(tokens):
            raise ProofSyntaxError(line_no, "'b l' pairs must be <cid> <mult>")
        ids.append(_int(tokens[i], line_no))
        multipliers.append(_int(tokens[i + 1], line_no))
        i += 2
    else:
        raise ProofSyntaxError(line_no, "'b l' pair list not 0-terminated")
    literals, rest = _int_list(tokens[i:], line_no)
    if rest:
        raise ProofSyntaxError(line_no, "trailing tokens after 'b l' literals")
    return Step(BOUND_LIN, line_no, ids=ids, multipliers=multipliers, literals=literals)


def _parse_end(tokens: List[str], line_no: int) -> Step:
    if len(tokens) < 2 or tokens[1] not in END_STATUSES:
        raise ProofSyntaxError(
            line_no, "'e' status must be one of %s" % (END_STATUSES,)
        )
    status = tokens[1]
    cost: Optional[int] = None
    if status in ("optimal", "satisfiable"):
        if len(tokens) != 3:
            raise ProofSyntaxError(line_no, "'e %s' needs a cost" % status)
        cost = _int(tokens[2], line_no)
    elif len(tokens) != 2:
        raise ProofSyntaxError(line_no, "'e %s' takes no cost" % status)
    return Step(END, line_no, status=status, cost=cost)


def _parse_constraint(tokens: List[str], line_no: int) -> Tuple[Constraint, List[str]]:
    """Parse ``<coef> <lit> ... >= <rhs>`` from the token stream."""
    terms: List[Tuple[int, int]] = []
    i = 0
    while i < len(tokens) and tokens[i] != ">=":
        if i + 1 >= len(tokens):
            raise ProofSyntaxError(line_no, "dangling coefficient in constraint")
        coef = _int(tokens[i], line_no)
        lit = _int(tokens[i + 1], line_no)
        if coef <= 0 or lit == 0:
            raise ProofSyntaxError(
                line_no, "constraint terms need positive coefficients and literals"
            )
        terms.append((coef, lit))
        i += 2
    if i >= len(tokens):
        raise ProofSyntaxError(line_no, "constraint missing '>=' relation")
    if i + 1 >= len(tokens):
        raise ProofSyntaxError(line_no, "constraint missing right-hand side")
    rhs = _int(tokens[i + 1], line_no)
    if rhs < 0:
        raise ProofSyntaxError(line_no, "constraint rhs must be non-negative")
    return Constraint(tuple(terms), rhs), tokens[i + 2 :]


def _int_list(tokens: List[str], line_no: int) -> Tuple[List[int], List[str]]:
    """Read integers up to (and consuming) the ``0`` terminator."""
    values: List[int] = []
    for i, token in enumerate(tokens):
        value = _int(token, line_no)
        if value == 0:
            return values, tokens[i + 1 :]
        values.append(value)
    raise ProofSyntaxError(line_no, "integer list not 0-terminated")


def _int(token: str, line_no: int) -> int:
    try:
        return int(token)
    except ValueError:
        raise ProofSyntaxError(line_no, "expected an integer, got %r" % token)
