"""Exact-arithmetic derivation rules shared by logger and checker.

Everything here operates on :class:`repro.pb.constraints.Constraint`
objects with integer (or :class:`fractions.Fraction`) arithmetic — no
floats, no solver state.  The :class:`~repro.certify.logger.ProofLogger`
uses these functions to *self-check* each bound certificate before
emitting it (the solver declines a prune whose certificate fails, which
is sound — it merely searches a little longer), and the
:class:`~repro.certify.checker.ProofChecker` uses the same functions as
the ground truth when replaying a log.  The checker therefore never has
to trust the solver's floating-point bound computations: its `ceil`
arithmetic is exact by construction.

The module deliberately re-implements cutting-plane resolution and
cardinality reduction instead of importing
:mod:`repro.engine.pb_resolution`: the checker's trust base must exclude
the engine.  The logger replays each resolvent through *these* replicas
and refuses to log (and the solver refuses to learn) on any divergence,
so the two implementations can never silently disagree inside a proof.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..pb.constraints import Constraint


# ----------------------------------------------------------------------
# Linear combination (cutting-planes addition) and the implication test
# ----------------------------------------------------------------------
def combine(parts: Sequence[Tuple[Constraint, int]]) -> Constraint:
    """Non-negative integer combination ``sum_i mult_i * C_i``.

    Each part is ``(constraint, multiplier)`` with ``multiplier >= 1``
    (zero multipliers may simply be omitted).  The result is normalized
    — opposite literals cancel into the rhs and coefficients saturate —
    both of which are sound strengthenings over 0/1 assignments, so the
    result is implied by the parts.
    """
    terms: List[Tuple[int, int]] = []
    rhs = 0
    for constraint, mult in parts:
        if mult <= 0:
            raise ValueError("combination multipliers must be positive")
        terms.extend((mult * coef, lit) for coef, lit in constraint.terms)
        rhs += mult * constraint.rhs
    return Constraint.greater_equal(terms, rhs)


def clause_cut_off(combined: Constraint, clause: Iterable[int]) -> bool:
    """Whether falsifying every literal of ``clause`` violates ``combined``.

    True means ``combined`` implies the clause: any assignment with all
    clause literals false leaves ``combined`` a supply strictly below its
    rhs (even granting every *other* literal its coefficient), which is
    impossible for satisfying assignments.
    """
    clause_set = set(clause)
    supply = sum(
        coef for coef, lit in combined.terms if lit not in clause_set
    )
    return supply < combined.rhs


def check_linear_bound(
    clause: Sequence[int], parts: Sequence[Tuple[Constraint, int]]
) -> bool:
    """The ``b l`` rule: the combination must cut off ``~clause``.

    ``parts`` typically pairs the current improvement axiom
    (``sum c_j x_j <= upper - 1``) with LP-dual or Lagrangian multipliers
    rationalized to integers; the test is sound for *any* non-negative
    multipliers over implied constraints, so the checker need not know
    where they came from.
    """
    if not parts:
        return False
    try:
        combined = combine(parts)
    except ValueError:
        return False
    return clause_cut_off(combined, clause)


# ----------------------------------------------------------------------
# MIS bound certificates (paper Section 3.1 / 4, exact rational replay)
# ----------------------------------------------------------------------
def ceil_fraction(value: Fraction) -> int:
    """Exact ceiling of a rational (no float round-off)."""
    return -((-value.numerator) // value.denominator)


def min_cost_to_satisfy(
    constraint: Constraint,
    clause_set: Set[int],
    costs: Mapping[int, int],
    path_vars: Set[int],
) -> Optional[Fraction]:
    """Fractional-knapsack minimum cost of satisfying ``constraint``
    using only literals outside ``clause_set``.

    Literals in the clause are unavailable (the certificate describes
    assignments falsifying the whole clause); every other literal may be
    set true, charging ``costs[var]`` for a positive literal of a costed
    variable not already paid for on the path, and nothing otherwise.
    The fractional relaxation never overestimates the true 0/1 minimum,
    which keeps the resulting lower bound sound.  Returns None when even
    all available literals cannot reach the rhs (the constraint is
    unsatisfiable under ``~clause``: an infinite bound).
    """
    available: List[Tuple[Fraction, int]] = []  # (unit cost, coefficient)
    supply = 0
    for coef, lit in constraint.terms:
        if lit in clause_set:
            continue
        supply += coef
        if lit > 0 and lit not in path_vars:
            charge = costs.get(lit, 0)
        else:
            charge = 0
        available.append((Fraction(charge, coef), coef))
    if supply < constraint.rhs:
        return None
    available.sort(key=lambda item: item[0])
    remaining = constraint.rhs
    total = Fraction(0)
    for unit_cost, coef in available:
        if remaining <= 0:
            break
        take = coef if coef <= remaining else remaining
        total += unit_cost * take
        remaining -= take
    return total


def charged_variables(
    constraint: Constraint,
    clause_set: Set[int],
    costs: Mapping[int, int],
    path_vars: Set[int],
) -> Set[int]:
    """Variables whose cost :func:`min_cost_to_satisfy` may charge."""
    charged: Set[int] = set()
    for _, lit in constraint.terms:
        if lit in clause_set or lit < 0 or lit in path_vars:
            continue
        if costs.get(lit, 0) > 0:
            charged.add(lit)
    return charged


def check_mis_bound(
    clause: Sequence[int],
    path_vars: Sequence[int],
    responsible: Sequence[Constraint],
    costs: Mapping[int, int],
    upper: int,
) -> bool:
    """The ``b m`` rule: exact replay of the MIS lower-bound argument.

    Certifies the clause as implied under ``cost <= upper - 1``: any
    assignment falsifying every clause literal pays the path (each listed
    path variable is costed and pinned to 1 because its negation is in
    the clause) plus, for each responsible constraint, an independent
    minimum satisfaction cost — independence holds because the chargeable
    variable sets are pairwise disjoint and disjoint from the path.  When
    ``path + ceil(sum of minima) >= upper`` no such assignment can beat
    the incumbent, so every improving solution satisfies the clause.
    """
    clause_set = set(clause)
    path_set = set(path_vars)
    if len(path_set) != len(tuple(path_vars)):
        return False
    path = 0
    for var in path_set:
        cost = costs.get(var, 0)
        if cost <= 0 or -var not in clause_set:
            return False
        path += cost
    total = Fraction(0)
    seen_charged: Set[int] = set()
    for constraint in responsible:
        minimum = min_cost_to_satisfy(constraint, clause_set, costs, path_set)
        if minimum is None:
            return True  # unsatisfiable under ~clause: bound is infinite
        if minimum <= 0:
            continue
        charged = charged_variables(constraint, clause_set, costs, path_set)
        if charged & seen_charged:
            return False  # double-charged variable: accounting unsound
        seen_charged |= charged
        total += minimum
    return path + ceil_fraction(total) >= upper


# ----------------------------------------------------------------------
# Cutting-plane resolution replay (checker-side replica)
# ----------------------------------------------------------------------
def cut_resolve(
    first: Constraint, second: Constraint, var: int
) -> Optional[Constraint]:
    """Cancel ``var`` between two constraints (the cutting-plane rule).

    The gcd multipliers make the opposite-polarity coefficients equal;
    normalization folds the cancellation into the rhs.  Returns None
    when the polarities do not oppose (such a step proves nothing).
    """
    a_pos = first.coefficient(var)
    a_neg = first.coefficient(-var)
    b_pos = second.coefficient(var)
    b_neg = second.coefficient(-var)
    if a_pos and b_neg:
        a, b = a_pos, b_neg
    elif a_neg and b_pos:
        a, b = a_neg, b_pos
    else:
        return None
    g = math.gcd(a, b)
    return combine([(first, b // g), (second, a // g)])


def weaken_to_cardinality(constraint: Constraint) -> Optional[Constraint]:
    """Weaken a PB constraint to the cardinality constraint it implies.

    ``sum a_j l_j >= b`` forces at least ``r`` literals true, where ``r``
    counts greedily over descending coefficients; "at least r of the
    l_j" is therefore implied.  Returns None when vacuous.
    """
    if constraint.is_cardinality or constraint.rhs == 0:
        return None
    required = constraint.minimum_true_literals()
    if not isinstance(required, int) or required <= 0:
        return None
    reduced = Constraint.at_least(list(constraint.literals), required)
    if reduced.is_tautology:
        return None
    return reduced


def replay_resolution(
    base: Constraint,
    ops: Sequence[Tuple],
    constraint_of: Mapping[int, Constraint],
) -> Optional[Constraint]:
    """Replay a ``p`` step's op list; None when any op is unsound.

    ``ops`` entries are ``("r", var, antecedent_id)`` or ``("w",)``;
    ``constraint_of`` resolves antecedent ids.  Every op produces an
    implied constraint by construction, so a successful replay yields an
    implied result regardless of where the ops came from — the caller
    additionally compares the result against the step's stated
    constraint so later references mean what the solver derived.
    """
    resolvent = base
    for op in ops:
        if op[0] == "r":
            _, var, aid = op
            antecedent = constraint_of.get(aid)
            if antecedent is None:
                return None
            combined = cut_resolve(resolvent, antecedent, var)
        else:
            combined = weaken_to_cardinality(resolvent)
        if combined is None or combined.is_tautology:
            return None
        resolvent = combined
    return resolvent


# ----------------------------------------------------------------------
# Section 5 cuts recomputed from the certified incumbent
# ----------------------------------------------------------------------
def improvement_axiom(costs: Mapping[int, int], upper: int) -> Constraint:
    """The ``o`` step's derived axiom: ``sum c_j x_j <= upper - 1``.

    ``upper`` is on the path-cost scale (offset excluded).  For a
    constant objective this is the tautology ``0 >= 0`` — satisfaction
    runs derive nothing from a solution beyond its feasibility.
    """
    if not costs:
        return Constraint((), 0)
    terms = [(cost, var) for var, cost in costs.items()]
    return Constraint.less_equal(terms, upper - 1)


def cardinality_cut(
    source: Constraint, costs: Mapping[int, int], upper: int
) -> Optional[Constraint]:
    """The ``t`` step: recompute the eq. 13 cut from its source.

    ``source`` must be a cardinality constraint over positive literals;
    satisfying it costs at least ``V`` (the sum of its ``threshold``
    smallest member costs), so under ``cost <= upper - 1`` the variables
    outside it can spend at most ``upper - 1 - V``.  A negative budget
    yields an unsatisfiable constraint — the incumbent is optimal.
    Returns None when the cut is vacuous (V = 0 or nothing outside).
    """
    if not costs or not source.is_cardinality:
        return None
    members = source.literals
    if any(lit < 0 for lit in members):
        return None
    threshold = source.cardinality_threshold
    if threshold < 1:
        return None
    member_costs = sorted(costs.get(var, 0) for var in members)
    value_v = sum(member_costs[:threshold])
    if value_v <= 0:
        return None
    budget = upper - 1 - value_v
    member_set = set(members)
    outside = [
        (cost, var) for var, cost in costs.items() if var not in member_set
    ]
    if budget < 0:
        # Even the members alone exceed the budget: unsatisfiable cut
        # (normalizes to "0 >= positive" when ``outside`` is empty).
        return Constraint.less_equal(outside, budget)
    if not outside or sum(cost for cost, _ in outside) <= budget:
        return None  # tautology under saturation
    return Constraint.less_equal(outside, budget)
