"""Solver-side proof logger with self-checking emission gates.

The :class:`ProofLogger` is handed to the solver through
``SolverOptions(proof=...)``.  It maintains the same constraint-id space
the checker will reconstruct (inputs ``1..m`` in parse order, then one id
per derivation step) and serializes steps via
:mod:`repro.certify.format`.

Every step whose soundness depends on solver-computed data — bound
certificates, cutting-plane resolvents, Section-5 cuts — is **replayed
through the exact arithmetic of** :mod:`repro.certify.rules` *before*
being written.  The ``log_*`` method returns False instead of emitting
when the replay fails, and the solver reacts by declining the prune (or
dropping the learned constraint), which costs search effort but never
soundness: a proof that reaches the disk always verifies, and a solver
bug surfaces as an unexplained certification failure rather than a bogus
certificate.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..pb.constraints import Constraint
from ..pb.instance import PBInstance
from . import format as fmt
from . import rules

#: ``limit_denominator`` ceilings tried when rationalizing LP/Lagrangian
#: multipliers.  Coarse first: small multipliers keep the emitted
#: combination short and the checker's arithmetic cheap.
_DENOMINATOR_LADDER = (1, 10, 100, 10 ** 4, 10 ** 6)


class ProofLogger:
    """Records a checkable derivation log during one solver run."""

    def __init__(self, sink: Union[str, "object"]):
        if hasattr(sink, "write"):
            self._file = sink
            self._owns_file = False
        else:
            self._file = open(str(sink), "w")
            self._owns_file = True
        self._started = False
        self._closed = False
        self._ids: Dict[Constraint, int] = {}
        self._next_id = 1
        self._costs: Dict[int, int] = {}
        self._upper: Optional[int] = None  # path-cost scale
        #: Derivation steps written so far (for stats/tests).
        self.steps_logged = 0

    # ------------------------------------------------------------------
    def start(self, instance: PBInstance) -> None:
        """Write the header and claim ids ``1..m`` for the inputs."""
        if self._started:
            raise RuntimeError("ProofLogger cannot be reused across runs")
        self._started = True
        self._costs = dict(instance.objective.costs)
        constraints = instance.constraints
        self._write(fmt.HEADER)
        self._write("f %d" % len(constraints))
        for constraint in constraints:
            self._ids.setdefault(constraint, self._next_id)
            self._next_id += 1

    def id_of(self, constraint: Constraint) -> Optional[int]:
        """The id later steps may use to reference ``constraint``."""
        return self._ids.get(constraint)

    @property
    def upper(self) -> Optional[int]:
        """Best verified incumbent cost so far (path scale)."""
        return self._upper

    # ------------------------------------------------------------------
    # Axioms and RUP steps (no self-check: RUP holds by construction for
    # first-UIP clauses and propagation-derived units/implications).
    # ------------------------------------------------------------------
    def log_assumption(self, literal: int) -> None:
        """An externally imposed unit; makes the final claim conditional."""
        step = fmt.Step(fmt.ASSUMPTION, literals=(literal,))
        self._emit(step, Constraint.clause((literal,)))

    def log_rup(self, literals: Sequence[int]) -> None:
        """A clause the checker can re-derive by unit propagation."""
        step = fmt.Step(fmt.RUP, literals=tuple(literals))
        self._emit(step, Constraint.clause(literals))

    def log_solution(self, literals: Sequence[int]) -> None:
        """A complete model; derives the improvement axiom at its cost."""
        cost = sum(self._costs.get(lit, 0) for lit in literals if lit > 0)
        if self._upper is None or cost < self._upper:
            self._upper = cost
        step = fmt.Step(fmt.SOLUTION, literals=tuple(literals))
        self._emit(step, rules.improvement_axiom(self._costs, self._upper))

    # ------------------------------------------------------------------
    # Self-checked derivations.
    # ------------------------------------------------------------------
    def log_cardinality_cut(self, source: Constraint, cut: Constraint) -> bool:
        """A Section-5 cardinality-derived cut (eq. 13) from ``source``.

        Recomputes the cut from the certified incumbent; refuses when the
        recomputation disagrees with what the solver wants to add.
        """
        source_id = self._ids.get(source)
        if source_id is None or self._upper is None:
            return False
        replayed = rules.cardinality_cut(source, self._costs, self._upper)
        if replayed is None or replayed != cut:
            return False
        self._emit(fmt.Step(fmt.CARD_CUT, ids=(source_id,)), cut)
        return True

    def log_proven_cut(self, source: Constraint) -> bool:
        """An eq. 13 cut whose rhs went negative: the members of
        ``source`` alone must spend more than the incumbent allows, so
        the derived constraint is unsatisfiable and the incumbent is
        optimal.  The checker's database propagates it to a root
        contradiction."""
        source_id = self._ids.get(source)
        if source_id is None or self._upper is None:
            return False
        replayed = rules.cardinality_cut(source, self._costs, self._upper)
        if replayed is None or not replayed.is_unsatisfiable:
            return False
        self._emit(fmt.Step(fmt.CARD_CUT, ids=(source_id,)), replayed)
        return True

    def log_resolvent(
        self,
        base: Constraint,
        trace: Sequence[Tuple],
        resolvent: Constraint,
    ) -> bool:
        """A cutting-plane resolution chain ending in ``resolvent``.

        ``trace`` entries are ``("r", var, antecedent_constraint)`` or
        ``("w",)`` as recorded by the engine.  The chain is replayed with
        the checker's own rule replicas; any divergence (or an antecedent
        the proof cannot reference) refuses the step.
        """
        base_id = self._ids.get(base)
        if base_id is None:
            return False
        ops: List[Tuple] = []
        by_id: Dict[int, Constraint] = {base_id: base}
        for op in trace:
            if op[0] == "r":
                _, var, antecedent = op
                aid = self._ids.get(antecedent)
                if aid is None:
                    return False
                by_id[aid] = antecedent
                ops.append(("r", var, aid))
            else:
                ops.append(("w",))
        replayed = rules.replay_resolution(base, ops, by_id)
        if replayed is None or replayed != resolvent:
            return False
        step = fmt.Step(
            fmt.RESOLVE, base=base_id, ops=ops, constraint=resolvent
        )
        self._emit(step, resolvent)
        return True

    def log_bound_mis(
        self,
        literals: Sequence[int],
        path_vars: Sequence[int],
        responsible: Sequence[Constraint],
    ) -> bool:
        """A bound-conflict clause certified by MIS cost accounting."""
        if self._upper is None:
            return False
        ids: List[int] = []
        for constraint in responsible:
            cid = self._ids.get(constraint)
            if cid is None:
                return False
            ids.append(cid)
        if not rules.check_mis_bound(
            literals, path_vars, responsible, self._costs, self._upper
        ):
            return False
        step = fmt.Step(
            fmt.BOUND_MIS,
            variables=tuple(path_vars),
            ids=tuple(ids),
            literals=tuple(literals),
        )
        self._emit(step, Constraint.clause(literals))
        return True

    def log_bound_linear(
        self,
        literals: Sequence[int],
        weights: Sequence[Tuple[Constraint, Union[int, float, Fraction]]],
    ) -> bool:
        """A bound-conflict clause certified by a dual linear combination.

        ``weights`` pairs constraints with non-negative (possibly
        floating-point) multipliers, typically LP row duals or Lagrangian
        weights; the current improvement axiom is appended automatically.
        The multipliers are rationalized through a coarse-to-fine
        denominator ladder until some integer scaling passes the exact
        implication check; returns False when none does.
        """
        if self._upper is None:
            return False
        weighted: List[Tuple[Constraint, int, Union[int, float, Fraction]]] = []
        for constraint, weight in weights:
            if weight <= 0:
                continue
            cid = self._ids.get(constraint)
            if cid is None:
                return False
            weighted.append((constraint, cid, weight))
        axiom = rules.improvement_axiom(self._costs, self._upper)
        axiom_id = self._ids.get(axiom)
        if axiom_id is None:
            return False
        for limit in _DENOMINATOR_LADDER:
            fractions = [
                Fraction(weight).limit_denominator(limit)
                for _, _, weight in weighted
            ]
            scale = 1
            for fraction in fractions:
                scale = scale * fraction.denominator // gcd(
                    scale, fraction.denominator
                )
            parts: List[Tuple[Constraint, int]] = []
            ids: List[int] = []
            multipliers: List[int] = []
            for (constraint, cid, _), fraction in zip(weighted, fractions):
                multiplier = int(fraction * scale)
                if multiplier <= 0:
                    continue
                parts.append((constraint, multiplier))
                ids.append(cid)
                multipliers.append(multiplier)
            parts.append((axiom, scale))
            ids.append(axiom_id)
            multipliers.append(scale)
            if rules.check_linear_bound(literals, parts):
                step = fmt.Step(
                    fmt.BOUND_LIN,
                    ids=tuple(ids),
                    multipliers=tuple(multipliers),
                    literals=tuple(literals),
                )
                self._emit(step, Constraint.clause(literals))
                return True
        return False

    def log_infeasibility(
        self, literals: Sequence[int], witness: Constraint
    ) -> bool:
        """A clause implied by a single constraint violated under its
        negation (the infeasible-relaxation case: multiplier 1)."""
        cid = self._ids.get(witness)
        if cid is None:
            return False
        if not rules.check_linear_bound(literals, [(witness, 1)]):
            return False
        step = fmt.Step(
            fmt.BOUND_LIN,
            ids=(cid,),
            multipliers=(1,),
            literals=tuple(literals),
        )
        self._emit(step, Constraint.clause(literals))
        return True

    # ------------------------------------------------------------------
    # Terminal steps.
    # ------------------------------------------------------------------
    def log_contradiction(self) -> None:
        """The database now propagates to a violation at the root."""
        self._write(fmt.format_step(fmt.Step(fmt.CONTRADICTION)))
        self.steps_logged += 1

    def log_end(self, status: str, cost: Optional[int] = None) -> None:
        """The run's final claim (``cost`` includes the objective offset)."""
        self._write(fmt.format_step(fmt.Step(fmt.END, status=status, cost=cost)))
        self.steps_logged += 1

    def comment(self, text: str) -> None:
        """A ``*`` comment line (ignored by the checker)."""
        self._write("* " + text)

    def close(self) -> None:
        """Flush (and close, when the logger opened the sink itself)."""
        if self._closed:
            return
        self._closed = True
        if self._owns_file:
            self._file.close()
        else:
            try:
                self._file.flush()
            except (AttributeError, ValueError):
                pass

    # ------------------------------------------------------------------
    def _emit(self, step: fmt.Step, derived: Constraint) -> None:
        """Write a derivation step and bind its constraint to the next id."""
        self._write(fmt.format_step(step))
        self._ids.setdefault(derived, self._next_id)
        self._next_id += 1
        self.steps_logged += 1

    def _write(self, line: str) -> None:
        if not self._started and not line.startswith("*"):
            raise RuntimeError("ProofLogger.start() must be called first")
        self._file.write(line + "\n")
