"""Independent proof checker (trust base: ``repro.pb`` + this file).

Replays a ``repro`` cutting-planes proof (see :mod:`repro.certify.format`)
against a parsed OPB instance.  Each step must be a sound derivation
from the constraint database built so far — RUP clauses are re-propagated
with an internal slack-counting engine, resolution replays and bound
certificates are recomputed with the exact arithmetic of
:mod:`repro.certify.rules` — and the final claim is checked against the
verified incumbent and contradiction.  Any mismatch raises
:class:`ProofError` carrying the 1-based step number and source line.

Deliberately imports **nothing** from ``repro.core`` or ``repro.engine``:
a bug in the solver or its propagation backends cannot leak into the
judgement of its own proofs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..pb.constraints import Constraint
from ..pb.instance import PBInstance
from . import format as fmt
from . import rules


class ProofError(Exception):
    """A proof step failed verification (or the log is malformed)."""

    def __init__(self, step: int, line: int, message: str):
        location = "proof step %d" % step if step else "proof header"
        if line:
            location += " (line %d)" % line
        super().__init__("%s: %s" % (location, message))
        #: 1-based index of the offending derivation step (0 = header).
        self.step = step
        #: 1-based source line in the proof file (0 when unknown).
        self.line = line


class CheckOutcome:
    """A successfully verified proof's summary."""

    __slots__ = ("status", "cost", "conditional", "steps", "model")

    def __init__(
        self,
        status: str,
        cost: Optional[int],
        conditional: bool,
        steps: int,
        model: Optional[Dict[int, int]],
    ):
        #: The certified claim: ``optimal``/``satisfiable``/
        #: ``unsatisfiable``/``unknown``.
        self.status = status
        #: Certified cost (objective offset included) when applicable.
        self.cost = cost
        #: True when the proof contains assumption axioms: the claim
        #: holds *under those assumptions*, not unconditionally.
        self.conditional = conditional
        #: Number of derivation steps verified.
        self.steps = steps
        #: The verified incumbent model (``optimal``/``satisfiable``).
        self.model = model

    @property
    def certified(self) -> bool:
        """Whether the proof certifies an actual claim (not ``unknown``)."""
        return self.status != "unknown"

    def __repr__(self) -> str:
        return "CheckOutcome(%s, cost=%s, steps=%d%s)" % (
            self.status,
            self.cost,
            self.steps,
            ", conditional" if self.conditional else "",
        )


class _Database:
    """Slack-counting constraint database with persistent root state.

    Keeps, for every constraint, its slack under the root-implied
    assignment (units, and their propagation closure, discovered as
    constraints are added).  A RUP query copies that state, asserts the
    clause's negation and propagates to a fixed point with the textbook
    rule: a literal whose coefficient exceeds its constraint's slack is
    implied true; negative slack is a conflict.
    """

    def __init__(self):
        self._constraints: List[Constraint] = []
        #: literal -> [(constraint index, coefficient)] occurrences.
        self._occ: Dict[int, List[Tuple[int, int]]] = {}
        self._root_slack: List[int] = []
        self._root_value: Dict[int, int] = {}
        #: The root state itself derives a violated constraint.
        self.root_conflict = False

    def add(self, constraint: Constraint) -> None:
        """Append a constraint and fold its units into the root state."""
        index = len(self._constraints)
        self._constraints.append(constraint)
        slack = -constraint.rhs
        for coef, lit in constraint.terms:
            self._occ.setdefault(lit, []).append((index, coef))
            value = self._root_value.get(lit if lit > 0 else -lit)
            if value is None or (value == 1) == (lit > 0):
                slack += coef
        self._root_slack.append(slack)
        if self.root_conflict:
            return
        if slack < 0:
            self.root_conflict = True
            return
        implied = [
            lit
            for coef, lit in constraint.terms
            if coef > slack
            and self._root_value.get(lit if lit > 0 else -lit) is None
        ]
        if implied and self._propagate(
            self._root_value, self._root_slack, implied
        ):
            self.root_conflict = True

    def rup(self, literals: Sequence[int]) -> bool:
        """Whether the clause over ``literals`` is RUP for the database."""
        if self.root_conflict:
            return True
        values = dict(self._root_value)
        slack = list(self._root_slack)
        return self._propagate(values, slack, [-lit for lit in literals])

    def _propagate(
        self,
        values: Dict[int, int],
        slack: List[int],
        queue: List[int],
    ) -> bool:
        """Drive ``queue`` of to-be-true literals to a fixed point.

        Mutates ``values``/``slack`` in place; returns True on conflict
        (an opposite assignment or a constraint driven below slack 0).
        """
        head = 0
        while head < len(queue):
            lit = queue[head]
            head += 1
            var = lit if lit > 0 else -lit
            value = 1 if lit > 0 else 0
            previous = values.get(var)
            if previous is not None:
                if previous != value:
                    return True
                continue
            values[var] = value
            # The complement literal just became false: its occurrences
            # lose supply, which may violate or tighten them.
            for index, coef in self._occ.get(-lit, ()):
                remaining = slack[index] - coef
                slack[index] = remaining
                if remaining < 0:
                    return True
                for coef2, lit2 in self._constraints[index].terms:
                    if coef2 > remaining:
                        var2 = lit2 if lit2 > 0 else -lit2
                        if values.get(var2) is None:
                            queue.append(lit2)
        return False


class ProofChecker:
    """Replays a proof log against ``instance`` (and nothing else)."""

    def __init__(self, instance: PBInstance):
        self._instance = instance
        self._costs = instance.objective.costs
        self._offset = instance.objective.offset

    # ------------------------------------------------------------------
    def check_file(self, path: str) -> CheckOutcome:
        """Check a proof file from disk; see :meth:`check_text`."""
        with open(path, "r") as handle:
            return self.check_text(handle.read())

    def check_text(self, text: str) -> CheckOutcome:
        """Verify a whole proof; raises :class:`ProofError` on the first
        unsound, malformed or missing step."""
        try:
            num_inputs, steps = fmt.parse_proof(text)
        except fmt.ProofSyntaxError as exc:
            raise ProofError(0, exc.line, str(exc)) from exc
        constraints = self._instance.constraints
        if num_inputs != len(constraints):
            raise ProofError(
                0,
                0,
                "proof is for %d input constraints, instance has %d"
                % (num_inputs, len(constraints)),
            )
        database = _Database()
        by_id: Dict[int, Constraint] = {}
        for cid, constraint in enumerate(constraints, 1):
            by_id[cid] = constraint
            database.add(constraint)
        next_id = num_inputs + 1

        upper: Optional[int] = None  # path-cost scale
        best_model: Optional[Dict[int, int]] = None
        conditional = False
        contradiction = database.root_conflict
        ended: Optional[fmt.Step] = None

        for number, step in enumerate(steps, 1):
            if ended is not None:
                raise ProofError(
                    number, step.line, "step after the final 'e' claim"
                )
            derived: Optional[Constraint] = None
            if step.kind == fmt.ASSUMPTION:
                conditional = True
                derived = Constraint.clause(step.literals)
            elif step.kind == fmt.RUP:
                if not database.rup(step.literals):
                    raise ProofError(
                        number,
                        step.line,
                        "clause %s is not RUP for the database"
                        % (list(step.literals),),
                    )
                derived = Constraint.clause(step.literals)
            elif step.kind == fmt.SOLUTION:
                cost, model = self._check_solution(number, step)
                if upper is None or cost < upper:
                    upper = cost
                    best_model = model
                derived = rules.improvement_axiom(self._costs, upper)
            elif step.kind == fmt.CARD_CUT:
                derived = self._check_card_cut(number, step, by_id, upper)
            elif step.kind == fmt.RESOLVE:
                derived = self._check_resolve(number, step, by_id)
            elif step.kind == fmt.BOUND_MIS:
                self._check_bound_mis(number, step, by_id, upper)
                derived = Constraint.clause(step.literals)
            elif step.kind == fmt.BOUND_LIN:
                self._check_bound_lin(number, step, by_id)
                derived = Constraint.clause(step.literals)
            elif step.kind == fmt.CONTRADICTION:
                if not database.root_conflict:
                    raise ProofError(
                        number,
                        step.line,
                        "database does not propagate to a contradiction",
                    )
                contradiction = True
            elif step.kind == fmt.END:
                self._check_end(
                    number, step, upper, best_model, contradiction
                )
                ended = step
            if derived is not None:
                by_id[next_id] = derived
                next_id += 1
                database.add(derived)

        if ended is None:
            raise ProofError(
                len(steps) + 1, 0, "truncated proof: missing final 'e' claim"
            )
        cost = None
        if ended.status in ("optimal", "satisfiable"):
            cost = ended.cost
        return CheckOutcome(
            ended.status, cost, conditional, len(steps), best_model
        )

    # ------------------------------------------------------------------
    def _check_solution(
        self, number: int, step: fmt.Step
    ) -> Tuple[int, Dict[int, int]]:
        """Verify an ``o`` step's model; returns its path-scale cost."""
        model: Dict[int, int] = {}
        for lit in step.literals:
            var = lit if lit > 0 else -lit
            value = 1 if lit > 0 else 0
            if model.get(var, value) != value:
                raise ProofError(
                    number, step.line, "model assigns variable %d twice" % var
                )
            model[var] = value
        for constraint in self._instance.constraints:
            try:
                satisfied = constraint.is_satisfied_by(model)
            except ValueError as exc:
                raise ProofError(number, step.line, "incomplete model: %s" % exc)
            if not satisfied:
                raise ProofError(
                    number, step.line, "model violates %r" % (constraint,)
                )
        cost = 0
        for var, var_cost in self._costs.items():
            value = model.get(var)
            if value is None:
                raise ProofError(
                    number,
                    step.line,
                    "model leaves costed variable %d unassigned" % var,
                )
            cost += var_cost * value
        return cost, model

    def _check_card_cut(
        self,
        number: int,
        step: fmt.Step,
        by_id: Dict[int, Constraint],
        upper: Optional[int],
    ) -> Constraint:
        if upper is None:
            raise ProofError(
                number, step.line, "'t' cut before any verified solution"
            )
        source = by_id.get(step.ids[0])
        if source is None:
            raise ProofError(
                number, step.line, "unknown constraint id %d" % step.ids[0]
            )
        cut = rules.cardinality_cut(source, self._costs, upper)
        if cut is None:
            raise ProofError(
                number,
                step.line,
                "constraint %d yields no cardinality cut at upper=%d"
                % (step.ids[0], upper),
            )
        return cut

    def _check_resolve(
        self, number: int, step: fmt.Step, by_id: Dict[int, Constraint]
    ) -> Constraint:
        base = by_id.get(step.base)
        if base is None:
            raise ProofError(
                number, step.line, "unknown base constraint id %d" % step.base
            )
        result = rules.replay_resolution(base, step.ops, by_id)
        if result is None:
            raise ProofError(
                number, step.line, "resolution replay failed (unsound op)"
            )
        if result != step.constraint:
            raise ProofError(
                number,
                step.line,
                "replayed resolvent %r differs from stated %r"
                % (result, step.constraint),
            )
        return result

    def _check_bound_mis(
        self,
        number: int,
        step: fmt.Step,
        by_id: Dict[int, Constraint],
        upper: Optional[int],
    ) -> None:
        if upper is None:
            raise ProofError(
                number, step.line, "'b m' before any verified solution"
            )
        responsible = []
        for cid in step.ids:
            constraint = by_id.get(cid)
            if constraint is None:
                raise ProofError(
                    number, step.line, "unknown constraint id %d" % cid
                )
            responsible.append(constraint)
        if not rules.check_mis_bound(
            step.literals, step.variables, responsible, self._costs, upper
        ):
            raise ProofError(
                number,
                step.line,
                "MIS accounting does not justify the bound clause",
            )

    def _check_bound_lin(
        self, number: int, step: fmt.Step, by_id: Dict[int, Constraint]
    ) -> None:
        parts = []
        for cid, mult in zip(step.ids, step.multipliers):
            constraint = by_id.get(cid)
            if constraint is None:
                raise ProofError(
                    number, step.line, "unknown constraint id %d" % cid
                )
            if mult <= 0:
                raise ProofError(
                    number, step.line, "non-positive multiplier %d" % mult
                )
            parts.append((constraint, mult))
        if not rules.check_linear_bound(step.literals, parts):
            raise ProofError(
                number,
                step.line,
                "linear combination does not cut off the bound clause",
            )

    def _check_end(
        self,
        number: int,
        step: fmt.Step,
        upper: Optional[int],
        best_model: Optional[Dict[int, int]],
        contradiction: bool,
    ) -> None:
        status = step.status
        if status == "unknown":
            return
        if status == "unsatisfiable":
            if not contradiction:
                raise ProofError(
                    number,
                    step.line,
                    "unsatisfiability claimed without a contradiction step",
                )
            if best_model is not None:
                raise ProofError(
                    number,
                    step.line,
                    "unsatisfiability claimed but the proof verified a model",
                )
            return
        # optimal / satisfiable both need a verified incumbent of the
        # claimed cost.
        if best_model is None or upper is None:
            raise ProofError(
                number, step.line, "'%s' claimed without a verified model" % status
            )
        claimed = step.cost
        if claimed != upper + self._offset:
            raise ProofError(
                number,
                step.line,
                "claimed cost %d but the verified incumbent costs %d"
                % (claimed, upper + self._offset),
            )
        if status == "optimal" and not contradiction:
            raise ProofError(
                number,
                step.line,
                "optimality claimed without a contradiction under "
                "cost <= best - 1",
            )
