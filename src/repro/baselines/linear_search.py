"""PBS-style SAT-based linear search on the cost function (paper [2, 3]).

Barth's classic scheme, as used by PBS: solve the constraints as a pure
PB-SAT problem; each time a model of cost ``k`` is found, add the
constraint ``sum c_j x_j <= k - 1`` and *restart* the decision search
from scratch; when the instance becomes unsatisfiable the last model is
optimal.  No lower bounding is performed — the weakness the paper's
experiments expose on optimization-heavy instances.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..core.cuts import CutGenerator
from ..core.result import (
    OPTIMAL,
    SATISFIABLE,
    SolveResult,
    UNKNOWN,
    UNSATISFIABLE,
)
from ..core.stats import SolverStats
from ..obs.events import CutEvent, IncumbentEvent, ResultEvent, RunHeaderEvent
from ..obs.timers import NULL_TIMER, PhaseTimer
from ..obs.trace import NULL_TRACER
from ..pb.constraints import Constraint
from ..pb.instance import PBInstance
from .sat_search import STOPPED, UNSAT, DecisionSearch


class LinearSearchSolver:
    """SAT-based linear search (PBS-like comparator).

    Supports the same observability hooks as the bsolo solver
    (``tracer`` for JSONL event traces, ``profile`` for phase times) so
    cross-solver comparisons measure with one instrument.
    """

    name = "pbs-like"

    def __init__(self, instance: PBInstance, time_limit: Optional[float] = None,
                 max_conflicts: Optional[int] = None, tracer=None,
                 profile: bool = False):
        self._instance = instance
        self._time_limit = time_limit
        self._max_conflicts = max_conflicts
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._timer = PhaseTimer() if profile else NULL_TIMER
        self.stats = SolverStats()

    def solve(self) -> SolveResult:
        start = time.monotonic()
        deadline = start + self._time_limit if self._time_limit is not None else None
        instance = self._instance
        objective = instance.objective
        cut_generator = CutGenerator(instance, cardinality_cuts=False)
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(
                RunHeaderEvent(
                    solver=self.name,
                    instance=getattr(tracer, "instance_label", ""),
                    options={"strategy": "linear_search"},
                )
            )

        extra: List[Constraint] = []
        best_cost: Optional[int] = None
        best_assignment: Optional[Dict[int, int]] = None
        status = None
        while True:
            # PBS restarts the SAT engine for every new cost bound.
            search = DecisionSearch(
                instance.num_variables, tracer=tracer, timer=self._timer
            )
            search.add_constraints(instance.constraints)
            search.add_constraints(extra)
            outcome, model = search.solve(
                deadline=deadline, max_conflicts=self._max_conflicts
            )
            self.stats.decisions += search.decisions
            self.stats.logic_conflicts += search.conflicts
            self.stats.propagations += search.propagations
            if outcome == STOPPED:
                status = UNKNOWN
                break
            if outcome == UNSAT:
                if best_assignment is None:
                    status = UNSATISFIABLE
                else:
                    status = OPTIMAL
                break
            # a model: record, tighten, iterate
            cost = objective.path_cost(model)
            self.stats.solutions_found += 1
            best_cost = cost
            best_assignment = model
            if tracer.enabled:
                tracer.emit(
                    IncumbentEvent(
                        cost=cost + objective.offset,
                        decisions=self.stats.decisions,
                        conflicts=self.stats.conflicts,
                    )
                )
            if objective.is_constant:
                status = SATISFIABLE
                break
            cut = cut_generator.knapsack_cut(cost)
            if cut is None:
                # cost 0 model: nothing can be cheaper
                status = OPTIMAL
                break
            extra.append(cut)
            self.stats.cuts_added += 1
            if tracer.enabled:
                tracer.emit(CutEvent(size=len(cut)))

        self.stats.elapsed = time.monotonic() - start
        self.stats.phase_times = self._timer.snapshot()
        reported = (
            best_cost + objective.offset if best_assignment is not None else None
        )
        if status == SATISFIABLE:
            reported = objective.offset
        if tracer.enabled:
            tracer.emit(
                ResultEvent(
                    status=status,
                    cost=reported,
                    decisions=self.stats.decisions,
                    conflicts=self.stats.conflicts,
                )
            )
            tracer.flush()
        return SolveResult(
            status,
            best_cost=reported,
            best_assignment=best_assignment,
            stats=self.stats,
            solver_name=self.name,
        )
