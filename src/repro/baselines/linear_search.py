"""PBS-style SAT-based linear search on the cost function (paper [2, 3]).

Barth's classic scheme, as used by PBS: solve the constraints as a pure
PB-SAT problem; each time a model of cost ``k`` is found, add the
constraint ``sum c_j x_j <= k - 1`` and *restart* the decision search
from scratch; when the instance becomes unsatisfiable the last model is
optimal.  No lower bounding is performed — the weakness the paper's
experiments expose on optimization-heavy instances.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..core.cuts import CutGenerator
from ..core.options import SolverOptions, merge_solver_options
from ..core.result import (
    OPTIMAL,
    SATISFIABLE,
    SolveResult,
    UNKNOWN,
    UNSATISFIABLE,
)
from ..core.stats import SolverStats
from ..obs.events import CutEvent, IncumbentEvent, ResultEvent, RunHeaderEvent
from ..obs.timers import NULL_TIMER, PhaseTimer
from ..obs.trace import NULL_TRACER
from ..pb.constraints import Constraint
from ..pb.instance import PBInstance
from .sat_search import STOPPED, UNSAT, DecisionSearch


class LinearSearchSolver:
    """SAT-based linear search (PBS-like comparator).

    Supports the same observability and portfolio hooks as the bsolo
    solver (``tracer``, ``profile``, ``on_incumbent``, ``external_bound``,
    ``should_stop``), so cross-solver comparisons measure with one
    instrument and the solver can run as a portfolio worker.  An imported
    external incumbent is folded in as a knapsack cut at the next search
    restart.
    """

    name = "pbs-like"

    def __init__(self, instance: PBInstance,
                 options: Optional[SolverOptions] = None, *,
                 time_limit: Optional[float] = None,
                 max_conflicts: Optional[int] = None, tracer=None,
                 profile: bool = False):
        self._instance = instance
        self._options = merge_solver_options(
            options, time_limit=time_limit, max_conflicts=max_conflicts,
            tracer=tracer, profile=profile,
        )
        opts = self._options
        self._time_limit = opts.time_limit
        self._max_conflicts = opts.max_conflicts
        self._tracer = opts.tracer if opts.tracer is not None else NULL_TRACER
        self._timer = PhaseTimer() if opts.profile else NULL_TIMER
        self.stats = SolverStats()

    def solve(self) -> SolveResult:
        """SAT-based linear search: tighten the cost bound per solution."""
        start = time.monotonic()
        deadline = start + self._time_limit if self._time_limit is not None else None
        instance = self._instance
        objective = instance.objective
        options = self._options
        cut_generator = CutGenerator(instance, cardinality_cuts=False)
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(
                RunHeaderEvent(
                    solver=self.name,
                    instance=getattr(tracer, "instance_label", ""),
                    options={"strategy": "linear_search"},
                )
            )

        extra: List[Constraint] = []
        best_cost: Optional[int] = None  # path scale, local or imported
        best_assignment: Optional[Dict[int, int]] = None
        external_cost: Optional[int] = None  # reported scale, model elsewhere
        status = None
        while True:
            if options.should_stop is not None and options.should_stop():
                self.stats.interrupted = True
                status = UNKNOWN
                break
            if options.external_bound is not None and not objective.is_constant:
                imported = options.external_bound()
                if imported is not None:
                    path = imported - objective.offset
                    if best_cost is None or path < best_cost:
                        best_cost = path
                        best_assignment = None
                        external_cost = imported
                        self.stats.external_bounds += 1
                        cut = cut_generator.knapsack_cut(path)
                        if cut is None:
                            # a cost-0 incumbent elsewhere: nothing beats it
                            status = OPTIMAL
                            break
                        extra.append(cut)
                        self.stats.cuts_added += 1
            # PBS restarts the SAT engine for every new cost bound.
            search = DecisionSearch(
                instance.num_variables, tracer=tracer, timer=self._timer,
                propagation=options.propagation,
            )
            search.add_constraints(instance.constraints)
            search.add_constraints(extra)
            outcome, model = search.solve(
                deadline=deadline, max_conflicts=self._max_conflicts,
                stop=options.should_stop,
            )
            self.stats.decisions += search.decisions
            self.stats.logic_conflicts += search.conflicts
            self.stats.propagations += search.propagations
            if outcome == STOPPED:
                status = UNKNOWN
                if options.should_stop is not None and options.should_stop():
                    self.stats.interrupted = True
                break
            if outcome == UNSAT:
                if best_cost is None:
                    status = UNSATISFIABLE
                else:
                    status = OPTIMAL
                break
            # a model: record, tighten, iterate
            cost = objective.path_cost(model)
            self.stats.solutions_found += 1
            best_cost = cost
            best_assignment = model
            external_cost = None
            reported = cost + objective.offset
            if tracer.enabled:
                tracer.emit(
                    IncumbentEvent(
                        cost=reported,
                        decisions=self.stats.decisions,
                        conflicts=self.stats.conflicts,
                    )
                )
            if options.on_incumbent is not None:
                options.on_incumbent(reported, dict(model))
            if objective.is_constant:
                status = SATISFIABLE
                break
            cut = cut_generator.knapsack_cut(cost)
            if cut is None:
                # cost 0 model: nothing can be cheaper
                status = OPTIMAL
                break
            extra.append(cut)
            self.stats.cuts_added += 1
            if tracer.enabled:
                tracer.emit(CutEvent(size=len(cut)))

        self.stats.elapsed = time.monotonic() - start
        self.stats.phase_times = self._timer.snapshot()
        if external_cost is not None:
            reported = external_cost
        elif best_cost is not None and (
            best_assignment is not None or status == OPTIMAL
        ):
            reported = best_cost + objective.offset
        else:
            reported = None
        if status == SATISFIABLE:
            reported = objective.offset
        if tracer.enabled:
            tracer.emit(
                ResultEvent(
                    status=status,
                    cost=reported,
                    decisions=self.stats.decisions,
                    conflicts=self.stats.conflicts,
                )
            )
            tracer.flush()
        return SolveResult(
            status,
            best_cost=reported,
            best_assignment=best_assignment,
            stats=self.stats,
            solver_name=self.name,
        )
