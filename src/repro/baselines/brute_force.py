"""Exhaustive reference solver (test oracle only).

Enumerates all ``2^n`` assignments.  Obviously exponential — used by the
test suite to validate every other solver on small instances.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, Optional

from ..pb.instance import PBInstance
from ..core.options import SolverOptions, merge_solver_options
from ..core.result import (
    OPTIMAL,
    SATISFIABLE,
    SolveResult,
    UNKNOWN,
    UNSATISFIABLE,
)
from ..core.stats import SolverStats
from ..obs.events import IncumbentEvent, ResultEvent, RunHeaderEvent
from ..obs.timers import NULL_TIMER, PhaseTimer
from ..obs.trace import NULL_TRACER


class BruteForceSolver:
    """Enumerate every assignment; guaranteed-correct reference."""

    name = "brute-force"

    def __init__(self, instance: PBInstance,
                 options: Optional[SolverOptions] = None, *,
                 max_variables: int = 22):
        if instance.num_variables > max_variables:
            raise ValueError(
                "brute force capped at %d variables (got %d)"
                % (max_variables, instance.num_variables)
            )
        self._instance = instance
        self._options = merge_solver_options(options)
        opts = self._options
        self._tracer = opts.tracer if opts.tracer is not None else NULL_TRACER
        self._timer = PhaseTimer() if opts.profile else NULL_TIMER
        self.stats = SolverStats()

    def solve(self) -> SolveResult:
        """Enumerate all assignments; exact but exponential."""
        start = time.monotonic()
        options = self._options
        deadline = (
            start + options.time_limit
            if options.time_limit is not None else None
        )
        instance = self._instance
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(
                RunHeaderEvent(
                    solver=self.name,
                    instance=getattr(tracer, "instance_label", ""),
                    options={"strategy": "enumeration"},
                )
            )
        n = instance.num_variables
        best_cost: Optional[int] = None
        best_assignment: Optional[Dict[int, int]] = None
        status: Optional[str] = None
        stats = self.stats
        with self._timer.phase("enumerate"):
            for index, bits in enumerate(itertools.product((0, 1), repeat=n)):
                if index % 4096 == 0 and index:
                    if deadline is not None and time.monotonic() > deadline:
                        status = UNKNOWN
                        break
                    if options.should_stop is not None and options.should_stop():
                        stats.interrupted = True
                        status = UNKNOWN
                        break
                assignment = {var: bits[var - 1] for var in range(1, n + 1)}
                if not instance.check(assignment):
                    continue
                cost = instance.cost(assignment)
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_assignment = assignment
                    stats.solutions_found += 1
                    if tracer.enabled:
                        tracer.emit(IncumbentEvent(cost=cost))
                    if options.on_incumbent is not None:
                        options.on_incumbent(cost, dict(assignment))
                    if instance.is_satisfaction:
                        break
        stats.elapsed = time.monotonic() - start
        stats.phase_times = self._timer.snapshot()
        if status is None:
            if best_assignment is None:
                status = UNSATISFIABLE
            else:
                status = SATISFIABLE if instance.is_satisfaction else OPTIMAL
        if tracer.enabled:
            tracer.emit(ResultEvent(status=status, cost=best_cost))
            tracer.flush()
        return SolveResult(
            status,
            best_cost=best_cost,
            best_assignment=best_assignment,
            stats=stats,
            solver_name=self.name,
        )


def brute_force_optimum(instance: PBInstance) -> Optional[int]:
    """The optimal cost, or None when unsatisfiable."""
    return BruteForceSolver(instance).solve().best_cost
