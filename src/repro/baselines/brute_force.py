"""Exhaustive reference solver (test oracle only).

Enumerates all ``2^n`` assignments.  Obviously exponential — used by the
test suite to validate every other solver on small instances.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from ..pb.instance import PBInstance
from ..core.result import OPTIMAL, SATISFIABLE, SolveResult, UNSATISFIABLE
from ..core.stats import SolverStats


class BruteForceSolver:
    """Enumerate every assignment; guaranteed-correct reference."""

    name = "brute-force"

    def __init__(self, instance: PBInstance, max_variables: int = 22):
        if instance.num_variables > max_variables:
            raise ValueError(
                "brute force capped at %d variables (got %d)"
                % (max_variables, instance.num_variables)
            )
        self._instance = instance

    def solve(self) -> SolveResult:
        instance = self._instance
        n = instance.num_variables
        best_cost: Optional[int] = None
        best_assignment: Optional[Dict[int, int]] = None
        for bits in itertools.product((0, 1), repeat=n):
            assignment = {var: bits[var - 1] for var in range(1, n + 1)}
            if not instance.check(assignment):
                continue
            cost = instance.cost(assignment)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_assignment = assignment
                if instance.is_satisfaction:
                    break
        stats = SolverStats()
        if best_assignment is None:
            return SolveResult(UNSATISFIABLE, stats=stats, solver_name=self.name)
        status = SATISFIABLE if instance.is_satisfaction else OPTIMAL
        return SolveResult(
            status,
            best_cost=best_cost,
            best_assignment=best_assignment,
            stats=stats,
            solver_name=self.name,
        )


def brute_force_optimum(instance: PBInstance) -> Optional[int]:
    """The optimal cost, or None when unsatisfiable."""
    return BruteForceSolver(instance).solve().best_cost
