"""Generic MILP branch-and-bound (the CPLEX stand-in, paper [1]).

Classic LP-based branch & bound with *no* SAT techniques: at every node
the LP relaxation is solved; the node is pruned when the relaxation is
infeasible or its (rounded-up) value cannot beat the incumbent; integral
LP solutions become incumbents; otherwise the most fractional variable is
branched on, rounding side first.  Depth-first traversal, no
propagation, no learning.

This reproduces the qualitative profile Table 1 shows for CPLEX:
excellent at pure optimization (the relaxation does all the work), poor
at tightly-constrained satisfaction instances where branching without
propagation thrashes.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..core.options import SolverOptions, merge_solver_options
from ..core.result import (
    OPTIMAL,
    SATISFIABLE,
    SolveResult,
    UNKNOWN,
    UNSATISFIABLE,
)
from ..core.stats import SolverStats
from ..lp.simplex import INFEASIBLE, OPTIMAL as LP_OPTIMAL, SimplexSolver
from ..lp.standard_form import build_lp_data
from ..lp.tolerances import ROUND_EPS, ceil_guarded
from ..obs.events import IncumbentEvent, ResultEvent, RunHeaderEvent
from ..obs.timers import NULL_TIMER, PhaseTimer
from ..obs.trace import NULL_TRACER
from ..pb.instance import PBInstance

_INT_TOL = ROUND_EPS


class MILPSolver:
    """LP-relaxation branch and bound over the 0/1 box."""

    name = "cplex-like"

    def __init__(
        self,
        instance: PBInstance,
        options: Optional[SolverOptions] = None,
        *,
        time_limit: Optional[float] = None,
        max_nodes: Optional[int] = None,
    ):
        self._instance = instance
        self._options = merge_solver_options(options, time_limit=time_limit)
        opts = self._options
        self._time_limit = opts.time_limit
        self._max_nodes = (
            max_nodes if max_nodes is not None else opts.max_decisions
        )
        self._tracer = opts.tracer if opts.tracer is not None else NULL_TRACER
        self._timer = PhaseTimer() if opts.profile else NULL_TIMER
        self.stats = SolverStats()
        self.nodes = 0

    # ------------------------------------------------------------------
    def solve(self) -> SolveResult:
        """LP-based branch and bound on fractional variables."""
        start = time.monotonic()
        deadline = start + self._time_limit if self._time_limit is not None else None
        instance = self._instance
        objective = instance.objective
        options = self._options
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(
                RunHeaderEvent(
                    solver=self.name,
                    instance=getattr(tracer, "instance_label", ""),
                    options={"strategy": "lp_branch_and_bound"},
                )
            )

        upper = objective.max_value + 1
        best_assignment: Optional[Dict[int, int]] = None
        external_cost: Optional[int] = None
        status: Optional[str] = None
        stack: List[Dict[int, int]] = [{}]

        while stack:
            if deadline is not None and time.monotonic() > deadline:
                status = UNKNOWN
                break
            if self._max_nodes is not None and self.nodes >= self._max_nodes:
                status = UNKNOWN
                break
            if options.should_stop is not None and options.should_stop():
                self.stats.interrupted = True
                status = UNKNOWN
                break
            if options.external_bound is not None and not objective.is_constant:
                imported = options.external_bound()
                if imported is not None and imported - objective.offset < upper:
                    upper = imported - objective.offset
                    best_assignment = None  # the model lives elsewhere
                    external_cost = imported
                    self.stats.external_bounds += 1
            fixed = stack.pop()
            self.nodes += 1

            data = build_lp_data(instance, fixed)
            if data is None:
                continue  # infeasible by the fixing alone
            path = objective.path_cost(fixed)
            if data.num_rows == 0:
                # all constraints satisfied: complete with zeros
                cost = path
                if cost < upper:
                    upper = cost
                    best_assignment = self._complete(fixed)
                    external_cost = None
                    self.stats.solutions_found += 1
                    if tracer.enabled:
                        tracer.emit(
                            IncumbentEvent(
                                cost=cost + objective.offset,
                                decisions=self.nodes,
                            )
                        )
                    if options.on_incumbent is not None:
                        options.on_incumbent(
                            cost + objective.offset, dict(best_assignment)
                        )
                    if objective.is_constant:
                        break  # feasibility problem: first model suffices
                continue
            with self._timer.phase("lp"):
                result = SimplexSolver(
                    data.c, data.A, data.b, data.senses,
                    upper=[1.0] * data.num_columns,
                ).solve()
            self.stats.lower_bound_calls += 1
            if result.status == INFEASIBLE:
                continue
            if result.status != LP_OPTIMAL:
                continue  # give up on this node conservatively
            bound = path + ceil_guarded(result.objective)
            if bound >= upper:
                self.stats.prunings += 1
                continue

            branch_var, branch_value = self._most_fractional(data, result.x)
            if branch_var is None:
                # integral LP optimum: a feasible incumbent
                assignment = dict(fixed)
                for j, var in enumerate(data.columns):
                    assignment[var] = 1 if result.x[j] > 0.5 else 0
                assignment = self._complete(assignment)
                if instance.check(assignment):
                    cost = objective.path_cost(assignment)
                    if cost < upper:
                        upper = cost
                        best_assignment = assignment
                        external_cost = None
                        self.stats.solutions_found += 1
                        if tracer.enabled:
                            tracer.emit(
                                IncumbentEvent(
                                    cost=cost + objective.offset,
                                    decisions=self.nodes,
                                )
                            )
                        if options.on_incumbent is not None:
                            options.on_incumbent(
                                cost + objective.offset, dict(assignment)
                            )
                        if objective.is_constant:
                            break  # feasibility problem: stop at a model
                continue
            # depth first, rounding side explored first (pushed last)
            away = dict(fixed)
            away[branch_var] = 0 if branch_value > 0.5 else 1
            toward = dict(fixed)
            toward[branch_var] = 1 if branch_value > 0.5 else 0
            stack.append(away)
            stack.append(toward)

        if status is None:
            if best_assignment is not None or external_cost is not None:
                status = OPTIMAL
            else:
                status = UNSATISFIABLE
            if best_assignment is not None and objective.is_constant:
                status = SATISFIABLE
        self.stats.decisions = self.nodes
        self.stats.elapsed = time.monotonic() - start
        self.stats.phase_times = self._timer.snapshot()
        if best_assignment is not None:
            best_cost = upper + objective.offset
        else:
            best_cost = external_cost
        if tracer.enabled:
            tracer.emit(
                ResultEvent(
                    status=status, cost=best_cost, decisions=self.nodes
                )
            )
            tracer.flush()
        return SolveResult(
            status,
            best_cost=best_cost,
            best_assignment=best_assignment,
            stats=self.stats,
            solver_name=self.name,
        )

    # ------------------------------------------------------------------
    def _complete(self, fixed: Dict[int, int]) -> Dict[int, int]:
        assignment = dict(fixed)
        for var in self._instance.variables():
            assignment.setdefault(var, 0)
        return assignment

    @staticmethod
    def _most_fractional(data, x) -> Tuple[Optional[int], float]:
        best_var: Optional[int] = None
        best_value = 0.0
        best_distance = 0.5 - _INT_TOL
        for j, var in enumerate(data.columns):
            value = float(x[j])
            if value < _INT_TOL or value > 1.0 - _INT_TOL:
                continue
            distance = abs(value - 0.5)
            if distance < best_distance:
                best_var, best_value, best_distance = var, value, distance
        return best_var, best_value
