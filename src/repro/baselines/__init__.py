"""Comparator solvers from the paper's Table 1 and a brute-force oracle."""

from .brute_force import BruteForceSolver, brute_force_optimum
from .covering_bnb import CoveringBnBSolver
from .cutting_planes import CuttingPlanesSolver, cardinality_reduction
from .linear_search import LinearSearchSolver
from .milp import MILPSolver
from .sat_search import DecisionSearch

__all__ = [
    "BruteForceSolver",
    "CoveringBnBSolver",
    "CuttingPlanesSolver",
    "DecisionSearch",
    "LinearSearchSolver",
    "MILPSolver",
    "brute_force_optimum",
    "cardinality_reduction",
]
