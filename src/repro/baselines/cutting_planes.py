"""Galena-style PB solver (paper reference [4], Chai & Kuehlmann).

Galena improved on PBS by keeping the learning state across cost-bound
tightenings and by learning stronger-than-clausal facts.  This
reimplementation captures both distinguishing features:

* a *single incremental* CDCL search — learned constraints survive each
  new ``sum c_j x_j <= k - 1`` bound (no restart from scratch), and
* *cardinality strengthening* of the objective cut: besides the knapsack
  constraint, a cardinality bound ``at least r complement literals`` is
  derived from it (the cardinality-reduction idea of Galena's learning,
  applied to the strongest constraint we generate), which propagates much
  earlier than the raw knapsack form.

Still no lower bounding — in the paper's experiments Galena beats PBS but
loses clearly to bsolo with LPR.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..core.cuts import CutGenerator
from ..core.options import SolverOptions, merge_solver_options
from ..core.result import (
    OPTIMAL,
    SATISFIABLE,
    SolveResult,
    UNKNOWN,
    UNSATISFIABLE,
)
from ..core.stats import SolverStats
from ..obs.events import CutEvent, IncumbentEvent, ResultEvent, RunHeaderEvent
from ..obs.timers import NULL_TIMER, PhaseTimer
from ..obs.trace import NULL_TRACER
from ..pb.instance import PBInstance
from .sat_search import STOPPED, UNSAT, DecisionSearch


# Galena's cardinality reduction lives with the cutting-plane machinery.
from ..engine.pb_resolution import cardinality_reduction


class CuttingPlanesSolver:
    """Incremental linear search with cardinality strengthening.

    Carries the same observability instruments as the other comparators
    (``tracer``, ``profile``), so cross-solver traces and profiles are
    recorded uniformly.
    """

    name = "galena-like"

    def __init__(self, instance: PBInstance,
                 options: Optional[SolverOptions] = None, *,
                 time_limit: Optional[float] = None,
                 max_conflicts: Optional[int] = None, tracer=None,
                 profile: bool = False):
        self._instance = instance
        self._options = merge_solver_options(
            options, time_limit=time_limit, max_conflicts=max_conflicts,
            tracer=tracer, profile=profile,
        )
        opts = self._options
        self._time_limit = opts.time_limit
        self._max_conflicts = opts.max_conflicts
        self._tracer = opts.tracer if opts.tracer is not None else NULL_TRACER
        self._timer = PhaseTimer() if opts.profile else NULL_TIMER
        self.stats = SolverStats()

    def _add_bound_cuts(self, search: DecisionSearch, cut) -> None:
        """Install a knapsack cut plus its cardinality strengthening."""
        search.add_constraint(cut)
        self.stats.cuts_added += 1
        if self._tracer.enabled:
            self._tracer.emit(CutEvent(size=len(cut)))
        reduction = cardinality_reduction(cut)
        if reduction is not None:
            search.add_constraint(reduction)
            self.stats.cuts_added += 1
            if self._tracer.enabled:
                self._tracer.emit(CutEvent(size=len(reduction)))

    def solve(self) -> SolveResult:
        """Incremental linear search with cardinality strengthening."""
        start = time.monotonic()
        deadline = start + self._time_limit if self._time_limit is not None else None
        instance = self._instance
        objective = instance.objective
        options = self._options
        cut_generator = CutGenerator(instance, cardinality_cuts=False)
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(
                RunHeaderEvent(
                    solver=self.name,
                    instance=getattr(tracer, "instance_label", ""),
                    options={"strategy": "incremental_linear_search"},
                )
            )

        search = DecisionSearch(
            instance.num_variables, pb_learning=True,
            tracer=tracer, timer=self._timer,
            propagation=options.propagation,
        )
        search.add_constraints(instance.constraints)

        best_cost: Optional[int] = None  # path scale, local or imported
        best_assignment: Optional[Dict[int, int]] = None
        external_cost: Optional[int] = None  # reported scale, model elsewhere
        status = None
        while True:
            if options.should_stop is not None and options.should_stop():
                self.stats.interrupted = True
                status = UNKNOWN
                break
            if options.external_bound is not None and not objective.is_constant:
                imported = options.external_bound()
                if imported is not None:
                    path = imported - objective.offset
                    if best_cost is None or path < best_cost:
                        best_cost = path
                        best_assignment = None
                        external_cost = imported
                        self.stats.external_bounds += 1
                        cut = cut_generator.knapsack_cut(path)
                        if cut is None:
                            status = OPTIMAL
                            break
                        self._add_bound_cuts(search, cut)
            outcome, model = search.solve(
                deadline=deadline, max_conflicts=self._max_conflicts,
                stop=options.should_stop,
            )
            if outcome == STOPPED:
                status = UNKNOWN
                if options.should_stop is not None and options.should_stop():
                    self.stats.interrupted = True
                break
            if outcome == UNSAT:
                status = UNSATISFIABLE if best_cost is None else OPTIMAL
                break
            cost = objective.path_cost(model)
            self.stats.solutions_found += 1
            best_cost = cost
            best_assignment = model
            external_cost = None
            if tracer.enabled:
                tracer.emit(
                    IncumbentEvent(
                        cost=cost + objective.offset,
                        decisions=search.decisions,
                        conflicts=search.conflicts,
                    )
                )
            if options.on_incumbent is not None:
                options.on_incumbent(cost + objective.offset, dict(model))
            if objective.is_constant:
                status = SATISFIABLE
                break
            cut = cut_generator.knapsack_cut(cost)
            if cut is None:
                status = OPTIMAL
                break
            self._add_bound_cuts(search, cut)

        self.stats.decisions = search.decisions
        self.stats.logic_conflicts = search.conflicts
        self.stats.propagations = search.propagations
        self.stats.pb_resolvents = search.pb_resolvents
        self.stats.elapsed = time.monotonic() - start
        self.stats.phase_times = self._timer.snapshot()
        if external_cost is not None:
            reported = external_cost
        elif best_cost is not None and (
            best_assignment is not None or status == OPTIMAL
        ):
            reported = best_cost + objective.offset
        else:
            reported = None
        if status == SATISFIABLE:
            reported = objective.offset
        if tracer.enabled:
            tracer.emit(
                ResultEvent(
                    status=status,
                    cost=reported,
                    decisions=self.stats.decisions,
                    conflicts=self.stats.conflicts,
                )
            )
            tracer.flush()
        return SolveResult(
            status,
            best_cost=reported,
            best_assignment=best_assignment,
            stats=self.stats,
            solver_name=self.name,
        )
