"""Galena-style PB solver (paper reference [4], Chai & Kuehlmann).

Galena improved on PBS by keeping the learning state across cost-bound
tightenings and by learning stronger-than-clausal facts.  This
reimplementation captures both distinguishing features:

* a *single incremental* CDCL search — learned constraints survive each
  new ``sum c_j x_j <= k - 1`` bound (no restart from scratch), and
* *cardinality strengthening* of the objective cut: besides the knapsack
  constraint, a cardinality bound ``at least r complement literals`` is
  derived from it (the cardinality-reduction idea of Galena's learning,
  applied to the strongest constraint we generate), which propagates much
  earlier than the raw knapsack form.

Still no lower bounding — in the paper's experiments Galena beats PBS but
loses clearly to bsolo with LPR.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..core.cuts import CutGenerator
from ..core.result import (
    OPTIMAL,
    SATISFIABLE,
    SolveResult,
    UNKNOWN,
    UNSATISFIABLE,
)
from ..core.stats import SolverStats
from ..pb.instance import PBInstance
from .sat_search import STOPPED, UNSAT, DecisionSearch


# Galena's cardinality reduction lives with the cutting-plane machinery.
from ..engine.pb_resolution import cardinality_reduction


class CuttingPlanesSolver:
    """Incremental linear search with cardinality strengthening."""

    name = "galena-like"

    def __init__(self, instance: PBInstance, time_limit: Optional[float] = None,
                 max_conflicts: Optional[int] = None):
        self._instance = instance
        self._time_limit = time_limit
        self._max_conflicts = max_conflicts
        self.stats = SolverStats()

    def solve(self) -> SolveResult:
        start = time.monotonic()
        deadline = start + self._time_limit if self._time_limit is not None else None
        instance = self._instance
        objective = instance.objective
        cut_generator = CutGenerator(instance, cardinality_cuts=False)

        search = DecisionSearch(instance.num_variables, pb_learning=True)
        search.add_constraints(instance.constraints)

        best_cost: Optional[int] = None
        best_assignment: Optional[Dict[int, int]] = None
        status = None
        while True:
            outcome, model = search.solve(
                deadline=deadline, max_conflicts=self._max_conflicts
            )
            if outcome == STOPPED:
                status = UNKNOWN
                break
            if outcome == UNSAT:
                status = UNSATISFIABLE if best_assignment is None else OPTIMAL
                break
            cost = objective.path_cost(model)
            self.stats.solutions_found += 1
            best_cost = cost
            best_assignment = model
            if objective.is_constant:
                status = SATISFIABLE
                break
            cut = cut_generator.knapsack_cut(cost)
            if cut is None:
                status = OPTIMAL
                break
            search.add_constraint(cut)
            self.stats.cuts_added += 1
            reduction = cardinality_reduction(cut)
            if reduction is not None:
                search.add_constraint(reduction)
                self.stats.cuts_added += 1

        self.stats.decisions = search.decisions
        self.stats.logic_conflicts = search.conflicts
        self.stats.elapsed = time.monotonic() - start
        reported = (
            best_cost + objective.offset if best_assignment is not None else None
        )
        if status == SATISFIABLE:
            reported = objective.offset
        return SolveResult(
            status,
            best_cost=reported,
            best_assignment=best_assignment,
            stats=self.stats,
            solver_name=self.name,
        )
