"""Plain CDCL decision search over PB constraints.

This is the common engine behind the SAT-based comparator solvers
(PBS-like and Galena-like, paper reference [2] and [4]): boolean
constraint propagation, first-UIP clause learning, VSIDS — but **no
lower bounding**, which is exactly the gap the paper's bsolo fills.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Optional, Tuple

from ..engine.activity import VSIDSActivity
from ..engine.conflict import ConflictAnalyzer, RootConflictError, highest_level
from ..engine.interface import make_engine
from ..engine.pb_resolution import ResolutionScratch
from ..obs.events import ConflictEvent, DecisionEvent
from ..obs.timers import NULL_TIMER
from ..pb.constraints import Constraint

SAT = "sat"
UNSAT = "unsat"
STOPPED = "stopped"


class DecisionSearch:
    """Incremental CDCL search for PB satisfiability.

    With ``pb_learning`` the search additionally learns cutting-plane
    resolvents (Galena's scheme) next to first-UIP clauses.

    ``tracer``/``timer`` hook the search into :mod:`repro.obs` so the
    comparator solvers produce traces and phase times comparable with
    bsolo's (same event kinds, same phase names).
    """

    def __init__(self, num_variables: int, decay: float = 0.95,
                 pb_learning: bool = False, tracer=None, timer=None,
                 propagation: str = "counter"):
        self._tracer = tracer if (tracer is not None and tracer.enabled) else None
        self._timer = timer if timer is not None else NULL_TIMER
        self._propagator = make_engine(
            propagation, num_variables, tracer=self._tracer
        )
        self._activity = VSIDSActivity(num_variables, decay=decay)
        self._analyzer = ConflictAnalyzer(num_variables)
        self._resolution = ResolutionScratch(num_variables)
        self._root_conflict = False
        self._pb_learning = pb_learning
        self.conflicts = 0
        self.decisions = 0
        self.pb_resolvents = 0

    @property
    def propagations(self) -> int:
        """Implications discovered so far (engine counter)."""
        return self._propagator.num_propagations

    # ------------------------------------------------------------------
    def add_constraint(self, constraint: Constraint) -> None:
        """Add a constraint; the search state adapts incrementally."""
        if constraint.is_tautology:
            return
        conflict = self._propagator.add_constraint(constraint)
        if conflict is not None and not self._resolve(conflict.literals, constraint):
            self._root_conflict = True

    def add_constraints(self, constraints: Iterable[Constraint]) -> None:
        """Add several constraints to the active database."""
        for constraint in constraints:
            self.add_constraint(constraint)

    # ------------------------------------------------------------------
    def solve(
        self,
        deadline: Optional[float] = None,
        max_conflicts: Optional[int] = None,
        stop=None,
    ) -> Tuple[str, Optional[Dict[int, int]]]:
        """Search for a model; resumable after more constraints arrive.

        ``stop`` is a zero-argument cooperative-interrupt callable
        (polled at the same cadence as the deadline); when it returns
        True the search stops with outcome ``STOPPED``.
        """
        if self._root_conflict:
            return UNSAT, None
        propagator = self._propagator
        timer = self._timer
        tracer = self._tracer
        start_conflicts = self.conflicts
        loop = 0
        while True:
            loop += 1
            if loop % 64 == 0:
                if deadline is not None and time.monotonic() > deadline:
                    return STOPPED, None
                if stop is not None and stop():
                    return STOPPED, None
            if (
                max_conflicts is not None
                and self.conflicts - start_conflicts > max_conflicts
            ):
                return STOPPED, None

            timer.push("propagate")
            conflict = propagator.propagate()
            timer.pop()
            if conflict is not None:
                self.conflicts += 1
                if tracer is not None:
                    tracer.emit(
                        ConflictEvent(
                            type="logic", level=propagator.trail.decision_level
                        )
                    )
                source = conflict.stored.constraint if conflict.stored else None
                timer.push("analyze")
                resolved = self._resolve(conflict.literals, source)
                timer.pop()
                if not resolved:
                    self._root_conflict = True
                    return UNSAT, None
                continue
            if propagator.trail.all_assigned():
                return SAT, propagator.model()
            timer.push("branching")
            var = self._activity.best(propagator.trail.unassigned_variables())
            timer.pop()
            self.decisions += 1
            if tracer is not None:
                tracer.emit(
                    DecisionEvent(
                        literal=-var, level=propagator.trail.decision_level + 1
                    )
                )
            propagator.decide(-var)  # phase 0 default

    # ------------------------------------------------------------------
    def _resolve(self, literals, conflict_constraint: Optional[Constraint] = None) -> bool:
        trail = self._propagator.trail
        if not literals:
            return False
        level = highest_level(literals, trail)
        if level == 0:
            return False
        if level < trail.decision_level:
            self._propagator.backtrack(level)
        try:
            analysis = self._analyzer.analyze(literals, trail)
        except RootConflictError:
            return False
        resolvent = None
        if self._pb_learning and conflict_constraint is not None:
            resolvent = self._resolution.derive(
                conflict_constraint,
                analysis.resolved_variables,
                self._propagator.antecedent,
            )
        self._activity.bump_all(analysis.seen_variables)
        self._activity.decay()
        self._propagator.backtrack(analysis.backtrack_level)
        learned = Constraint.clause(analysis.learned_literals)
        conflict = self._propagator.add_constraint(learned, learned=True)
        if conflict is not None:  # pragma: no cover - asserting clause
            return self._resolve(conflict.literals)
        if analysis.asserting_literal is not None:
            self._propagator.imply(
                analysis.asserting_literal, analysis.learned_literals
            )
        if resolvent is not None:
            conflict = self._propagator.add_constraint(resolvent, learned=True)
            self.pb_resolvents += 1
            if conflict is not None:
                return self._resolve(
                    conflict.literals,
                    conflict.stored.constraint if conflict.stored else None,
                )
        return True
