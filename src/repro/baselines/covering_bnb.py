"""Classical branch-and-bound covering solver (scherzo-like, paper [5, 15]).

Before SAT-based PBO, (binate) covering problems were solved by dedicated
branch-and-bound procedures — Coudert's scherzo and the explicit solvers
of Villa et al.: depth-first search with *per-node* covering reductions
(unit clauses, pure polarity), an MIS lower bound at every node, and
chronological backtracking (no learning).  The paper positions bsolo as
the hybrid of this lineage with SAT techniques; having the classical
solver in the repository makes that contrast measurable.

Only applicable to clause-only instances (``PBInstance.is_covering``).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set

from ..core.options import SolverOptions, merge_solver_options
from ..core.result import (
    OPTIMAL,
    SATISFIABLE,
    SolveResult,
    UNKNOWN,
    UNSATISFIABLE,
)
from ..core.stats import SolverStats
from ..mis.independent_set import MISBound
from ..obs.events import (
    IncumbentEvent,
    LowerBoundEvent,
    ResultEvent,
    RunHeaderEvent,
)
from ..obs.timers import NULL_TIMER, PhaseTimer
from ..obs.trace import NULL_TRACER
from ..pb.instance import PBInstance


class _Frame:
    """One DFS node: the variable branched on and the trail watermark."""

    __slots__ = ("var", "next_value", "trail_mark")

    def __init__(self, var: int, next_value: Optional[int], trail_mark: int):
        self.var = var
        self.next_value = next_value
        self.trail_mark = trail_mark


class CoveringBnBSolver:
    """Depth-first branch & bound with per-node reductions and MIS bound."""

    name = "scherzo-like"

    def __init__(
        self,
        instance: PBInstance,
        options: Optional[SolverOptions] = None,
        *,
        time_limit: Optional[float] = None,
        max_nodes: Optional[int] = None,
    ):
        if not instance.is_covering:
            raise ValueError("CoveringBnBSolver requires a clause-only instance")
        self._instance = instance
        self._options = merge_solver_options(options, time_limit=time_limit)
        opts = self._options
        self._time_limit = opts.time_limit
        self._max_nodes = (
            max_nodes if max_nodes is not None else opts.max_decisions
        )
        self._tracer = opts.tracer if opts.tracer is not None else NULL_TRACER
        self._timer = PhaseTimer() if opts.profile else NULL_TIMER
        self.stats = SolverStats()
        self._costs = instance.objective.costs
        self._mis = MISBound(instance, metrics=opts.metrics)

    # ------------------------------------------------------------------
    def solve(self) -> SolveResult:
        """Branch and bound over covering structure; exact on clause-only instances."""
        start = time.monotonic()
        deadline = start + self._time_limit if self._time_limit is not None else None
        instance = self._instance
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(
                RunHeaderEvent(
                    solver=self.name,
                    instance=getattr(tracer, "instance_label", ""),
                    options={"strategy": "covering_bnb"},
                )
            )

        clauses: List[Set[int]] = [set(c.literals) for c in instance.constraints]
        occurrences: Dict[int, List[int]] = {}
        for index, clause in enumerate(clauses):
            for literal in clause:
                occurrences.setdefault(literal, []).append(index)

        assignment: Dict[int, int] = {}
        trail: List[int] = []  # variables in assignment order
        upper = instance.objective.max_value + 1
        best: Optional[Dict[int, int]] = None
        external_cost: Optional[int] = None
        options = self._options
        objective = instance.objective
        status: Optional[str] = None
        stack: List[_Frame] = []

        def assign(var: int, value: int) -> bool:
            """Set var; returns False when some clause becomes empty."""
            assignment[var] = value
            trail.append(var)
            false_literal = var if value == 0 else -var
            for index in occurrences.get(false_literal, ()):
                clause = clauses[index]
                if _satisfied(clause, assignment):
                    continue
                if all(_is_false(lit, assignment) for lit in clause):
                    return False
            return True

        def propagate() -> bool:
            """Unit-clause fixpoint; False on contradiction."""
            changed = True
            while changed:
                changed = False
                for clause in clauses:
                    live = None
                    count = 0
                    satisfied = False
                    for literal in clause:
                        var = abs(literal)
                        value = assignment.get(var)
                        if value is None:
                            live = literal
                            count += 1
                        elif (value == 1) == (literal > 0):
                            satisfied = True
                            break
                    if satisfied:
                        continue
                    if count == 0:
                        return False
                    if count == 1:
                        if not assign(abs(live), 1 if live > 0 else 0):
                            return False
                        self.stats.propagations += 1
                        changed = True
            return True

        def path_cost() -> int:
            return sum(
                cost for var, cost in self._costs.items()
                if assignment.get(var) == 1
            )

        def all_satisfied() -> bool:
            return all(_satisfied(clause, assignment) for clause in clauses)

        def undo_to(mark: int) -> None:
            while len(trail) > mark:
                del assignment[trail.pop()]

        def pick_branch() -> Optional[int]:
            counts: Dict[int, int] = {}
            for clause in clauses:
                if _satisfied(clause, assignment):
                    continue
                for literal in clause:
                    var = abs(literal)
                    if var not in assignment:
                        counts[var] = counts.get(var, 0) + 1
            if not counts:
                return None
            # classical heuristic: the column covering the most rows
            return max(sorted(counts), key=lambda var: counts[var])

        # ---------------- main DFS ----------------
        ok = propagate()
        descending = ok
        while True:
            if deadline is not None and time.monotonic() > deadline:
                status = UNKNOWN
                break
            if self._max_nodes is not None and self.stats.decisions >= self._max_nodes:
                status = UNKNOWN
                break
            if options.should_stop is not None and options.should_stop():
                self.stats.interrupted = True
                status = UNKNOWN
                break
            if options.external_bound is not None and not objective.is_constant:
                imported = options.external_bound()
                if imported is not None and imported - objective.offset < upper:
                    upper = imported - objective.offset
                    best = None  # the model lives elsewhere
                    external_cost = imported
                    self.stats.external_bounds += 1

            prune = not descending
            if descending:
                cost = path_cost()
                if cost >= upper:
                    self.stats.prunings += 1
                    prune = True
                elif all_satisfied():
                    solution = dict(assignment)
                    for var in self._instance.variables():
                        solution.setdefault(var, 0)
                    upper = cost
                    best = solution
                    external_cost = None
                    self.stats.solutions_found += 1
                    if tracer.enabled:
                        tracer.emit(
                            IncumbentEvent(
                                cost=cost + objective.offset,
                                decisions=self.stats.decisions,
                            )
                        )
                    if options.on_incumbent is not None:
                        options.on_incumbent(
                            cost + objective.offset, dict(solution)
                        )
                    prune = True
                else:
                    with self._timer.phase("lower_bound.mis"):
                        bound = self._mis.compute(assignment)
                    self.stats.lower_bound_calls += 1
                    pruned = bound.infeasible or cost + bound.value >= upper
                    if tracer.enabled:
                        tracer.emit(
                            LowerBoundEvent(
                                method="mis",
                                value=bound.value,
                                path=cost,
                                level=len(stack),
                                infeasible=bound.infeasible,
                                pruned=pruned,
                            )
                        )
                    if pruned:
                        self.stats.prunings += 1
                        prune = True

            if not prune:
                var = pick_branch()
                if var is None:  # pragma: no cover - propagate() guarantees
                    # an unassigned literal in every unsatisfied clause
                    raise AssertionError("no branch variable at an open node")
                self.stats.decisions += 1
                mark = len(trail)
                stack.append(_Frame(var, 0, mark))  # try 1 first, then 0
                descending = assign(var, 1) and propagate()
                continue

            # backtrack chronologically
            while stack:
                frame = stack[-1]
                undo_to(frame.trail_mark)
                if frame.next_value is None:
                    stack.pop()
                    continue
                value, frame.next_value = frame.next_value, None
                descending = assign(frame.var, value) and propagate()
                break
            else:
                break  # root exhausted

        if status is None:
            if best is not None:
                status = (
                    SATISFIABLE if self._instance.is_satisfaction else OPTIMAL
                )
            elif external_cost is not None:
                status = OPTIMAL
            else:
                status = UNSATISFIABLE
        self.stats.elapsed = time.monotonic() - start
        self.stats.phase_times = self._timer.snapshot()
        if best is not None:
            best_cost = upper + objective.offset
        else:
            best_cost = external_cost
        if status == SATISFIABLE:
            best_cost = objective.offset
        if tracer.enabled:
            tracer.emit(
                ResultEvent(
                    status=status,
                    cost=best_cost,
                    decisions=self.stats.decisions,
                )
            )
            tracer.flush()
        return SolveResult(
            status,
            best_cost=best_cost,
            best_assignment=best,
            stats=self.stats,
            solver_name=self.name,
        )


def _satisfied(clause: Set[int], assignment: Dict[int, int]) -> bool:
    for literal in clause:
        value = assignment.get(abs(literal))
        if value is not None and (value == 1) == (literal > 0):
            return True
    return False


def _is_false(literal: int, assignment: Dict[int, int]) -> bool:
    value = assignment.get(abs(literal))
    return value is not None and (value == 1) != (literal > 0)
