"""Unified solver API: the registry and the :func:`solve` façade.

Every solver in the repository — the paper's bsolo in all its
lower-bounding configurations, the Table 1 comparators, the classical
covering solver, the brute-force oracle and the multiprocessing
portfolio — registers here under a string name with one uniform
constructor shape ``factory(instance, options) -> solver`` where the
solver exposes ``.solve() -> SolveResult`` and ``.name``.

Typical use::

    from repro.api import solve

    result = solve(instance, solver="bsolo", timeout=10.0)
    print(result.status, result.best_cost, result.model)

The registry is what the CLI's ``--solver`` flag, the experiment
harness, and the portfolio's worker specs all resolve names through, so
``("bsolo-mis", options)`` means the same solver everywhere.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .baselines.brute_force import BruteForceSolver
from .baselines.covering_bnb import CoveringBnBSolver
from .baselines.cutting_planes import CuttingPlanesSolver
from .baselines.linear_search import LinearSearchSolver
from .baselines.milp import MILPSolver
from .core.options import (
    HYBRID,
    LGR,
    LPR,
    MIS,
    PLAIN,
    SolverOptions,
    UnsupportedOptionError,
)
from .core.result import SolveResult
from .core.solver import BsoloSolver
from .incremental import SolverSession, make_session
from .pb.instance import PBInstance

#: name -> (factory, canonical_name, description)
_Factory = Callable[[PBInstance, Optional[SolverOptions]], object]
_REGISTRY: Dict[str, Tuple[_Factory, str, str]] = {}


class UnknownSolverError(ValueError):
    """The requested solver name is not in the registry."""


def register_solver(
    name: str,
    factory: _Factory,
    description: str = "",
    aliases: Tuple[str, ...] = (),
) -> None:
    """Register ``factory(instance, options) -> solver`` under ``name``.

    ``aliases`` resolve to the same factory but are not listed among the
    canonical names.  Re-registering a name replaces it (tests use this
    to inject deliberately broken solvers).
    """
    _REGISTRY[name] = (factory, name, description)
    for alias in aliases:
        _REGISTRY[alias] = (factory, name, description)


def available_solvers(include_aliases: bool = False) -> List[str]:
    """Registered solver names, sorted; canonical names only unless
    ``include_aliases``."""
    if include_aliases:
        return sorted(_REGISTRY)
    return sorted(
        name for name, (_, canonical, _desc) in _REGISTRY.items()
        if name == canonical
    )


def solver_descriptions() -> Dict[str, str]:
    """Canonical name -> one-line description (for ``--help`` output)."""
    return {
        name: desc
        for name, (_, canonical, desc) in sorted(_REGISTRY.items())
        if name == canonical
    }


def canonical_name(name: str) -> str:
    """Resolve an alias to its canonical registry name."""
    try:
        return _REGISTRY[name][1]
    except KeyError:
        raise UnknownSolverError(
            "unknown solver %r (choose from %s)"
            % (name, ", ".join(available_solvers(include_aliases=True)))
        ) from None


def make_solver(
    instance: PBInstance,
    solver: str = "bsolo",
    options: Optional[SolverOptions] = None,
    *,
    assumptions: Optional[Sequence[int]] = None,
):
    """Instantiate a registered solver for one instance.

    ``assumptions`` binds literals the solve must respect (see
    :meth:`repro.core.solver.BsoloSolver.solve`).  Solvers advertise
    support via a truthy ``supports_assumptions`` attribute plus a
    ``set_assumptions`` method; requesting assumptions from any other
    solver raises :class:`UnsupportedOptionError` — never a silent
    unconditioned solve.
    """
    try:
        factory = _REGISTRY[solver][0]
    except KeyError:
        raise UnknownSolverError(
            "unknown solver %r (choose from %s)"
            % (solver, ", ".join(available_solvers(include_aliases=True)))
        ) from None
    built = factory(instance, options)
    if assumptions is not None:
        if not getattr(built, "supports_assumptions", False) or not hasattr(
            built, "set_assumptions"
        ):
            raise UnsupportedOptionError(
                "solver %r does not support assumptions=" % solver
            )
        built.set_assumptions(list(assumptions))
    return built


#: Old positional order of :func:`solve`'s tail parameters, for the
#: one-release deprecation shim below.
_SOLVE_POSITIONAL_SHIM = (
    "timeout",
    "propagation",
    "tracer",
    "profile",
    "metrics",
    "hotspot",
)


def solve(
    instance: PBInstance,
    solver: str = "bsolo",
    options: Optional[SolverOptions] = None,
    *deprecated_positional,
    assumptions: Optional[Sequence[int]] = None,
    timeout: Optional[float] = None,
    propagation: Optional[str] = None,
    tracer=None,
    profile: Optional[bool] = None,
    metrics=None,
    hotspot=None,
) -> SolveResult:
    """Solve ``instance`` with any registered solver; the façade.

    ``assumptions`` are literals the reported result must respect
    (solvers without assumption support raise
    :class:`UnsupportedOptionError`).  ``timeout`` (seconds) overrides
    ``options.time_limit`` when given; ``propagation`` overrides
    ``options.propagation`` (a backend name from
    :func:`repro.engine.available_engines`).  The observability
    instruments — ``tracer`` (a :class:`repro.obs.Tracer`), ``profile``
    (phase timing on/off), ``metrics`` (a
    :class:`repro.obs.MetricsRegistry`) and ``hotspot`` (a
    :class:`repro.obs.HotspotProfiler`) — likewise override the
    corresponding options fields when given, so instrumented one-off
    runs need no explicit :class:`SolverOptions`.

    All of the above are keyword-only.  Positional callers from the old
    ``solve(instance, solver, options, timeout, propagation, ...)``
    signature still work for one release behind a
    :class:`DeprecationWarning`.  For backward compatibility with the
    original ``solve(instance, options)`` signature, a
    :class:`SolverOptions` passed as the second positional argument
    selects the default bsolo solver with those options.
    """
    if isinstance(solver, SolverOptions):
        if options is not None:
            raise TypeError("options passed twice")
        solver, options = "bsolo", solver
    if deprecated_positional:
        if len(deprecated_positional) > len(_SOLVE_POSITIONAL_SHIM):
            raise TypeError(
                "solve() takes at most %d positional arguments (%d given)"
                % (3 + len(_SOLVE_POSITIONAL_SHIM), 3 + len(deprecated_positional))
            )
        warnings.warn(
            "passing instrument arguments to repro.api.solve() positionally "
            "is deprecated and will be removed next release; use keywords "
            "(timeout=, propagation=, tracer=, profile=, metrics=, hotspot=)",
            DeprecationWarning,
            stacklevel=2,
        )
        provided = {
            "timeout": timeout,
            "propagation": propagation,
            "tracer": tracer,
            "profile": profile,
            "metrics": metrics,
            "hotspot": hotspot,
        }
        for name, value in zip(_SOLVE_POSITIONAL_SHIM, deprecated_positional):
            if provided[name] is not None:
                raise TypeError("solve() got %s= twice" % name)
            provided[name] = value
        timeout = provided["timeout"]
        propagation = provided["propagation"]
        tracer = provided["tracer"]
        profile = provided["profile"]
        metrics = provided["metrics"]
        hotspot = provided["hotspot"]
    overrides = {}
    if timeout is not None:
        overrides["time_limit"] = timeout
    if propagation is not None:
        overrides["propagation"] = propagation
    if tracer is not None:
        overrides["tracer"] = tracer
    if profile is not None:
        overrides["profile"] = profile
    if metrics is not None:
        overrides["metrics"] = metrics
    if hotspot is not None:
        overrides["hotspot"] = hotspot
    if overrides:
        options = (options or SolverOptions()).replace(**overrides)
    return make_solver(
        instance, solver, options, assumptions=assumptions
    ).solve()


# ----------------------------------------------------------------------
# Built-in registrations
# ----------------------------------------------------------------------
def _bsolo_factory(lower_bound: Optional[str]) -> _Factory:
    def factory(instance: PBInstance, options: Optional[SolverOptions]):
        opts = options or SolverOptions()
        if lower_bound is not None and opts.lower_bound != lower_bound:
            opts = opts.replace(lower_bound=lower_bound)
        return BsoloSolver(instance, opts)

    return factory


register_solver(
    "bsolo", _bsolo_factory(None),
    "the paper's hybrid solver; lower bound from options (default lpr)",
)
register_solver(
    "bsolo-plain", _bsolo_factory(PLAIN),
    "bsolo without lower bounding (Table 1 'plain')",
)
register_solver(
    "bsolo-mis", _bsolo_factory(MIS),
    "bsolo with the MIS lower bound (Section 3.1)",
)
register_solver(
    "bsolo-lgr", _bsolo_factory(LGR),
    "bsolo with the Lagrangian-relaxation bound (Section 3.2)",
)
register_solver(
    "bsolo-lpr", _bsolo_factory(LPR),
    "bsolo with the LP-relaxation bound (Section 3.3)",
)
register_solver(
    "bsolo-hybrid", _bsolo_factory(HYBRID),
    "bsolo with the MIS prefilter + LP bound (extension)",
)
register_solver(
    "linear-search", LinearSearchSolver,
    "SAT-based linear search on the cost function (PBS-like)",
    aliases=("pbs",),
)
register_solver(
    "cutting-planes", CuttingPlanesSolver,
    "incremental linear search with cardinality strengthening (Galena-like)",
    aliases=("galena",),
)
register_solver(
    "milp", MILPSolver,
    "LP branch & bound without SAT techniques (CPLEX stand-in)",
    aliases=("cplex",),
)
register_solver(
    "covering-bnb", CoveringBnBSolver,
    "classical covering branch & bound (scherzo-like; clause-only instances)",
    aliases=("scherzo",),
)
register_solver(
    "brute-force", BruteForceSolver,
    "exhaustive enumeration oracle (small instances only)",
)

# Alias audit: "pbs", "galena", "cplex" and "scherzo" are the paper's
# tool names for the corresponding baselines — supported on purpose, not
# deprecated.  The repository's only *deprecated* alias
# (repro.lp.integer_floor_bound) finished its window and was removed.


def _portfolio_factory(instance: PBInstance, options: Optional[SolverOptions]):
    # imported lazily: repro.portfolio builds its workers through this
    # registry, so importing it at module load would be circular
    from .portfolio import PortfolioSolver

    return PortfolioSolver(instance, options=options)


register_solver(
    "portfolio", _portfolio_factory,
    "process-parallel portfolio of diversified solvers with incumbent exchange",
)
