"""repro: reproduction of "Effective Lower Bounding Techniques for
Pseudo-Boolean Optimization" (Manquinho & Marques-Silva, DATE 2005).

Public API tour
---------------
Build a model and solve it::

    from repro import PBModel, SolverOptions, solve

    model = PBModel()
    x, y, z = model.new_variables("x", "y", "z")
    model.add_clause([x, y])
    model.add_at_most([y, z], 1)
    model.minimize([(3, x), (2, y), (2, z)])
    result = solve(model.build(), SolverOptions(lower_bound="lpr"))
    print(result.status, result.best_cost)

Load the OPB interchange format with :func:`parse_file`, compare against
the baselines in :mod:`repro.baselines`, generate EDA-style benchmark
instances with :mod:`repro.benchgen`, and regenerate the paper's Table 1
with :func:`repro.experiments.generate_table1`.
"""

from .core.options import SolverOptions
from .core.stats import SolverStats
from .core.result import (
    OPTIMAL,
    SATISFIABLE,
    SolveResult,
    UNKNOWN,
    UNSATISFIABLE,
)
from .core.solver import BsoloSolver, solve
from .obs import (
    JsonlTracer,
    NullTracer,
    PhaseTimer,
    Tracer,
    format_profile,
    format_progress,
    read_trace,
)
from .pb.builder import PBModel
from .pb.constraints import Constraint
from .pb.instance import PBInstance
from .pb.objective import Objective
from .pb.opb import parse, parse_file, write, write_file

__version__ = "1.0.0"

__all__ = [
    "BsoloSolver",
    "Constraint",
    "JsonlTracer",
    "NullTracer",
    "OPTIMAL",
    "Objective",
    "PBInstance",
    "PBModel",
    "PhaseTimer",
    "SATISFIABLE",
    "SolveResult",
    "SolverOptions",
    "SolverStats",
    "Tracer",
    "UNKNOWN",
    "UNSATISFIABLE",
    "__version__",
    "format_profile",
    "format_progress",
    "parse",
    "parse_file",
    "read_trace",
    "solve",
    "write",
    "write_file",
]
