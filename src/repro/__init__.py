"""repro: reproduction of "Effective Lower Bounding Techniques for
Pseudo-Boolean Optimization" (Manquinho & Marques-Silva, DATE 2005).

Public API tour
---------------
Build a model and solve it through the façade::

    from repro import PBModel, solve

    model = PBModel()
    x, y, z = model.new_variables("x", "y", "z")
    model.add_clause([x, y])
    model.add_at_most([y, z], 1)
    model.minimize([(3, x), (2, y), (2, z)])
    result = solve(model.build(), solver="bsolo-lpr", timeout=10.0)
    print(result.status, result.best_cost)

Any registered solver works — ``available_solvers()`` lists them, and
``solve(instance, solver="portfolio")`` (or :func:`solve_portfolio`)
runs the parallel portfolio with incumbent exchange.  Load the OPB
interchange format with :func:`parse_file`, compare against the
baselines in :mod:`repro.baselines`, generate EDA-style benchmark
instances with :mod:`repro.benchgen`, and regenerate the paper's
Table 1 with :func:`repro.experiments.generate_table1`.
"""

from .api import (
    UnknownSolverError,
    available_solvers,
    canonical_name,
    make_session,
    make_solver,
    register_solver,
    solve,
    solver_descriptions,
)
from .core.options import SolverOptions, UnsupportedOptionError
from .core.stats import SolverStats
from .core.result import (
    OPTIMAL,
    SATISFIABLE,
    SolveResult,
    UNKNOWN,
    UNSATISFIABLE,
)
from .core.solver import BsoloSolver
from .obs import (
    JsonlTracer,
    NullTracer,
    PhaseTimer,
    Tracer,
    format_profile,
    format_progress,
    read_trace,
)
from .pb.builder import PBModel
from .pb.constraints import Constraint
from .pb.instance import PBInstance
from .pb.objective import Objective
from .incremental import SessionStats, SolverSession
from .pb.opb import (
    parse,
    parse_file,
    parse_wbo,
    parse_wbo_file,
    write,
    write_file,
    write_wbo,
    write_wbo_file,
)
from .pb.canonical import CanonicalForm, canonical_form, canonical_hash
from .portfolio import (
    PortfolioSolver,
    PortfolioStats,
    WorkerSpec,
    solve_portfolio,
)
from .service import BackgroundServer, ServiceClient, ServiceConfig
from .wbo import SoftConstraint, WBOInstance, WBOSolver, solve_wbo

__version__ = "1.0.0"

__all__ = [
    "BackgroundServer",
    "BsoloSolver",
    "CanonicalForm",
    "Constraint",
    "JsonlTracer",
    "NullTracer",
    "OPTIMAL",
    "Objective",
    "PBInstance",
    "PBModel",
    "PhaseTimer",
    "PortfolioSolver",
    "PortfolioStats",
    "SATISFIABLE",
    "ServiceClient",
    "ServiceConfig",
    "SessionStats",
    "SoftConstraint",
    "SolveResult",
    "SolverOptions",
    "SolverSession",
    "SolverStats",
    "Tracer",
    "UNKNOWN",
    "UNSATISFIABLE",
    "UnknownSolverError",
    "UnsupportedOptionError",
    "WBOInstance",
    "WBOSolver",
    "WorkerSpec",
    "__version__",
    "available_solvers",
    "canonical_form",
    "canonical_hash",
    "canonical_name",
    "format_profile",
    "format_progress",
    "make_session",
    "make_solver",
    "parse",
    "parse_file",
    "parse_wbo",
    "parse_wbo_file",
    "read_trace",
    "register_solver",
    "solve",
    "solve_portfolio",
    "solve_wbo",
    "solver_descriptions",
    "write",
    "write_file",
    "write_wbo",
    "write_wbo_file",
]
