"""Perturbation streams and soft-constraint families for incremental
benchmarks.

A *perturbation stream* is a base :class:`~repro.pb.instance.PBInstance`
plus an ordered list of :class:`StreamStep`\\ s.  Each step describes one
``solve_under`` call on a :class:`~repro.incremental.SolverSession`
together with the session mutations (push a constraint frame, pop,
replace the objective) applied immediately before it.  The same step
list can be replayed *cold* — one fresh solver per step on the
materialised effective instance — which is exactly what
``repro.experiments.increbench`` does to measure warm-session speedups
under a lockstep-equality oracle.

Three stream flavours mirror the three reuse paths of a session:

* :func:`assumption_stream` — assumptions only; the instance never
  changes, so retained learned constraints, branching activity, the MIS
  trail cache and the warm LP root all carry over between calls.  This
  is the family expected to show the largest warm-over-cold speedup.
* :func:`constraint_stream` — pushes and pops constraint frames (with
  occasional assumptions), exercising frame-tagged learned-constraint
  cleanup and bounder rebuilds.
* :func:`objective_stream` — replaces the objective between calls,
  exercising ``set_objective`` and bound-state invalidation.

The soft-constraint family (:func:`generate_random_wbo`,
:func:`wbo_suite`) produces :class:`~repro.wbo.WBOInstance` inputs whose
hard part is planted-satisfiable, so every instance has a finite optimum
for the WBO solver modes to agree on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..pb.constraints import Constraint
from ..pb.instance import PBInstance
from ..pb.objective import Objective
from .random_pb import generate_planted


@dataclass(frozen=True)
class StreamStep:
    """One ``solve_under`` call plus the mutations applied before it.

    Replay order on a session: ``pop`` first (if set), then ``push`` (a
    new frame containing exactly that constraint), then ``objective``
    replacement, then ``solve_under(assumptions)``.  A cold replayer
    applies the same mutations to an explicit frame stack and solves the
    materialised instance with the same assumptions.
    """

    assumptions: Tuple[int, ...] = ()
    push: Optional[Constraint] = None
    pop: bool = False
    objective: Optional[Objective] = None


@dataclass(frozen=True)
class PerturbationStream:
    """A base instance plus the ordered steps replayed against it."""

    name: str
    instance: PBInstance
    steps: Tuple[StreamStep, ...]
    #: planted witness of the base instance (diagnostics only)
    witness: Dict[int, int] = field(default_factory=dict)

    def materialize(self, upto: int) -> Tuple[PBInstance, Tuple[int, ...]]:
        """Effective (instance, assumptions) for a cold solve of step
        ``upto``: base constraints plus the live frame stack after
        replaying the first ``upto + 1`` steps' mutations, under the
        objective in force at that step."""
        frames: List[Constraint] = []
        marks: List[int] = []
        objective = self.instance.objective
        for step in self.steps[: upto + 1]:
            if step.pop and marks:
                del frames[marks.pop():]
            if step.push is not None:
                marks.append(len(frames))
                frames.append(step.push)
            if step.objective is not None:
                objective = step.objective
        effective = PBInstance(
            list(self.instance.constraints) + frames,
            objective,
            num_variables=self.instance.num_variables,
        )
        return effective, self.steps[upto].assumptions


def _assumption_draw(
    rng: random.Random,
    witness: Dict[int, int],
    num_variables: int,
    width: int,
    consistent_bias: float,
) -> Tuple[int, ...]:
    """Draw ``width`` assumption literals over distinct variables,
    biased toward the planted witness polarity so most steps stay
    satisfiable (the occasional contradicted draw exercises the
    assumption-core path)."""
    variables = rng.sample(range(1, num_variables + 1), width)
    literals = []
    for var in variables:
        aligned = var if witness.get(var, 1) == 1 else -var
        literals.append(
            aligned if rng.random() < consistent_bias else -aligned
        )
    return tuple(literals)


def _witness_constraint(
    rng: random.Random,
    witness: Dict[int, int],
    num_variables: int,
    max_arity: int = 4,
    max_coefficient: int = 3,
) -> Constraint:
    """A random >= constraint satisfied by the witness (so pushing it
    keeps the planted base instance satisfiable)."""
    while True:
        arity = rng.randint(2, min(max_arity, num_variables))
        variables = rng.sample(range(1, num_variables + 1), arity)
        terms = []
        true_supply = 0
        for var in variables:
            coef = rng.randint(1, max_coefficient)
            if rng.random() < 0.75:
                lit = var if witness[var] == 1 else -var
            else:
                lit = -var if witness[var] == 1 else var
            if (witness[var] == 1) == (lit > 0):
                true_supply += coef
            terms.append((coef, lit))
        if true_supply == 0:
            continue
        constraint = Constraint.greater_equal(terms, rng.randint(1, true_supply))
        if constraint.is_tautology or constraint.is_unsatisfiable:
            continue
        return constraint


def assumption_stream(
    num_variables: int = 24,
    num_constraints: int = 40,
    steps: int = 12,
    width: int = 3,
    consistent_bias: float = 0.8,
    seed: int = 0,
) -> PerturbationStream:
    """Assumption-only stream: the instance is fixed, every step just
    binds ``width`` fresh assumption literals."""
    rng = random.Random(seed)
    instance, witness = generate_planted(
        num_variables=num_variables,
        num_constraints=num_constraints,
        seed=rng.randrange(1 << 30),
    )
    step_list = tuple(
        StreamStep(
            assumptions=_assumption_draw(
                rng, witness, num_variables, width, consistent_bias
            )
        )
        for _ in range(steps)
    )
    return PerturbationStream("assumption", instance, step_list, witness)


def constraint_stream(
    num_variables: int = 20,
    num_constraints: int = 30,
    steps: int = 10,
    seed: int = 0,
) -> PerturbationStream:
    """Push/pop stream: steps alternately push a witness-consistent
    constraint frame or pop the most recent one, each followed by a
    solve (sometimes under a narrow assumption)."""
    rng = random.Random(seed)
    instance, witness = generate_planted(
        num_variables=num_variables,
        num_constraints=num_constraints,
        seed=rng.randrange(1 << 30),
    )
    step_list: List[StreamStep] = []
    depth = 0
    for _ in range(steps):
        pop = depth > 0 and rng.random() < 0.35
        if pop:
            depth -= 1
        push = None
        if rng.random() < 0.7:
            push = _witness_constraint(rng, witness, num_variables)
            depth += 1
        assumptions: Tuple[int, ...] = ()
        if rng.random() < 0.4:
            assumptions = _assumption_draw(rng, witness, num_variables, 2, 0.9)
        step_list.append(
            StreamStep(assumptions=assumptions, push=push, pop=pop)
        )
    return PerturbationStream(
        "constraint", instance, tuple(step_list), witness
    )


def objective_stream(
    num_variables: int = 20,
    num_constraints: int = 30,
    steps: int = 8,
    max_cost: int = 6,
    seed: int = 0,
) -> PerturbationStream:
    """Objective-perturbation stream: each step re-prices a random
    subset of the cost function, then re-solves (no assumptions)."""
    rng = random.Random(seed)
    instance, witness = generate_planted(
        num_variables=num_variables,
        num_constraints=num_constraints,
        max_cost=max_cost,
        seed=rng.randrange(1 << 30),
    )
    costs = dict(instance.objective.costs)
    step_list: List[StreamStep] = []
    for index in range(steps):
        if index > 0:
            for var in rng.sample(
                range(1, num_variables + 1), max(1, num_variables // 4)
            ):
                costs[var] = rng.randint(0, max_cost)
        step_list.append(
            StreamStep(objective=Objective(dict(costs)))
        )
    return PerturbationStream("objective", instance, tuple(step_list), witness)


STREAM_BUILDERS = {
    "assumption": assumption_stream,
    "constraint": constraint_stream,
    "objective": objective_stream,
}


def generate_random_wbo(
    num_variables: int = 12,
    num_hard: int = 10,
    num_soft: int = 8,
    max_weight: int = 5,
    top_probability: float = 0.0,
    seed: int = 0,
):
    """A random :class:`~repro.wbo.WBOInstance` whose hard part is
    planted-satisfiable; soft constraints are unconstrained random
    clauses/inequalities and may conflict with each other."""
    from ..wbo.model import SoftConstraint, WBOInstance

    rng = random.Random(seed)
    hard, _witness = generate_planted(
        num_variables=num_variables,
        num_constraints=num_hard,
        seed=rng.randrange(1 << 30),
    )
    soft: List[SoftConstraint] = []
    while len(soft) < num_soft:
        arity = rng.randint(1, min(3, num_variables))
        variables = rng.sample(range(1, num_variables + 1), arity)
        terms = [
            (rng.randint(1, 3), var if rng.random() < 0.5 else -var)
            for var in variables
        ]
        total = sum(coef for coef, _ in terms)
        constraint = Constraint.greater_equal(terms, rng.randint(1, total))
        if constraint.is_tautology or constraint.is_unsatisfiable:
            continue
        soft.append(SoftConstraint(constraint, rng.randint(1, max_weight)))
    top = None
    if rng.random() < top_probability:
        top = rng.randint(1, sum(item.weight for item in soft))
    return WBOInstance(
        hard.constraints,
        soft,
        num_variables=num_variables,
        top=top,
    )


def wbo_suite(count: int = 3, scale: float = 1.0, seed: int = 7000) -> List:
    """A small suite of random WBO instances for benchmark harnesses;
    ``scale`` grows/shrinks the variable and constraint counts."""
    rng = random.Random(seed)
    return [
        generate_random_wbo(
            num_variables=max(6, int(12 * scale)),
            num_hard=max(4, int(10 * scale)),
            num_soft=max(3, int(8 * scale)),
            seed=rng.randrange(1 << 30),
        )
        for _ in range(count)
    ]
