"""Logic-minimization covering instances (the paper's MCNC family, [17]).

The ``5xp1.b`` / ``9sym.b`` / ... benchmarks are (mostly unate) covering
problems from two-level logic minimization: every minterm of the target
function must be covered by at least one selected implicant, and the
total implicant cost (literal count) is minimized.  The ``.b`` variants
are *binate*: selecting some implicants excludes or requires others.

The generator builds a random coverage matrix with planted feasibility
(every minterm receives at least one candidate implicant), costs equal to
implicant sizes, and optional binate structure (mutual-exclusion and
implication clauses between overlapping implicants).
"""

from __future__ import annotations

import random
from typing import List

from ..pb.builder import PBModel
from ..pb.instance import PBInstance


def generate_covering(
    minterms: int = 20,
    implicants: int = 14,
    density: float = 0.25,
    max_cost: int = 8,
    binate: bool = True,
    exclusion_pairs: int = 3,
    implication_pairs: int = 2,
    seed: int = 0,
) -> PBInstance:
    """Build a (binate) covering PBO instance.

    Every minterm is guaranteed at least one covering implicant; binate
    clauses are added so the overall instance stays satisfiable (the
    all-ones selection satisfies implications, and exclusions are only
    added between implicants with individual alternatives).
    """
    if minterms < 1 or implicants < 2:
        raise ValueError("need at least one minterm and two implicants")
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    rng = random.Random(seed)
    model = PBModel()
    selectors = [model.new_variable("imp%d" % i) for i in range(implicants)]
    costs = [rng.randint(1, max_cost) for _ in range(implicants)]

    covers: List[List[int]] = [[] for _ in range(minterms)]
    for row in range(minterms):
        for col in range(implicants):
            if rng.random() < density:
                covers[row].append(col)
        if not covers[row]:
            covers[row].append(rng.randrange(implicants))
        # guarantee an alternative so binate exclusions cannot wipe a row
        if len(covers[row]) == 1:
            other = rng.randrange(implicants)
            if other != covers[row][0]:
                covers[row].append(other)
    for row in range(minterms):
        model.add_clause([selectors[col] for col in covers[row]])

    if binate:
        # mutual exclusions between implicants that both have alternatives
        # in every row they cover
        safe = _implicants_with_alternatives(covers, implicants)
        rng.shuffle(safe)
        added = 0
        for index in range(len(safe) - 1):
            if added >= exclusion_pairs:
                break
            a, b = safe[index], safe[index + 1]
            if a != b:
                model.add_clause([-selectors[a], -selectors[b]])
                added += 1
        # implications: choosing a forces its "companion" b
        for _ in range(implication_pairs):
            a, b = rng.sample(range(implicants), 2)
            model.add_clause([-selectors[a], selectors[b]])

    model.minimize(
        [(costs[i], selectors[i]) for i in range(implicants)]
    )
    return model.build()


def _implicants_with_alternatives(covers: List[List[int]], implicants: int) -> List[int]:
    """Implicants that are never the sole cover of any minterm."""
    sole = set()
    for row in covers:
        if len(row) == 1:
            sole.add(row[0])
    return [i for i in range(implicants) if i not in sole]


def covering_suite(count: int = 10, seed: int = 1991, **kwargs) -> List[PBInstance]:
    """A seeded family mirroring the MCNC rows of Table 1."""
    return [
        generate_covering(seed=seed + index, **kwargs) for index in range(count)
    ]
