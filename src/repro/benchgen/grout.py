"""Global-routing instance generator (the paper's "grout" family, [2]).

The grout-4-3-* benchmarks used by Aloul et al. encode global routing on
a grid: every net picks one of its candidate routes, channel capacities
bound how many routes may share a grid edge, and the objective minimizes
total routed wirelength.  This generator reproduces that structure:

* an ``R x C`` grid graph of channels, each with capacity ``cap``;
* ``K`` nets with random terminal pairs; candidate routes per net are the
  two L-shaped paths plus a few Z-shaped detours;
* variables ``x_{n,p}``: net ``n`` uses route ``p`` (exactly-one per
  net); per-edge capacity constraints ``sum x <= cap`` over the routes
  crossing the edge; cost of a route = its length.

Congestion (many nets, low capacity) forces detours, which is what makes
the cost function informative — the regime where the paper shows lower
bounding pays off.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..pb.builder import PBModel
from ..pb.instance import PBInstance

#: A grid cell.
Cell = Tuple[int, int]
#: An undirected grid edge (ordered pair of adjacent cells).
Edge = Tuple[Cell, Cell]


def _edge(a: Cell, b: Cell) -> Edge:
    return (a, b) if a <= b else (b, a)


def _straight(a: Cell, b: Cell) -> List[Edge]:
    """Edges of the axis-aligned segment from a to b (same row or col)."""
    (r1, c1), (r2, c2) = a, b
    edges: List[Edge] = []
    if r1 == r2:
        step = 1 if c2 > c1 else -1
        for c in range(c1, c2, step):
            edges.append(_edge((r1, c), (r1, c + step)))
    elif c1 == c2:
        step = 1 if r2 > r1 else -1
        for r in range(r1, r2, step):
            edges.append(_edge((r, c1), (r + step, c1)))
    else:  # pragma: no cover - callers pass aligned cells
        raise ValueError("cells are not aligned")
    return edges


def _l_paths(source: Cell, target: Cell) -> List[List[Edge]]:
    """The two L-shaped routes (or the single straight one)."""
    (r1, c1), (r2, c2) = source, target
    if r1 == r2 or c1 == c2:
        return [_straight(source, target)]
    via_first = _straight(source, (r1, c2)) + _straight((r1, c2), target)
    via_second = _straight(source, (r2, c1)) + _straight((r2, c1), target)
    return [via_first, via_second]


def _z_paths(source: Cell, target: Cell, rows: int, cols: int, rng: random.Random,
             count: int) -> List[List[Edge]]:
    """Detour routes through a random intermediate row/column."""
    (r1, c1), (r2, c2) = source, target
    paths: List[List[Edge]] = []
    for _ in range(count):
        if rng.random() < 0.5 and rows > 1:
            mid_r = rng.randrange(rows)
            path = (
                _straight(source, (mid_r, c1))
                + _straight((mid_r, c1), (mid_r, c2))
                + _straight((mid_r, c2), target)
            )
        elif cols > 1:
            mid_c = rng.randrange(cols)
            path = (
                _straight(source, (r1, mid_c))
                + _straight((r1, mid_c), (r2, mid_c))
                + _straight((r2, mid_c), target)
            )
        else:
            continue
        if path:
            paths.append(path)
    return paths


def generate_routing(
    rows: int = 4,
    cols: int = 4,
    nets: int = 6,
    capacity: int = 2,
    detours: int = 2,
    congested: bool = False,
    seed: int = 0,
) -> PBInstance:
    """Build a grout-style routing PBO instance.

    Deterministic under ``seed``.  Minimizes total wirelength.  With
    ``congested`` every net runs from the left edge region to the right
    edge region, so all routes compete for the vertical cut in the middle
    of the grid — reliably producing the congestion that forces detours
    (random endpoints often leave the grid uncontended).  Capacity can
    still make extreme configurations infeasible, which is a legitimate
    instance too.
    """
    if rows < 2 or cols < 2:
        raise ValueError("grid must be at least 2x2")
    if nets < 1:
        raise ValueError("need at least one net")
    rng = random.Random(seed)
    model = PBModel()

    edge_users: Dict[Edge, List[int]] = {}
    cost_terms: List[Tuple[int, int]] = []
    for net in range(nets):
        while True:
            if congested:
                source = (rng.randrange(rows), rng.randrange(max(1, cols // 3)))
                target = (
                    rng.randrange(rows),
                    cols - 1 - rng.randrange(max(1, cols // 3)),
                )
            else:
                source = (rng.randrange(rows), rng.randrange(cols))
                target = (rng.randrange(rows), rng.randrange(cols))
            if source != target:
                break
        candidates = _l_paths(source, target)
        candidates.extend(_z_paths(source, target, rows, cols, rng, detours))
        # dedupe identical edge sets
        unique: List[List[Edge]] = []
        seen = set()
        for path in candidates:
            key = frozenset(path)
            if key not in seen:
                seen.add(key)
                unique.append(path)
        selectors = []
        for index, path in enumerate(unique):
            var = model.new_variable("n%d_p%d" % (net, index))
            selectors.append(var)
            cost_terms.append((len(path), var))
            for edge in path:
                edge_users.setdefault(edge, []).append(var)
        model.add_exactly(selectors, 1)

    for edge, users in sorted(edge_users.items()):
        if len(users) > capacity:
            model.add_at_most(users, capacity)

    model.minimize(cost_terms)
    return model.build()


def routing_suite(count: int = 10, seed: int = 2005, **kwargs) -> List[PBInstance]:
    """A seeded family mirroring grout-4-3-1..10."""
    return [
        generate_routing(seed=seed + index, **kwargs) for index in range(count)
    ]
