"""Export generated benchmark suites as OPB files.

Writes the four Table 1 families to a directory tree mirroring the
paper's benchmark sets, so the ``bsolo`` CLI (or any OPB-speaking
solver) can be run on them directly::

    instances/
      grout/grout-1.opb ... grout/grout-N.opb
      ptl/ptl-1.opb ...
      mcnc/mcnc-1.opb ...
      acc/acc-1.opb ...
      MANIFEST.txt
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence, Tuple

from ..pb.instance import PBInstance
from ..pb.opb import write_file


def export_suite(
    directory: str,
    families: Dict[str, Tuple[Sequence[PBInstance], Sequence[str]]],
) -> List[str]:
    """Write ``{family: (instances, labels)}`` under ``directory``.

    Returns the list of files written (relative paths).  A MANIFEST.txt
    records per-instance statistics.
    """
    written: List[str] = []
    manifest_lines: List[str] = []
    for family, (instances, labels) in families.items():
        family_dir = os.path.join(directory, family)
        os.makedirs(family_dir, exist_ok=True)
        for instance, label in zip(instances, labels):
            relative = os.path.join(family, "%s.opb" % label)
            write_file(instance, os.path.join(directory, relative))
            written.append(relative)
            stats = instance.statistics()
            manifest_lines.append(
                "%s  vars=%d constraints=%d costed=%d"
                % (
                    relative,
                    stats["variables"],
                    stats["constraints"],
                    stats["costed_variables"],
                )
            )
    manifest_path = os.path.join(directory, "MANIFEST.txt")
    with open(manifest_path, "w") as handle:
        handle.write("\n".join(manifest_lines) + "\n")
    return written


def export_table1_suite(directory: str, count: int = 5, scale: float = 1.0) -> List[str]:
    """Export the exact instance suite used by the Table 1 harness."""
    from ..experiments.table1 import FAMILIES, family_instances

    families = {
        family: family_instances(family, count=count, scale=scale)
        for family in FAMILIES
    }
    return export_suite(directory, families)
