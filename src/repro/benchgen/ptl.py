"""Mixed PTL/CMOS synthesis instances (the paper's [18] family).

Zhu's benchmarks (9symml, C432, my_adder, ...) encode technology mapping
for mixed pass-transistor-logic / static CMOS circuits: every circuit
node is implemented in exactly one style, PTL cells are smaller but long
PTL chains degrade and need buffer insertion, and the objective minimizes
total area — which is why the optimal costs in Table 1 are large area
numbers (4517, 1194, ...).

Model per node ``i`` of a random DAG:

* ``ptl_i`` / ``cmos_i`` with ``ptl_i + cmos_i = 1``;
* per wire ``i -> j``: a PTL-to-PTL connection needs a buffer:
  ``~ptl_i \\/ ~ptl_j \\/ buf_ij`` (buffer pays area too);
* per node with large fanin: PTL is not available (clause ``cmos_i``);
* minimize ``sum area_cmos(i) cmos_i + area_ptl(i) ptl_i + area_buf buf_ij``.

Costs are in area units (tens to hundreds), matching the magnitude of the
original family.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..pb.builder import PBModel
from ..pb.instance import PBInstance


def generate_ptl_mapping(
    nodes: int = 12,
    extra_edges: int = 6,
    cmos_area_range: Tuple[int, int] = (80, 220),
    ptl_area_range: Tuple[int, int] = (30, 120),
    buffer_area: int = 40,
    forced_cmos_fraction: float = 0.15,
    seed: int = 0,
) -> PBInstance:
    """Build a PTL/CMOS mapping PBO instance (always satisfiable:
    all-CMOS is a feasible mapping)."""
    if nodes < 2:
        raise ValueError("need at least two nodes")
    rng = random.Random(seed)
    model = PBModel()

    ptl = [model.new_variable("ptl%d" % i) for i in range(nodes)]
    cmos = [model.new_variable("cmos%d" % i) for i in range(nodes)]
    cost_terms: List[Tuple[int, int]] = []
    for i in range(nodes):
        model.add_exactly([ptl[i], cmos[i]], 1)
        cmos_area = rng.randint(*cmos_area_range)
        ptl_area = rng.randint(*ptl_area_range)
        if ptl_area >= cmos_area:
            ptl_area = max(1, cmos_area - 10)
        cost_terms.append((cmos_area, cmos[i]))
        cost_terms.append((ptl_area, ptl[i]))

    # a connected random DAG: each node i >= 1 has an edge from some j < i
    edges = set()
    for i in range(1, nodes):
        edges.add((rng.randrange(i), i))
    for _ in range(extra_edges):
        j = rng.randrange(1, nodes)
        i = rng.randrange(j)
        edges.add((i, j))

    for i, j in sorted(edges):
        buffer = model.new_variable("buf_%d_%d" % (i, j))
        model.add_clause([-ptl[i], -ptl[j], buffer])
        cost_terms.append((buffer_area, buffer))

    for i in range(nodes):
        if rng.random() < forced_cmos_fraction:
            model.add_clause([cmos[i]])

    model.minimize(cost_terms)
    return model.build()


def ptl_suite(count: int = 10, seed: int = 432, **kwargs) -> List[PBInstance]:
    """A seeded family mirroring the [18] rows of Table 1."""
    return [
        generate_ptl_mapping(seed=seed + index, **kwargs) for index in range(count)
    ]
