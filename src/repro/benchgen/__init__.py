"""Synthetic EDA benchmark generators mirroring Table 1's four families.

The original benchmark files are not redistributable; these generators
emit instances with the same constraint structure (see DESIGN.md section
"Substitutions" for the fidelity argument):

* :func:`generate_routing` / :func:`routing_suite` — grout-style global
  routing ([2]);
* :func:`generate_covering` / :func:`covering_suite` — MCNC-style (binate)
  covering from logic minimization ([17]);
* :func:`generate_ptl_mapping` / :func:`ptl_suite` — mixed PTL/CMOS
  technology mapping ([18]);
* :func:`generate_scheduling` / :func:`scheduling_suite` — tight PB-SAT
  round-robin scheduling ([16], no cost function);
* :func:`generate_random` / :func:`generate_planted` — fuzzing inputs;
* :mod:`repro.benchgen.streams` — perturbation streams for incremental
  sessions and random WBO (soft-constraint) families.
"""

from .acc import generate_scheduling, scheduling_suite
from .export import export_suite, export_table1_suite
from .grout import generate_routing, routing_suite
from .ptl import generate_ptl_mapping, ptl_suite
from .random_pb import generate_planted, generate_random
from .streams import (
    STREAM_BUILDERS,
    PerturbationStream,
    StreamStep,
    assumption_stream,
    constraint_stream,
    generate_random_wbo,
    objective_stream,
    wbo_suite,
)
from .synthesis import covering_suite, generate_covering

__all__ = [
    "PerturbationStream",
    "STREAM_BUILDERS",
    "StreamStep",
    "assumption_stream",
    "constraint_stream",
    "covering_suite",
    "export_suite",
    "export_table1_suite",
    "generate_covering",
    "generate_planted",
    "generate_ptl_mapping",
    "generate_random",
    "generate_random_wbo",
    "generate_routing",
    "generate_scheduling",
    "objective_stream",
    "ptl_suite",
    "routing_suite",
    "scheduling_suite",
    "wbo_suite",
]
