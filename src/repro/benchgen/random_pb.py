"""Random PB instances for fuzzing and property tests.

Two flavours: fully random (may be unsatisfiable), and *planted* (a
random assignment is drawn first and every generated constraint is made
to satisfy it, guaranteeing satisfiability).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..pb.constraints import Constraint
from ..pb.instance import PBInstance
from ..pb.objective import Objective


def generate_random(
    num_variables: int = 8,
    num_constraints: int = 10,
    max_arity: int = 4,
    max_coefficient: int = 4,
    max_cost: int = 6,
    negation_probability: float = 0.4,
    satisfaction_only: bool = False,
    seed: int = 0,
) -> PBInstance:
    """A fully random PB instance (deterministic under ``seed``)."""
    rng = random.Random(seed)
    constraints: List[Constraint] = []
    while len(constraints) < num_constraints:
        arity = rng.randint(1, min(max_arity, num_variables))
        variables = rng.sample(range(1, num_variables + 1), arity)
        terms = [
            (
                rng.randint(1, max_coefficient),
                var if rng.random() >= negation_probability else -var,
            )
            for var in variables
        ]
        total = sum(coef for coef, _ in terms)
        rhs = rng.randint(1, total)
        constraint = Constraint.greater_equal(terms, rhs)
        if constraint.is_tautology or constraint.is_unsatisfiable:
            continue
        constraints.append(constraint)
    objective = (
        Objective({})
        if satisfaction_only
        else Objective(
            {var: rng.randint(0, max_cost) for var in range(1, num_variables + 1)}
        )
    )
    return PBInstance(constraints, objective, num_variables=num_variables)


def generate_planted(
    num_variables: int = 8,
    num_constraints: int = 10,
    max_arity: int = 4,
    max_coefficient: int = 4,
    max_cost: int = 6,
    seed: int = 0,
) -> Tuple[PBInstance, Dict[int, int]]:
    """A satisfiable instance plus the planted witness assignment."""
    rng = random.Random(seed)
    witness = {var: rng.randint(0, 1) for var in range(1, num_variables + 1)}
    constraints: List[Constraint] = []
    while len(constraints) < num_constraints:
        arity = rng.randint(1, min(max_arity, num_variables))
        variables = rng.sample(range(1, num_variables + 1), arity)
        terms = []
        true_supply = 0
        for var in variables:
            coef = rng.randint(1, max_coefficient)
            # bias literal polarities toward the witness so rhs > 0 works
            if rng.random() < 0.7:
                lit = var if witness[var] == 1 else -var
            else:
                lit = -var if witness[var] == 1 else var
            if (witness[var] == 1) == (lit > 0):
                true_supply += coef
            terms.append((coef, lit))
        if true_supply == 0:
            continue
        rhs = rng.randint(1, true_supply)
        constraint = Constraint.greater_equal(terms, rhs)
        if constraint.is_tautology or constraint.is_unsatisfiable:
            continue
        if not constraint.is_satisfied_by(witness):  # pragma: no cover
            continue
        constraints.append(constraint)
    objective = Objective(
        {var: rng.randint(0, max_cost) for var in range(1, num_variables + 1)}
    )
    instance = PBInstance(constraints, objective, num_variables=num_variables)
    return instance, witness
