"""Tight PB-satisfaction scheduling instances (the paper's [16] family).

Walser's ``acc-tight`` benchmarks encode the ACC basketball scheduling
problem as pure 0-1 satisfaction — **no cost function**, which is why
Table 1's footnote notes that every bsolo variant behaves identically on
them (no lower bounding happens without an objective).

The generator builds single-round-robin scheduling feasibility:

* ``n`` teams (even), ``n - 1`` rounds;
* variable ``m_{i,j,t}``: teams ``i < j`` meet in round ``t``;
* every pair meets exactly once; every team plays exactly once per round;
* optional tightening: home/away balance via per-team, per-half
  cardinality constraints on designated "home" meetings.

These are tight (every constraint is an equality pair), mirroring the
original family's character.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..pb.builder import PBModel
from ..pb.instance import PBInstance


def generate_scheduling(
    teams: int = 6,
    tighten: bool = True,
    patterns: bool = False,
    seed: int = 0,
) -> PBInstance:
    """Round-robin scheduling feasibility as a PB-SAT instance.

    With ``patterns`` the ACC-style home/away structure is added: every
    match designates exactly one home team, per-team home counts are
    balanced, and no team sits through three consecutive away rounds (or
    three consecutive home rounds) — the constraints that made the
    original acc-tight family tight.
    """
    if teams < 4 or teams % 2:
        raise ValueError("teams must be an even number >= 4")
    rng = random.Random(seed)
    rounds = teams - 1
    model = PBModel()

    meet: Dict[Tuple[int, int, int], int] = {}
    for i in range(teams):
        for j in range(i + 1, teams):
            for t in range(rounds):
                meet[(i, j, t)] = model.new_variable("m_%d_%d_r%d" % (i, j, t))

    # every pair meets exactly once
    for i in range(teams):
        for j in range(i + 1, teams):
            model.add_exactly([meet[(i, j, t)] for t in range(rounds)], 1)

    # every team plays exactly one game per round
    for t in range(rounds):
        for i in range(teams):
            games = [
                meet[(min(i, j), max(i, j), t)] for j in range(teams) if j != i
            ]
            model.add_exactly(games, 1)

    if patterns:
        _add_home_away_patterns(model, meet, teams, rounds)

    if tighten:
        # pin a few matches taken from an actual circle-method schedule
        # (mimics the fixed TV slots of the ACC instances and removes
        # symmetric freedom without breaking satisfiability)
        schedule = _circle_schedule(teams)
        pins = min(2, rounds)
        pinned_rounds = rng.sample(range(rounds), pins)
        for t in pinned_rounds:
            i, j = rng.choice(schedule[t])
            model.add_clause([meet[(i, j, t)]])

    return model.build()


def _add_home_away_patterns(
    model: PBModel,
    meet: Dict[Tuple[int, int, int], int],
    teams: int,
    rounds: int,
) -> None:
    """ACC-style home/away structure over ``h_{team, round}`` variables."""
    home: Dict[Tuple[int, int], int] = {}
    for team in range(teams):
        for round_index in range(rounds):
            home[(team, round_index)] = model.new_variable(
                "h_%d_r%d" % (team, round_index)
            )

    # a match has exactly one home side: m -> (h_i XOR h_j)
    for (i, j, t), match in meet.items():
        model.add_clause([-match, home[(i, t)], home[(j, t)]])
        model.add_clause([-match, -home[(i, t)], -home[(j, t)]])

    for team in range(teams):
        per_round = [home[(team, t)] for t in range(rounds)]
        # balanced home count: floor(r/2) <= #home <= ceil(r/2)
        model.add_at_least(per_round, rounds // 2)
        model.add_at_most(per_round, (rounds + 1) // 2)
        # no three consecutive home rounds / away rounds
        for t in range(rounds - 2):
            window = per_round[t : t + 3]
            model.add_at_most(window, 2)
            model.add_at_least(window, 1)


def _circle_schedule(teams: int) -> List[List[Tuple[int, int]]]:
    """A valid single round robin via the classic circle method."""
    n = teams
    rounds: List[List[Tuple[int, int]]] = []
    ring = list(range(n - 1))
    for t in range(n - 1):
        matches = [(min(ring[0], n - 1), max(ring[0], n - 1))]
        for k in range(1, n // 2):
            a, b = ring[k], ring[-k]
            matches.append((min(a, b), max(a, b)))
        rounds.append(matches)
        ring = [ring[-1]] + ring[:-1]
    return rounds


def scheduling_suite(count: int = 10, seed: int = 1997, **kwargs) -> List[PBInstance]:
    """A seeded family mirroring acc-tight:0..9."""
    return [
        generate_scheduling(seed=seed + index, **kwargs) for index in range(count)
    ]
