"""Persistent solving sessions: ``solve_under``, push/pop, warm state.

A :class:`SolverSession` keeps one propagation engine, VSIDS activity,
restart/bound-schedule state and the trail-attached bounders (the
incremental MIS cache and the warm-started LP of the paper's Section 3
machinery) alive across many related solve calls, instead of rebuilding
everything per instance.  The intended workload is ROADMAP Open item 4's
perturbation streams: solve, tweak (assumptions, an extra constraint, a
new objective), solve again.

Soundness rests on three rules, enforced here and in
:class:`~repro.core.solver.BsoloSolver`'s session mode:

**Empty root.**  Session calls run entirely above a *guard decision
level* (a fresh variable, decided first every call), so no assignment
ever becomes a permanent level-0 fact and end-of-call ``backtrack(0)``
restores a truly blank trail.  Assumptions are asserted as decision
levels, MiniSat style.

**Frame-tagged learned constraints.**  Constraints added through
:meth:`add_constraint` belong to the frame opened by the most recent
:meth:`push`; clauses the search learns are tagged with the frame depth
active when they were learned.  :meth:`pop` deletes exactly the popped
frame's constraints plus every learned clause tagged at or above the
popped depth — anything learned earlier predates the frame and cannot
depend on it.

**Temporal taint.**  Within one call, everything learned *before* the
first incumbent (or before an imported upper-bound hint) is implied by
the instance plus the active frames and may be retained; everything
learned afterwards may depend on the incumbent-relative cuts (paper
Section 5) or the hint and is discarded when the call ends.  The
retained clauses are objective-independent logical consequences, so
:meth:`set_objective` keeps them.

The correctness oracle is *cold-equivalence lockstep*: a session solve
must report the same optimum and status as a fresh one-shot solve of
the same instance (see ``tests/test_incremental.py`` and
``repro.experiments.increbench``).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..core.options import SolverOptions, UnsupportedOptionError
from ..core.result import SolveResult
from ..core.solver import BsoloSolver, make_bounders
from ..core.lb_schedule import make_schedule
from ..engine.activity import VSIDSActivity
from ..engine.interface import make_engine
from ..engine.restarts import RestartScheduler
from ..pb.constraints import Constraint
from ..pb.instance import InfeasibleConstraintError, PBInstance
from ..pb.objective import Objective


class SessionStats:
    """Counters aggregated across the lifetime of one session."""

    __slots__ = (
        "calls",
        "pushes",
        "pops",
        "learned_retained",
        "learned_discarded",
        "conflicts",
        "decisions",
    )

    def __init__(self):
        self.calls = 0
        self.pushes = 0
        self.pops = 0
        #: Learned clauses currently carried across calls (frame-tagged).
        self.learned_retained = 0
        #: Solve-local learned constraints dropped at call ends (the
        #: incumbent-dependent tail under the temporal taint rule).
        self.learned_discarded = 0
        self.conflicts = 0
        self.decisions = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict snapshot (report/JSON friendly)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return "SessionStats(%s)" % (
            ", ".join("%s=%d" % (k, v) for k, v in self.as_dict().items())
        )


class _Frame:
    """One push/pop scope: the constraints added while it was on top."""

    __slots__ = ("constraints", "stored")

    def __init__(self):
        #: The :class:`Constraint` objects (for instance rebuilds).
        self.constraints: List[Constraint] = []
        #: Their engine-side ``StoredConstraint`` twins (for deletion).
        self.stored: List[object] = []


class SolverSession:
    """A persistent bsolo solving context (see the module docstring).

    Parameters mirror a one-shot solve: a base :class:`PBInstance` and
    :class:`SolverOptions`.  Options that assert permanent root facts
    (``preprocess``, ``covering_reductions``) are forced off — both
    would break the empty-root invariant — and options that cannot be
    honored across calls (``proof``, ``external_bound``, ``should_stop``)
    raise :class:`UnsupportedOptionError` up front.
    """

    def __init__(
        self,
        instance: PBInstance,
        options: Optional[SolverOptions] = None,
    ):
        options = options or SolverOptions()
        for field, why in (
            ("proof", "a proof log cannot span stateful session calls"),
            ("external_bound", "portfolio bound import is per-solve"),
            ("should_stop", "cooperative interruption is per-solve"),
        ):
            if getattr(options, field) is not None:
                raise UnsupportedOptionError(
                    "SolverSession does not support %s=: %s" % (field, why)
                )
        self._options = options.replace(
            preprocess=False, covering_reductions=False
        )
        self._num_variables = instance.num_variables
        #: Search scaffolding: decided first every call so the whole
        #: search lives above level 0.  Appears in no constraint.
        self.guard_var = instance.num_variables + 1
        self._base_constraints: Tuple[Constraint, ...] = instance.constraints
        self._objective = instance.objective
        self._variable_names = dict(instance.variable_names)

        tracer = self._options.tracer
        metrics = self._options.metrics
        self._metrics = (
            metrics if (metrics is not None and metrics.enabled) else None
        )
        #: Persistent engine, sized to include the guard variable.
        self.propagator = make_engine(
            self._options.propagation,
            self.guard_var,
            tracer=tracer if (tracer is not None and tracer.enabled) else None,
            metrics=self._metrics,
        )
        #: Persistent branching activity (warm across calls).
        self.activity = VSIDSActivity(
            self.guard_var, decay=self._options.vsids_decay
        )
        #: Persistent restart state (None unless ``options.restarts``).
        self.restart_scheduler = (
            RestartScheduler(self._options.restart_interval)
            if self._options.restarts
            else None
        )
        #: Persistent adaptive lower-bound schedule.
        self.schedule = make_schedule(self._options)

        #: Engine ids of frame constraints: learned-flagged in the
        #: database (so ``pop`` can delete them) yet immune to clause
        #: garbage collection.  Strong refs ride in ``_protected_refs``
        #: so a collected twin can never recycle a protected id.
        self.protected_ids: Set[int] = set()
        self._protected_refs: Dict[int, object] = {}
        self._frames: List[_Frame] = [_Frame()]
        #: id -> (stored, frame depth active when it was learned).
        self._learned_tags: Dict[int, Tuple[object, int]] = {}
        #: Set once per call at the first incumbent (or bound hint):
        #: ids of the learned constraints that may survive the call.
        self._taint_ids: Optional[Set[int]] = None
        self._taint_refs: Optional[List[object]] = None
        self._in_call = False
        self.stats = SessionStats()

        for constraint in self._base_constraints:
            # A blank trail cannot violate a satisfiable constraint and
            # PBInstance already rejected unsatisfiable ones.
            self.propagator.add_constraint(constraint)
        self._instance = self._current_instance()
        self.prefilter = None
        self.bounder = None
        self._rebuild_bounders()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def instance(self) -> PBInstance:
        """The current effective instance (base + frames + objective)."""
        return self._instance

    @property
    def depth(self) -> int:
        """Number of open frames (0 = only the base scope)."""
        return len(self._frames) - 1

    # ------------------------------------------------------------------
    # Mutation between calls
    # ------------------------------------------------------------------
    def push(self) -> None:
        """Open a new constraint frame; :meth:`pop` undoes everything
        added (and learned) while it is open."""
        self._ensure_idle()
        self._frames.append(_Frame())
        self.stats.pushes += 1

    def pop(self) -> None:
        """Close the top frame: delete its constraints and every learned
        clause tagged at or above its depth, then invalidate the bounder
        caches (their relaxations included the popped constraints)."""
        self._ensure_idle()
        if len(self._frames) == 1:
            raise ValueError("pop() without a matching push()")
        depth = len(self._frames) - 1
        frame = self._frames.pop()
        doomed: Set[int] = set()
        for stored in frame.stored:
            doomed.add(id(stored))
            self.protected_ids.discard(id(stored))
            self._protected_refs.pop(id(stored), None)
        for key, (_, tag_depth) in list(self._learned_tags.items()):
            if tag_depth >= depth:
                doomed.add(key)
                del self._learned_tags[key]
        if doomed:
            self.propagator.reduce_learned(lambda s: id(s) not in doomed)
        self.stats.learned_retained = len(self._learned_tags)
        self._instance = self._current_instance()
        self._rebuild_bounders()
        self.stats.pops += 1

    def add_constraint(self, constraint: Constraint) -> None:
        """Add ``constraint`` to the current frame (visible to every
        later call until that frame is popped)."""
        self._ensure_idle()
        if constraint.is_unsatisfiable:
            raise InfeasibleConstraintError(
                "constraint %r can never be satisfied" % (constraint,)
            )
        for var in constraint.variables:
            if var < 1 or var > self._num_variables:
                raise ValueError(
                    "constraint variable %d out of session range 1..%d"
                    % (var, self._num_variables)
                )
        if constraint.is_tautology:
            return  # dropped, exactly as PBInstance construction would
        # learned=True so the engines' reduce_learned can delete it on
        # pop; protected_ids shields it from clause garbage collection.
        conflict = self.propagator.add_constraint(constraint, learned=True)
        if conflict is not None:  # pragma: no cover - blank trail
            raise AssertionError("satisfiable constraint conflicted at root")
        stored = self.propagator.database.constraints[-1]
        frame = self._frames[-1]
        frame.constraints.append(constraint)
        frame.stored.append(stored)
        self.protected_ids.add(id(stored))
        self._protected_refs[id(stored)] = stored
        self._instance = self._current_instance()
        self._rebuild_bounders()

    def set_objective(
        self, objective: Union[Objective, Mapping[int, int]]
    ) -> None:
        """Replace the objective for subsequent calls.

        Retained learned clauses survive: under the temporal taint rule
        they are logical consequences of the constraints alone, never of
        any objective.  The bounders are rebuilt (their relaxations bake
        the cost vector in).
        """
        self._ensure_idle()
        if not isinstance(objective, Objective):
            objective = Objective(objective)
        for var in objective.costs:
            if var < 1 or var > self._num_variables:
                raise ValueError(
                    "objective variable %d out of session range 1..%d"
                    % (var, self._num_variables)
                )
        self._objective = objective
        self._instance = self._current_instance()
        self._rebuild_bounders()

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve_under(
        self,
        assumptions: Sequence[int] = (),
        *,
        upper_bound: Optional[int] = None,
    ) -> SolveResult:
        """One call: solve the current instance under ``assumptions``.

        ``assumptions`` are literals asserted (as decision levels) before
        the search branches; an UNSATISFIABLE result then carries
        ``result.core``, an assumption prefix sufficient for the
        contradiction (empty tuple: unsatisfiable regardless).
        ``upper_bound`` imports an incumbent cost known from elsewhere
        (offset included) to tighten pruning — the WBO front end's
        warm-start hint.
        """
        self._ensure_idle()
        self._in_call = True
        solver = BsoloSolver(self._instance, self._options, session=self)
        try:
            if upper_bound is not None and solver.set_upper_bound(upper_bound):
                # Bound-conflict clauses learned under an imported bound
                # are relative to it, not to the instance: taint the call
                # from the start so none of them outlive it.
                self.on_solve_local(self.propagator)
            result = solver.solve(list(assumptions))
        finally:
            self._end_call()
        self.stats.calls += 1
        self.stats.conflicts += solver.stats.conflicts
        self.stats.decisions += solver.stats.decisions
        return result

    def solve(self) -> SolveResult:
        """Convenience: :meth:`solve_under` with no assumptions."""
        return self.solve_under(())

    # ------------------------------------------------------------------
    # Solver-protocol hooks (called by BsoloSolver in session mode)
    # ------------------------------------------------------------------
    def on_solve_local(self, propagator) -> None:
        """Mark the temporal taint point: snapshot the learned
        constraints that may survive this call (everything learned later
        is incumbent/hint-dependent and solve-local).  Idempotent — only
        the first mark per call counts."""
        if self._taint_ids is not None:
            return
        retained = [
            stored
            for stored in propagator.database.constraints
            if stored.learned
        ]
        # Strong refs keep the ids stable until _end_call compares them.
        self._taint_refs = retained
        self._taint_ids = set(map(id, retained))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _ensure_idle(self) -> None:
        """Reject reentrant mutation (e.g. from an incumbent callback)."""
        if self._in_call:
            raise RuntimeError(
                "session is inside solve_under(); mutate between calls"
            )

    def _current_instance(self) -> PBInstance:
        """Materialize base + frame constraints + current objective."""
        constraints = list(self._base_constraints)
        for frame in self._frames:
            constraints.extend(frame.constraints)
        return PBInstance(
            constraints,
            objective=self._objective,
            num_variables=self._num_variables,
            variable_names=self._variable_names,
        )

    def _rebuild_bounders(self) -> None:
        """(Re)build prefilter/bounder against the current instance.

        Structural changes (frame add, pop, new objective) invalidate
        the cached MIS partition and the warm LP basis wholesale; a
        rebuild is the honest invalidation.  Old trail feeds are
        detached first so the trail stops updating dead deltas.
        """
        trail = self.propagator.trail
        for bounder in (self.prefilter, self.bounder):
            if bounder is not None and hasattr(bounder, "detach_trail"):
                bounder.detach_trail(trail)
        self.prefilter, self.bounder = make_bounders(
            self._instance, self._options, metrics=self._metrics
        )
        if self._options.incremental_bounds:
            for bounder in (self.prefilter, self.bounder):
                if bounder is not None and hasattr(bounder, "attach_trail"):
                    bounder.attach_trail(trail)

    def _end_call(self) -> None:
        """Restore the between-calls invariant after a solve.

        Backtracks to the (empty) root, discards the solve-local learned
        tail (everything past the taint point), then frame-tags the
        surviving new clauses with the current depth so a later
        :meth:`pop` can remove exactly the ones that depended on popped
        frames.
        """
        propagator = self.propagator
        propagator.backtrack(0)
        if self._taint_ids is not None:
            retain = self._taint_ids
            removed = propagator.reduce_learned(
                lambda stored: id(stored) in retain
            )
            self.stats.learned_discarded += removed
            self._taint_ids = None
            self._taint_refs = None
        depth = len(self._frames) - 1
        present: Dict[int, object] = {}
        for stored in propagator.database.constraints:
            if stored.learned and id(stored) not in self.protected_ids:
                present[id(stored)] = stored
        for key in list(self._learned_tags):
            if key not in present:
                # Clause garbage collection dropped it mid-call.
                del self._learned_tags[key]
        for key, stored in present.items():
            if key not in self._learned_tags:
                self._learned_tags[key] = (stored, depth)
        self.stats.learned_retained = len(self._learned_tags)
        self._in_call = False


def make_session(
    instance: PBInstance, options: Optional[SolverOptions] = None
) -> SolverSession:
    """Factory mirroring :func:`repro.api.make_solver` for sessions."""
    return SolverSession(instance, options)
