"""Incremental solving sessions (persistent engine + warm bound state).

Public surface:

* :class:`SolverSession` — ``solve_under(assumptions)``, ``push``/
  ``pop`` constraint frames, ``add_constraint``/``set_objective``
  between calls, with learned constraints, activity/restart state and
  the trail-attached MIS/LP caches retained across calls.
* :func:`make_session` — factory mirroring ``repro.api.make_solver``.
* :class:`SessionStats` — lifetime counters.
"""

from .session import SessionStats, SolverSession, make_session

__all__ = ["SessionStats", "SolverSession", "make_session"]
