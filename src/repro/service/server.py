"""The solve service orchestrator and its asyncio HTTP/JSON front end.

Pure stdlib: the HTTP layer is built directly on ``asyncio`` streams
(no framework), implementing the small protocol surface documented in
``docs/SERVICE.md``:

* ``POST /jobs`` — submit an instance; 202 with the job resource
* ``GET /jobs/{id}`` — poll a job (result attached once terminal)
* ``GET /jobs/{id}/events`` — Server-Sent Events stream of the job
* ``DELETE /jobs/{id}`` — cooperative cancel
* ``GET /healthz`` — liveness + queue/cache counters
* ``GET /metrics`` — deterministic metrics text exposition

Orchestration model: one asyncio loop owns all job state.  A scheduler
task moves admitted jobs from the bounded queue into per-job worker
*processes* (at most ``ServiceConfig.workers`` concurrently, enforced
with a semaphore — the portfolio-style shard), a pump thread per worker
forwards progress/result messages back onto the loop, and per-job
deadline watchdogs escalate from cooperative ``should_stop`` cancel to
``terminate()`` after the grace period.  Cache hits short-circuit at
submission time and never consume a worker slot.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..pb.canonical import canonical_form
from . import protocol
from .cache import ResultCache, options_signature
from .jobs import Job, JobQueue, QueueFullError
from .metrics import ServiceMetrics
from .protocol import ProtocolError, SubmitRequest, format_sse
from .workers import launch_worker

#: Seconds granted between cooperative cancel and hard terminate.
DEFAULT_GRACE = 5.0


class ServiceConfig:
    """Deployment knobs of one service instance (docs/SERVICE.md)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        workers: int = 4,
        queue_depth: int = 64,
        cache_size: int = 256,
        default_deadline: Optional[float] = 60.0,
        max_deadline: float = 600.0,
        grace: float = DEFAULT_GRACE,
        metrics=None,
        start_method: Optional[str] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        #: Bind address for the HTTP listener.
        self.host = host
        #: Bind port (0 = ephemeral; the bound port is reported back).
        self.port = port
        #: Worker-process shard size: jobs solving concurrently.
        self.workers = workers
        #: Live-job admission bound (queued + running); beyond it
        #: ``POST /jobs`` answers 503.
        self.queue_depth = queue_depth
        #: Canonical-form result cache entries (0 disables caching).
        self.cache_size = cache_size
        #: Deadline applied to jobs that do not send ``timeout``
        #: (None = unlimited).
        self.default_deadline = default_deadline
        #: Hard ceiling on any requested deadline.
        self.max_deadline = max_deadline
        #: Seconds between cooperative cancel and hard terminate.
        self.grace = grace
        #: Optional shared :class:`repro.obs.metrics.MetricsRegistry`.
        self.metrics = metrics
        #: ``multiprocessing`` start method (None = platform default).
        self.start_method = start_method


class SolveService:
    """All service state and behavior, independent of the HTTP layer.

    Tests (and the bench harness) can drive this object directly on an
    event loop; the HTTP handlers below are a thin translation layer
    over :meth:`submit`, :meth:`get`, :meth:`cancel` and
    :meth:`stream_events`.
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.queue = JobQueue(capacity=self.config.queue_depth)
        self.cache = ResultCache(capacity=self.config.cache_size)
        self.metrics = ServiceMetrics(self.config.metrics)
        self.started_at = time.monotonic()
        self._slots = asyncio.Semaphore(self.config.workers)
        self._scheduler_task: Optional[asyncio.Task] = None
        self._job_tasks: Dict[str, asyncio.Task] = {}
        self._handles: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the scheduler task on the running loop."""
        if self._scheduler_task is None:
            self._scheduler_task = asyncio.get_running_loop().create_task(
                self._scheduler()
            )

    async def aclose(self) -> None:
        """Stop the scheduler, cancel running jobs, kill workers."""
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except asyncio.CancelledError:
                pass
            self._scheduler_task = None
        for handle in list(self._handles.values()):
            handle.cancel()
            handle.terminate()
        for task in list(self._job_tasks.values()):
            task.cancel()
        for task in list(self._job_tasks.values()):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass

    # ------------------------------------------------------------------
    # Client-facing operations
    # ------------------------------------------------------------------
    def submit(self, request: SubmitRequest) -> Job:
        """Admit a job (or serve it from the cache without queueing).

        Raises :class:`ProtocolError` (``queue_full``) when the live-job
        bound is reached.  Cache-eligible submissions compute the
        canonical form here so equivalent-instance hits return
        terminally ``done`` jobs immediately.
        """
        job = Job(request)
        use_cache = (
            request.cache and not request.proof and self.cache.capacity > 0
        )
        if use_cache:
            job.form = canonical_form(request.instance)
            signature = options_signature(request.options)
            payload = self.cache.lookup(job.form, request.solver, signature)
            if payload is not None:
                self.queue.register(job)
                job.push_event("queued", {"id": job.id, "position": 0})
                job.mark_done(payload)
                job.push_event("result", self._result_event(job))
                self.queue.finished(job)
                self.metrics.cache_outcome("hit")
                self.metrics.job_outcome("done")
                self.metrics.observe_phase("queue", 0.0)
                self.metrics.observe_phase(
                    "solve", time.monotonic() - job.created_at
                )
                return job
            self.metrics.cache_outcome("miss")
        else:
            self.metrics.cache_outcome("bypass")
        try:
            position = self.queue.admit(job)
        except QueueFullError as exc:
            self.metrics.job_outcome("rejected")
            raise ProtocolError("queue_full", str(exc))
        self.metrics.queue_depth.set(self.queue.depth)
        job.push_event("queued", {"id": job.id, "position": position})
        return job

    def get(self, job_id: str) -> Job:
        """Resolve a job by id or raise ``not_found``."""
        job = self.queue.get(job_id)
        if job is None:
            raise ProtocolError("not_found", "unknown job %r" % job_id)
        return job

    def cancel(self, job_id: str) -> Job:
        """Cooperatively cancel a queued or running job.

        Queued jobs terminate immediately; running jobs get the stop
        signal and the deadline watchdog's grace-then-terminate
        escalation.  Cancelling a terminal job raises ``conflict``.
        """
        job = self.get(job_id)
        if job.terminal:
            raise ProtocolError(
                "conflict", "job %s already %s" % (job.id, job.state)
            )
        job.cancel_requested = True
        if job.state == protocol.QUEUED:
            job.mark_cancelled("client")
            job.push_event("cancelled", {"id": job.id, "reason": "client"})
            self.queue.finished(job)
            self.metrics.job_outcome("cancelled")
            self.metrics.queue_depth.set(self.queue.depth)
        else:
            handle = self._handles.get(job.id)
            if handle is not None:
                handle.cancel()
        return job

    async def stream_events(self, job_id: str):
        """Async-iterate a job's events from the start until terminal."""
        job = self.get(job_id)
        index = 0
        while True:
            length = await job.wait_events(index)
            while index < length:
                yield job.events[index]
                index += 1
            if job.terminal and index >= len(job.events):
                return

    def health(self) -> Dict[str, Any]:
        """The ``GET /healthz`` body."""
        payload: Dict[str, Any] = {
            "status": "ok",
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "workers": self.config.workers,
        }
        payload.update(self.queue.snapshot())
        payload["cache"] = self.cache.snapshot()
        return payload

    # ------------------------------------------------------------------
    # Scheduling and worker management
    # ------------------------------------------------------------------
    async def _scheduler(self) -> None:
        """Move admitted jobs into worker slots, forever."""
        while True:
            job = await self.queue.next_job()
            await self._slots.acquire()
            if job.cancel_requested or job.terminal:
                self._slots.release()
                continue
            task = asyncio.get_running_loop().create_task(self._run_job(job))
            self._job_tasks[job.id] = task
            task.add_done_callback(
                lambda _t, job_id=job.id: self._job_tasks.pop(job_id, None)
            )

    def _effective_deadline(self, request: SubmitRequest) -> Optional[float]:
        """The per-job wall-clock budget after clamping to the config."""
        deadline = request.timeout
        if deadline is None:
            deadline = self.config.default_deadline
        if deadline is not None:
            deadline = min(deadline, self.config.max_deadline)
        return deadline

    async def _run_job(self, job: Job) -> None:
        """Drive one job through its worker process to a terminal state."""
        if job.cancel_requested or job.terminal:
            # Cancelled in the window between the scheduler popping the
            # job and this task running; cancel() already finalized it.
            self._slots.release()
            return
        loop = asyncio.get_running_loop()
        done = asyncio.Event()
        terminal: List[Tuple[str, Any]] = []

        def on_message(kind: str, data: Any) -> None:
            """Forwarded worker record (runs on the service loop)."""
            if kind == "progress":
                job.push_event("progress", data)
            elif kind == "incumbent":
                job.push_event("incumbent", data)
            elif kind in ("result", "error"):
                if not terminal:
                    terminal.append((kind, data))
                done.set()

        deadline = self._effective_deadline(job.request)
        job.mark_running()
        self.metrics.queue_depth.set(self.queue.depth)
        self.metrics.active_jobs.inc()
        self.metrics.observe_phase("queue", job.started_at - job.created_at)
        handle = launch_worker(
            loop,
            on_message,
            job.request.instance_text,
            job.request.solver,
            dict(job.request.options),
            job.request.proof,
            job.request.progress_interval,
            deadline,
            start_method=self.config.start_method,
        )
        self._handles[job.id] = handle
        job.push_event(
            "started",
            {"id": job.id, "solver": job.request.solver, "pid": handle.pid},
        )
        deadline_hit = False
        try:
            budget = (
                deadline + self.config.grace if deadline is not None else None
            )
            try:
                await asyncio.wait_for(done.wait(), timeout=budget)
            except asyncio.TimeoutError:
                # The worker overran deadline + grace: escalate from the
                # cooperative stop to a hard kill.
                deadline_hit = True
                handle.cancel()
                try:
                    await asyncio.wait_for(
                        done.wait(), timeout=self.config.grace
                    )
                except asyncio.TimeoutError:
                    handle.terminate()
                    try:
                        await asyncio.wait_for(
                            done.wait(), timeout=self.config.grace
                        )
                    except asyncio.TimeoutError:
                        pass
            self._finalize(job, terminal, deadline_hit)
        finally:
            self._handles.pop(job.id, None)
            self.metrics.active_jobs.dec()
            self.metrics.observe_phase(
                "solve", time.monotonic() - job.started_at
            )
            self.queue.finished(job)
            self._slots.release()
            await loop.run_in_executor(None, handle.join, 2.0)

    def _finalize(
        self,
        job: Job,
        terminal: List[Tuple[str, Any]],
        deadline_hit: bool,
    ) -> None:
        """Translate the worker's terminal message into the job state."""
        kind, data = terminal[0] if terminal else (None, None)
        if job.cancel_requested:
            partial = data if kind == "result" else None
            job.mark_cancelled("client", partial)
            job.push_event(
                "cancelled",
                {
                    "id": job.id,
                    "reason": "client",
                    "cost": (partial or {}).get("cost"),
                },
            )
            self.metrics.job_outcome("cancelled")
            return
        if kind == "result":
            data = dict(data)
            data.setdefault("cached", False)
            if job.form is not None and job.request.cache:
                data["cache_stored"] = self.cache.store(
                    job.form,
                    job.request.solver,
                    options_signature(job.request.options),
                    data,
                )
            job.mark_done(data)
            job.push_event("result", self._result_event(job))
            self.metrics.job_outcome("done")
            return
        if deadline_hit:
            job.mark_cancelled("deadline")
            job.push_event(
                "cancelled", {"id": job.id, "reason": "deadline"}
            )
            self.metrics.job_outcome("cancelled")
            return
        job.mark_failed(str(data) if data else "worker reported no result")
        job.push_event("failed", {"id": job.id, "error": job.error})
        self.metrics.job_outcome("failed")

    @staticmethod
    def _result_event(job: Job) -> Dict[str, Any]:
        """The SSE ``result`` payload: a summary, not the full model."""
        result = job.result or {}
        return {
            "id": job.id,
            "status": result.get("status"),
            "cost": result.get("cost"),
            "cached": bool(result.get("cached")),
            "proof": "proof" in result,
        }


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------
_JSON_HEADERS = "Content-Type: application/json\r\n"


def _response_bytes(
    status: int, body: bytes, content_type: str = "application/json"
) -> bytes:
    """Assemble one non-streaming HTTP/1.1 response."""
    reason = {
        200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
        405: "Method Not Allowed", 409: "Conflict",
        413: "Payload Too Large", 500: "Internal Server Error",
        503: "Service Unavailable",
    }.get(status, "OK")
    head = (
        "HTTP/1.1 %d %s\r\n"
        "Content-Type: %s\r\n"
        "Content-Length: %d\r\n"
        "Connection: close\r\n"
        "\r\n" % (status, reason, content_type, len(body))
    )
    return head.encode("ascii") + body


def _json_response(status: int, payload: Any) -> bytes:
    """A JSON response with sorted keys (deterministic transcripts)."""
    return _response_bytes(
        status, (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    )


async def _read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, Dict[str, str], bytes]:
    """Parse one HTTP/1.1 request (method, path, headers, body)."""
    request_line = await reader.readline()
    if not request_line:
        raise ConnectionError("empty request")
    try:
        method, path, _version = request_line.decode("ascii").split()
    except ValueError:
        raise ProtocolError("bad_request", "malformed request line")
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _sep, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > protocol.MAX_BODY_BYTES:
        raise ProtocolError(
            "payload_too_large",
            "body of %d bytes exceeds the %d byte cap"
            % (length, protocol.MAX_BODY_BYTES),
        )
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


class ServiceServer:
    """The asyncio HTTP server bound to a :class:`SolveService`."""

    def __init__(self, service: SolveService):
        self.service = service
        self._server: Optional[asyncio.AbstractServer] = None
        #: The actually-bound port (resolves port 0 after :meth:`start`).
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and start the service scheduler."""
        config = self.service.config
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=config.host, port=config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Serve until cancelled."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting, then tear the service down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.aclose()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """One connection = one request (``Connection: close``)."""
        route = "unknown"
        status = 500
        try:
            try:
                method, path, _headers, body = await _read_request(reader)
            except ConnectionError:
                return
            try:
                route, status, response, stream_job = self._route(
                    method, path, body
                )
            except ProtocolError as exc:
                status, response, stream_job = (
                    exc.status,
                    _json_response(exc.status, exc.to_json()),
                    None,
                )
            if stream_job is not None:
                await self._write_sse(writer, stream_job)
            else:
                writer.write(response)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # defensive: a handler bug must not kill the loop
            try:
                writer.write(
                    _json_response(
                        500,
                        {"error": {"code": "internal", "message": str(exc)}},
                    )
                )
                await writer.drain()
            except Exception:
                pass
        finally:
            self.service.metrics.http_request(route, status)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[str, int, Optional[bytes], Optional[str]]:
        """Dispatch one request; returns (route, status, body, sse_job)."""
        service = self.service
        path = path.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                raise ProtocolError("method_not_allowed", "use GET /healthz")
            return "/healthz", 200, _json_response(200, service.health()), None
        if path == "/metrics":
            if method != "GET":
                raise ProtocolError("method_not_allowed", "use GET /metrics")
            text = service.metrics.render_text().encode("utf-8")
            return (
                "/metrics",
                200,
                _response_bytes(200, text, "text/plain; charset=utf-8"),
                None,
            )
        if path == "/jobs":
            if method != "POST":
                raise ProtocolError("method_not_allowed", "use POST /jobs")
            try:
                data = json.loads(body.decode("utf-8") or "null")
            except (ValueError, UnicodeDecodeError) as exc:
                raise ProtocolError("bad_request", "body is not JSON: %s" % exc)
            request = SubmitRequest.from_json(data)
            job = service.submit(request)
            return "/jobs", 202, _json_response(202, job.to_json()), None
        if path.startswith("/jobs/"):
            remainder = path[len("/jobs/"):]
            if remainder.endswith("/events"):
                job_id = remainder[: -len("/events")].rstrip("/")
                if method != "GET":
                    raise ProtocolError(
                        "method_not_allowed", "use GET /jobs/{id}/events"
                    )
                job = service.get(job_id)  # raises not_found
                return "/jobs/{id}/events", 200, None, job.id
            job_id = remainder
            if method == "GET":
                job = service.get(job_id)
                return "/jobs/{id}", 200, _json_response(200, job.to_json()), None
            if method == "DELETE":
                job = service.cancel(job_id)
                return "/jobs/{id}", 200, _json_response(200, job.to_json()), None
            raise ProtocolError(
                "method_not_allowed", "use GET or DELETE on /jobs/{id}"
            )
        raise ProtocolError("not_found", "no route %s" % path)

    async def _write_sse(self, writer: asyncio.StreamWriter, job_id: str) -> None:
        """Stream a job's event log as Server-Sent Events until terminal."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        await writer.drain()
        async for event, data in self.service.stream_events(job_id):
            writer.write(format_sse(event, data))
            await writer.drain()


# ----------------------------------------------------------------------
# Embedding and CLI entry points
# ----------------------------------------------------------------------
class BackgroundServer:
    """Run a service in a daemon thread; for tests, examples, benches.

    Usage::

        with BackgroundServer(ServiceConfig(port=0, workers=2)) as server:
            client = ServiceClient(port=server.port)
            ...

    The context manager guarantees the loop, scheduler, and any worker
    processes are torn down on exit.
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig(port=0)
        self.port: Optional[int] = None
        self.service: Optional[SolveService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    def start(self) -> "BackgroundServer":
        """Start the loop thread and wait for the listener to bind."""
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise RuntimeError("service failed to start within 30s")
        if self._error is not None:
            raise RuntimeError("service failed to start: %s" % self._error)
        return self

    def _run(self) -> None:
        """Thread body: own loop, server, and graceful teardown."""
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        stop = loop.create_future()
        self._stop_future = stop

        async def main() -> None:
            """Start the server, publish the port, park until stopped."""
            self.service = SolveService(self.config)
            server = ServiceServer(self.service)
            try:
                await server.start()
            except BaseException as exc:
                self._error = exc
                self._started.set()
                return
            self.port = server.port
            self._started.set()
            try:
                await stop
            finally:
                await server.aclose()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    def stop(self) -> None:
        """Stop the server and join the loop thread."""
        if self._loop is not None and not self._loop.is_closed():
            def _finish() -> None:
                """Resolve the park future on the loop thread."""
                if not self._stop_future.done():
                    self._stop_future.set_result(None)

            try:
                self._loop.call_soon_threadsafe(_finish)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


def serve_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro serve``: run the job server in the foreground.

    Prints one ``c serve ...`` line once the listener is bound; stops
    cleanly on Ctrl-C.  See docs/SERVICE.md for the deployment knobs.
    """
    parser = argparse.ArgumentParser(
        prog="bsolo serve",
        description=(
            "Async HTTP/JSON solve service over the registered solvers "
            "(protocol reference: docs/SERVICE.md)"
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8080,
        help="listen port (0 = ephemeral, printed at startup)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="worker-process shard size: jobs solving concurrently",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=64,
        help="live-job admission bound (queued + running)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=256,
        help="canonicalized-instance result cache entries (0 disables)",
    )
    parser.add_argument(
        "--default-deadline", type=float, default=60.0,
        help="per-job deadline when the request sends none (seconds)",
    )
    parser.add_argument(
        "--max-deadline", type=float, default=600.0,
        help="ceiling on any requested per-job deadline (seconds)",
    )
    parser.add_argument(
        "--grace", type=float, default=DEFAULT_GRACE,
        help="seconds between cooperative cancel and hard terminate",
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.queue_depth < 1:
        parser.error("--queue-depth must be >= 1")
    if args.cache_size < 0:
        parser.error("--cache-size must be >= 0")

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        cache_size=args.cache_size,
        default_deadline=args.default_deadline,
        max_deadline=args.max_deadline,
        grace=args.grace,
    )

    async def main() -> None:
        """Bind, announce, serve until interrupted."""
        server = ServiceServer(SolveService(config))
        await server.start()
        print(
            "c serve host=%s port=%d workers=%d queue_depth=%d cache_size=%d"
            % (config.host, server.port, config.workers, config.queue_depth,
               config.cache_size),
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.aclose()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("c serve stopped")
    return 0
