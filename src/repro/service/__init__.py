"""Solve-as-a-service: an asyncio HTTP/JSON job server over the solvers.

The service turns the repository's solving stack into network
throughput: jobs submitted as OPB text over HTTP are queued, solved
concurrently in a shard of worker *processes* (no shared GIL), streamed
back as Server-Sent Events synthesized from the solver's
``on_progress``/``on_incumbent`` hooks, and — for equivalent
resubmissions — answered straight from a canonicalized-instance result
cache (:mod:`repro.pb.canonical`).

Layers, bottom-up:

* :mod:`repro.service.protocol` — wire format: job states, SSE event
  names, error codes, request validation;
* :mod:`repro.service.jobs` — the :class:`Job` state machine and the
  bounded admission queue;
* :mod:`repro.service.workers` — per-job solver processes with
  cooperative cancellation (``should_stop``) and progress pumping;
* :mod:`repro.service.cache` — the canonical-form LRU result cache;
* :mod:`repro.service.metrics` — service metric families on a
  :class:`repro.obs.metrics.MetricsRegistry`;
* :mod:`repro.service.server` — the :class:`SolveService` orchestrator
  and the stdlib-``asyncio`` HTTP front end (``python -m repro serve``);
* :mod:`repro.service.client` — a minimal blocking client used by the
  tests, the examples and the ``servebench`` load generator.

Protocol reference: ``docs/SERVICE.md``.
"""

from .cache import ResultCache, options_signature
from .client import ServiceClient, ServiceError
from .jobs import Job, JobQueue, QueueFullError
from .protocol import (
    ERROR_CODES,
    JOB_STATES,
    ProtocolError,
    SSE_EVENT_TYPES,
    SubmitRequest,
    TERMINAL_STATES,
)
from .server import BackgroundServer, ServiceConfig, SolveService, serve_main

__all__ = [
    "BackgroundServer",
    "ERROR_CODES",
    "JOB_STATES",
    "Job",
    "JobQueue",
    "ProtocolError",
    "QueueFullError",
    "ResultCache",
    "SSE_EVENT_TYPES",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SolveService",
    "SubmitRequest",
    "TERMINAL_STATES",
    "options_signature",
    "serve_main",
]
