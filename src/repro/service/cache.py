"""Canonicalized-instance result cache for the solve service.

Cache keys combine three components:

* the **canonical instance digest** (:func:`repro.pb.canonical_hash`)
  — permuting terms, shuffling constraints or renaming variables does
  not change it, so equivalent submissions from different users land on
  the same entry;
* the **canonical solver name** — results from different solvers are
  never conflated (``cache bypass on differing options`` contract);
* the **semantic options signature** (:func:`options_signature`) — any
  difference in an answer-affecting :class:`SolverOptions` knob keys a
  different entry.  Budget and instrument knobs (``time_limit``,
  ``profile``, ``progress_interval``, ``poll_interval``) are excluded:
  only *conclusive* results (optimal / satisfiable / unsatisfiable) are
  ever stored, and a conclusive answer is correct under any budget.

Stored models live in canonical variable space; a hit translates the
model back through the requester's own renaming
(:meth:`repro.pb.CanonicalForm.from_canonical_model`), so a user whose
variables are numbered differently still receives a model over *their*
numbering.  Lookups compare the full canonical text, not just the
digest, so a SHA-256 collision degrades to a miss instead of a wrong
answer.  Proof-carrying jobs bypass the cache entirely in both
directions — a logged proof derives constraints by *input index and
variable name* and is not renaming-invariant.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Any, Dict, Mapping, Optional, Tuple

from ..core.options import SolverOptions
from ..core.result import OPTIMAL, SATISFIABLE, UNSATISFIABLE
from ..pb.canonical import CanonicalForm

#: Option knobs excluded from the semantic signature: they bound or
#: observe the search without changing what a *conclusive* answer means.
NON_SEMANTIC_OPTIONS = frozenset(
    {"time_limit", "profile", "progress_interval", "poll_interval"}
)

#: Statuses eligible for caching (valid under any time budget).
CACHEABLE_STATUSES = (OPTIMAL, SATISFIABLE, UNSATISFIABLE)


def options_signature(options: Mapping[str, Any]) -> str:
    """Deterministic signature of the answer-affecting solver options.

    ``options`` is a mapping of scalar :class:`SolverOptions` overrides
    (the service's request whitelist).  Defaults are filled in before
    signing, so ``{}`` and an explicit ``{"lower_bound": "lpr"}``
    (the default) produce the same signature, while any semantically
    different knob — backend, bound method, learning toggles, even
    conflict budgets — produces a different one.
    """
    described = SolverOptions(**dict(options)).describe()
    semantic = {
        key: value
        for key, value in described.items()
        if key not in NON_SEMANTIC_OPTIONS
    }
    return json.dumps(semantic, sort_keys=True)


class CacheEntry:
    """One stored conclusive result, in canonical variable space."""

    __slots__ = ("canonical_text", "status", "cost", "canonical_model", "stats")

    def __init__(
        self,
        canonical_text: str,
        status: str,
        cost: Optional[int],
        canonical_model: Optional[Dict[int, int]],
        stats: Optional[Dict[str, Any]],
    ):
        self.canonical_text = canonical_text
        self.status = status
        self.cost = cost
        self.canonical_model = canonical_model
        self.stats = stats


class ResultCache:
    """LRU cache of conclusive solve results keyed by canonical form.

    ``capacity`` bounds the number of entries (0 disables the cache
    entirely); ``hits`` / ``misses`` / ``evictions`` count lifetime
    outcomes and back the ``service_cache`` metrics family.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 0:
            raise ValueError("cache capacity must be >= 0")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[str, str, str], CacheEntry]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def lookup(
        self,
        form: CanonicalForm,
        solver: str,
        signature: str,
    ) -> Optional[Dict[str, Any]]:
        """Return a result payload for an equivalent prior solve.

        The payload's model is translated into the *requester's*
        variable numbering through ``form``; ``None`` means miss.  Hits
        refresh LRU recency.
        """
        if self.capacity == 0:
            return None
        key = (form.key, solver, signature)
        entry = self._entries.get(key)
        if entry is None or entry.canonical_text != form.text:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        model = None
        if entry.canonical_model is not None:
            model = {
                str(var): value
                for var, value in sorted(
                    form.from_canonical_model(entry.canonical_model).items()
                )
            }
        payload: Dict[str, Any] = {
            "status": entry.status,
            "cost": entry.cost,
            "model": model,
            "cached": True,
        }
        if entry.stats is not None:
            payload["stats"] = dict(entry.stats)
        return payload

    # ------------------------------------------------------------------
    def store(
        self,
        form: CanonicalForm,
        solver: str,
        signature: str,
        result: Mapping[str, Any],
    ) -> bool:
        """Store a worker result if it is conclusive; returns whether it
        was cached.

        ``result`` is the worker payload (``model`` keyed by stringified
        original variable indices); the model is re-keyed into canonical
        space before storage so any equivalent future submission can be
        served.
        """
        if self.capacity == 0:
            return False
        if result.get("status") not in CACHEABLE_STATUSES:
            return False
        model = result.get("model")
        canonical_model = None
        if model is not None:
            canonical_model = form.to_canonical_model(
                {int(var): value for var, value in model.items()}
            )
        key = (form.key, solver, signature)
        self._entries[key] = CacheEntry(
            canonical_text=form.text,
            status=result["status"],
            cost=result.get("cost"),
            canonical_model=canonical_model,
            stats=dict(result["stats"]) if result.get("stats") else None,
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return True

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        """Counters for ``/healthz`` and the bench report."""
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
