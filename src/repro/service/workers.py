"""Per-job solver processes for the solve service.

Each admitted job runs in its own worker *process* (the portfolio
pattern: no shared GIL, crash isolation), launched with three pieces of
shared state created before the fork: a stop :class:`multiprocessing.Event`
(the cooperative cancel signal, wired to the solver's ``should_stop``
/ ``poll_interval`` hooks), a message :class:`multiprocessing.Queue`
(progress, incumbents, the final result), and the job payload itself.

A *pump* thread on the coordinator side drains the message queue and
forwards every record onto the service's asyncio loop with
``call_soon_threadsafe`` — the only place worker state crosses into the
async world.  A worker that dies without reporting (hard crash,
oom-kill) is detected by the pump and surfaced as a synthesized error
message, mirroring the portfolio runner's crash tolerance.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import threading
import queue as queue_module
from typing import Any, Callable, Dict, Optional

from ..core.options import SolverOptions

#: How the solver polls the stop event, in search steps.  Small enough
#: that cancellation latency is dominated by the grace period.
_POLL_INTERVAL = 16


def _solve_worker(channel, stop_event, instance_text, solver, options_kwargs,
                  proof, progress_interval, deadline):
    """Worker-process entry point: parse, solve, report.

    Runs in the child.  Progress and incumbent callbacks forward
    through ``channel`` as they fire; the final message is either
    ``("result", payload)`` or ``("error", text)``.  The solver's
    ``should_stop`` hook polls ``stop_event``, so a coordinator-side
    cancel makes the solve return its best-so-far result instead of
    being killed mid-write.
    """
    try:
        import io

        from ..api import solve
        from ..pb.opb import parse

        instance = parse(io.StringIO(instance_text))

        def report_progress(stats, best, lower):
            channel.put(
                (
                    "progress",
                    {
                        "conflicts": stats.conflicts,
                        "decisions": stats.decisions,
                        "best": best,
                        "lower": lower,
                    },
                )
            )

        def report_incumbent(cost, model):
            channel.put(("incumbent", {"cost": cost}))

        overrides: Dict[str, Any] = dict(
            options_kwargs,
            should_stop=stop_event.is_set,
            poll_interval=_POLL_INTERVAL,
            on_progress=report_progress,
            progress_interval=progress_interval,
            on_incumbent=report_incumbent,
        )
        limit = overrides.get("time_limit")
        if deadline is not None:
            limit = deadline if limit is None else min(limit, deadline)
        overrides["time_limit"] = limit

        proof_text: Optional[str] = None
        if proof:
            from ..certify import ProofLogger

            handle, proof_path = tempfile.mkstemp(suffix=".pbp")
            os.close(handle)
            logger = ProofLogger(proof_path)
            try:
                result = solve(
                    instance,
                    solver,
                    SolverOptions(**dict(overrides, proof=logger)),
                )
            finally:
                logger.close()
            try:
                with open(proof_path, "r") as source:
                    proof_text = source.read()
            finally:
                os.unlink(proof_path)
        else:
            result = solve(instance, solver, SolverOptions(**overrides))

        payload: Dict[str, Any] = {
            "status": result.status,
            "cost": result.best_cost,
            "model": (
                {str(var): value
                 for var, value in sorted(result.best_assignment.items())}
                if result.best_assignment
                else None
            ),
            "stats": {
                "conflicts": getattr(result.stats, "conflicts", 0),
                "decisions": getattr(result.stats, "decisions", 0),
                "elapsed": getattr(result.stats, "elapsed", 0.0),
            },
        }
        if proof_text is not None:
            payload["proof"] = proof_text
        channel.put(("result", payload))
    except BaseException as exc:  # ship *any* failure, then exit
        try:
            channel.put(("error", "%s: %s" % (type(exc).__name__, exc)))
        except Exception:
            os._exit(1)


class WorkerHandle:
    """Coordinator-side handle on one job's worker process.

    Owns the process, the stop event and the pump thread.  Messages
    reach ``on_message(kind, data)`` on the service loop;
    the pump exits after forwarding a terminal message (``result`` /
    ``error``) or after synthesizing one for a silent death.
    """

    def __init__(self, process, stop_event, channel, pump):
        self._process = process
        self._stop_event = stop_event
        self._channel = channel
        self._pump = pump

    # ------------------------------------------------------------------
    @property
    def pid(self) -> Optional[int]:
        """The worker process id (None before start)."""
        return self._process.pid

    def cancel(self) -> None:
        """Ask the solver to stop cooperatively (``should_stop``)."""
        self._stop_event.set()

    def alive(self) -> bool:
        """Whether the worker process is still running."""
        return self._process.is_alive()

    def terminate(self) -> None:
        """Hard-kill the worker (after the cooperative grace expired)."""
        if self._process.is_alive():
            self._process.terminate()

    def join(self, timeout: Optional[float] = None) -> None:
        """Join the process and the pump thread."""
        self._process.join(timeout=timeout)
        self._pump.join(timeout=timeout)


def launch_worker(
    loop,
    on_message: Callable[[str, Any], None],
    instance_text: str,
    solver: str,
    options_kwargs: Dict[str, Any],
    proof: bool,
    progress_interval: int,
    deadline: Optional[float],
    start_method: Optional[str] = None,
) -> WorkerHandle:
    """Fork a worker process for one job and start its pump thread.

    ``on_message`` is invoked on ``loop`` (via ``call_soon_threadsafe``)
    for every worker record, terminal ones included, so the service
    never blocks on multiprocessing primitives.
    """
    ctx = multiprocessing.get_context(start_method)
    stop_event = ctx.Event()
    channel = ctx.Queue()
    process = ctx.Process(
        target=_solve_worker,
        args=(channel, stop_event, instance_text, solver, options_kwargs,
              proof, progress_interval, deadline),
        daemon=True,
        name="service-%s" % solver,
    )
    process.start()

    def pump() -> None:
        """Drain the channel until a terminal message (or silent death)."""
        while True:
            try:
                kind, data = channel.get(timeout=0.1)
            except queue_module.Empty:
                if not process.is_alive():
                    # flush any message racing the exit, then give up
                    try:
                        kind, data = channel.get(timeout=0.2)
                    except queue_module.Empty:
                        loop.call_soon_threadsafe(
                            on_message,
                            "error",
                            "worker died without reporting (exitcode %s)"
                            % process.exitcode,
                        )
                        return
                else:
                    continue
            loop.call_soon_threadsafe(on_message, kind, data)
            if kind in ("result", "error"):
                return

    pump_thread = threading.Thread(target=pump, daemon=True)
    pump_thread.start()
    return WorkerHandle(process, stop_event, channel, pump_thread)
