"""Service metric families on the shared observability registry.

The service instruments itself with the same
:class:`repro.obs.metrics.MetricsRegistry` machinery the solver hot
paths use, so one ``GET /metrics`` exposition covers fleet and solver
state alike (worker processes additionally ship their own snapshots in
bench runs).  Families, all prefixed ``service_``:

``service_jobs_total{outcome}``
    terminal job counter — ``done`` / ``cancelled`` / ``failed`` /
    ``rejected`` (admission refused).
``service_cache{outcome}``
    canonical-form cache counter — ``hit`` / ``miss`` / ``bypass``
    (cache disabled for the request: ``cache=false`` or a proof job).
``service_queue_depth``
    gauge of jobs waiting for a worker slot.
``service_active_jobs``
    gauge of jobs currently solving in a worker process.
``service_job_seconds{phase}``
    latency histogram over :data:`repro.obs.metrics.LATENCY_BUCKETS` —
    ``queue`` (admission to worker start) and ``solve`` (worker start to
    terminal state).
``service_http_requests_total{route, code}``
    HTTP request counter by route template and status code.
"""

from __future__ import annotations

from ..obs.metrics import LATENCY_BUCKETS, MetricsRegistry


class ServiceMetrics:
    """The service's instrument handles, resolved once at startup."""

    def __init__(self, registry: MetricsRegistry = None):
        if registry is None:
            registry = MetricsRegistry()
        #: The backing registry; ``GET /metrics`` renders it.
        self.registry = registry
        self._jobs = registry.counter(
            "service_jobs_total",
            "terminal job outcomes",
            labels=("outcome",),
        )
        self._cache = registry.counter(
            "service_cache",
            "canonical-form result cache outcomes",
            labels=("outcome",),
        )
        self.queue_depth = registry.gauge(
            "service_queue_depth", "jobs waiting for a worker slot"
        )
        self.active_jobs = registry.gauge(
            "service_active_jobs", "jobs currently running in a worker"
        )
        self._job_seconds = registry.histogram(
            "service_job_seconds",
            "job phase latencies",
            labels=("phase",),
            buckets=LATENCY_BUCKETS,
        )
        self._http = registry.counter(
            "service_http_requests_total",
            "HTTP requests by route and status code",
            labels=("route", "code"),
        )

    # ------------------------------------------------------------------
    def job_outcome(self, outcome: str) -> None:
        """Count one terminal (or rejected) job."""
        self._jobs.labels(outcome=outcome).inc()

    def cache_outcome(self, outcome: str) -> None:
        """Count one cache lookup outcome (hit/miss/bypass)."""
        self._cache.labels(outcome=outcome).inc()

    def observe_phase(self, phase: str, seconds: float) -> None:
        """Record a queue-wait or solve latency observation."""
        self._job_seconds.labels(phase=phase).observe(seconds)

    def http_request(self, route: str, code: int) -> None:
        """Count one HTTP request against its route template."""
        self._http.labels(route=route, code=str(code)).inc()

    # ------------------------------------------------------------------
    def render_text(self) -> str:
        """The deterministic text exposition (``GET /metrics`` body)."""
        return self.registry.render_text()
