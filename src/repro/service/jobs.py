"""Job objects and the bounded admission queue of the solve service.

A :class:`Job` owns its lifecycle state machine (``queued -> running ->
done | cancelled | failed``, with ``queued -> cancelled`` for jobs
cancelled before a worker picks them up), its buffered event log (the
source the SSE endpoint replays and tails), and the final result
payload.  All mutation happens on the service's event loop; worker
processes never touch a ``Job`` directly — their messages are forwarded
onto the loop by the pump thread (:mod:`repro.service.workers`).
"""

from __future__ import annotations

import asyncio
import itertools
import time
import uuid
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from . import protocol
from .protocol import SubmitRequest

#: Monotonic tie-breaker so job ids sort in admission order in tests.
_SEQUENCE = itertools.count(1)


class QueueFullError(Exception):
    """Admission rejected: queued + running jobs already at capacity."""


class Job:
    """One submitted solve, from admission to terminal state."""

    __slots__ = (
        "id",
        "seq",
        "request",
        "state",
        "reason",
        "error",
        "result",
        "created_at",
        "started_at",
        "finished_at",
        "cancel_requested",
        "events",
        "form",
        "_wakeup",
    )

    def __init__(self, request: SubmitRequest):
        self.id = uuid.uuid4().hex[:16]
        self.seq = next(_SEQUENCE)
        self.request = request
        self.state = protocol.QUEUED
        #: For cancelled jobs: ``"client"`` or ``"deadline"``.
        self.reason: Optional[str] = None
        #: For failed jobs: the worker's error text.
        self.error: Optional[str] = None
        #: Terminal result payload (status/cost/model/stats/proof/cached).
        self.result: Optional[Dict[str, Any]] = None
        self.created_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.cancel_requested = False
        #: Ordered event log ``(event_name, data)``; SSE replays this.
        self.events: List[Tuple[str, Dict[str, Any]]] = []
        #: Canonical form of the submitted instance (set by the service
        #: when caching applies; carries the variable renaming used to
        #: translate cached models).
        self.form = None
        self._wakeup = asyncio.Event()

    # ------------------------------------------------------------------
    @property
    def terminal(self) -> bool:
        """True once the job reached done/cancelled/failed."""
        return self.state in protocol.TERMINAL_STATES

    def push_event(self, event: str, data: Dict[str, Any]) -> None:
        """Append an SSE event and wake every tailing stream."""
        self.events.append((event, data))
        self._wakeup.set()

    async def wait_events(self, start: int) -> int:
        """Block until the event log grows past ``start``; returns the
        new length.  Terminal jobs never grow, so callers must check
        :attr:`terminal` when the log is drained."""
        while len(self.events) <= start and not self.terminal:
            self._wakeup.clear()
            if len(self.events) > start or self.terminal:
                break
            await self._wakeup.wait()
        return len(self.events)

    # ------------------------------------------------------------------
    def mark_running(self) -> None:
        """``queued -> running`` (a worker slot was acquired)."""
        self._transition(protocol.QUEUED, protocol.RUNNING)
        self.started_at = time.monotonic()

    def mark_done(self, result: Dict[str, Any]) -> None:
        """``running -> done`` (also ``queued -> done`` for cache hits)."""
        if self.state not in (protocol.QUEUED, protocol.RUNNING):
            raise ValueError("cannot finish a %s job" % self.state)
        self.state = protocol.DONE
        self.result = result
        self.finished_at = time.monotonic()
        self._wakeup.set()

    def mark_cancelled(self, reason: str,
                       result: Optional[Dict[str, Any]] = None) -> None:
        """Enter ``cancelled`` (from queued or running) with a reason;
        a best-so-far partial result may ride along."""
        if self.terminal:
            raise ValueError("cannot cancel a %s job" % self.state)
        self.state = protocol.CANCELLED
        self.reason = reason
        self.result = result
        self.finished_at = time.monotonic()
        self._wakeup.set()

    def mark_failed(self, error: str) -> None:
        """Enter ``failed`` with the worker's error text."""
        if self.terminal:
            raise ValueError("cannot fail a %s job" % self.state)
        self.state = protocol.FAILED
        self.error = error
        self.finished_at = time.monotonic()
        self._wakeup.set()

    def _transition(self, expected: str, target: str) -> None:
        """Guarded state-machine edge."""
        if self.state != expected:
            raise ValueError(
                "illegal transition %s -> %s" % (self.state, target)
            )
        self.state = target

    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """The ``GET /jobs/{id}`` representation."""
        payload: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "solver": self.request.solver,
            "proof_requested": self.request.proof,
            "events": len(self.events),
        }
        if self.reason is not None:
            payload["reason"] = self.reason
        if self.error is not None:
            payload["error"] = self.error
        if self.result is not None:
            payload["result"] = self.result
        if self.started_at is not None:
            payload["queue_seconds"] = round(
                self.started_at - self.created_at, 6
            )
        if self.finished_at is not None:
            payload["elapsed_seconds"] = round(
                self.finished_at - (self.started_at or self.created_at), 6
            )
        return payload


class JobQueue:
    """Bounded FIFO of submitted jobs plus the id -> job directory.

    ``capacity`` bounds *live* jobs (queued + running): admission past
    it raises :class:`QueueFullError` and the HTTP layer answers 503.
    Terminal jobs stay resolvable by id until ``retain`` of them have
    accumulated, then the oldest are dropped (the directory would
    otherwise grow without bound under sustained traffic).
    """

    def __init__(self, capacity: int = 64, retain: int = 1024):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self.retain = retain
        self._pending: Deque[Job] = deque()
        self._jobs: Dict[str, Job] = {}
        self._finished: Deque[str] = deque()
        self._available = asyncio.Event()

    # ------------------------------------------------------------------
    @property
    def live(self) -> int:
        """Jobs currently queued or running."""
        return sum(
            1 for job in self._jobs.values() if not job.terminal
        )

    @property
    def depth(self) -> int:
        """Jobs waiting for a worker slot."""
        return len(self._pending)

    def admit(self, job: Job) -> int:
        """Accept a job or raise :class:`QueueFullError`; returns the
        0-based queue position."""
        if self.live >= self.capacity:
            raise QueueFullError(
                "queue full (%d live jobs, capacity %d)"
                % (self.live, self.capacity)
            )
        self._jobs[job.id] = job
        self._pending.append(job)
        self._available.set()
        return len(self._pending) - 1

    def register(self, job: Job) -> None:
        """Track a job that never waits for a worker (cache hits)."""
        self._jobs[job.id] = job

    async def next_job(self) -> Job:
        """Wait for, then pop, the oldest non-cancelled pending job."""
        while True:
            while self._pending:
                job = self._pending.popleft()
                if not job.cancel_requested and not job.terminal:
                    return job
            self._available.clear()
            if self._pending:
                continue
            await self._available.wait()

    def get(self, job_id: str) -> Optional[Job]:
        """Resolve a job by id (None when unknown or already evicted)."""
        return self._jobs.get(job_id)

    def finished(self, job: Job) -> None:
        """Record a terminal job and evict beyond the retention bound."""
        self._finished.append(job.id)
        while len(self._finished) > self.retain:
            dropped = self._finished.popleft()
            self._jobs.pop(dropped, None)

    def snapshot(self) -> Dict[str, int]:
        """Queue counters for ``/healthz``."""
        running = sum(
            1
            for job in self._jobs.values()
            if job.state == protocol.RUNNING
        )
        return {
            "queued": self.depth,
            "running": running,
            "live": self.live,
            "capacity": self.capacity,
        }
