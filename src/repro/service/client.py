"""Blocking HTTP client for the solve service (stdlib ``http.client``).

The client is the reference consumer of the protocol in
``docs/SERVICE.md``: every endpoint has a one-method wrapper, SSE
streams surface as generators of ``(event, data)`` pairs, and server
rejections raise :class:`ServiceError` carrying the protocol error
code.  Used by the smoke tests, ``examples/service_client.py`` and the
``servebench`` load generator.

Typical use::

    client = ServiceClient(port=8080)
    job = client.submit("min: 1 x1;\\n+1 x1 +1 x2 >= 1;\\n")
    for event, data in client.events(job["id"]):
        print(event, data)
    result = client.wait(job["id"])["result"]
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, Optional, Tuple

from .protocol import ERROR_CODES


class ServiceError(Exception):
    """A server-side rejection, carrying the protocol error code."""

    def __init__(self, code: str, status: int, message: str):
        super().__init__("%s (%d): %s" % (code, status, message))
        #: Protocol error code (a key of :data:`ERROR_CODES`).
        self.code = code
        #: HTTP status the server answered with.
        self.status = status
        #: Human-readable rejection message.
        self.message = message


def _raise_for_error(status: int, body: bytes) -> None:
    """Translate an error response body into :class:`ServiceError`."""
    try:
        payload = json.loads(body.decode("utf-8"))
        error = payload["error"]
        code, message = error["code"], error["message"]
    except Exception:
        code, message = "internal", body.decode("utf-8", "replace").strip()
    if code not in ERROR_CODES:
        code = "internal"
    raise ServiceError(code, status, message)


class ServiceClient:
    """One service endpoint; a fresh connection per request.

    Connection-per-request matches the server's ``Connection: close``
    policy, keeps the client trivially thread-safe, and means a single
    client object can be shared by the bench harness's submitter
    threads.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 300.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, bytes]:
        """Issue one request and return ``(status, body_bytes)``."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def _json(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        expect: int = 200,
    ) -> Dict[str, Any]:
        """Issue a request expecting a JSON body; raise on rejection."""
        status, raw = self._request(method, path, body)
        if status != expect:
            _raise_for_error(status, raw)
        return json.loads(raw.decode("utf-8"))

    # ------------------------------------------------------------------
    def submit(
        self,
        instance: str,
        solver: Optional[str] = None,
        options: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
        proof: bool = False,
        cache: bool = True,
        progress_interval: Optional[int] = None,
    ) -> Dict[str, Any]:
        """``POST /jobs``: submit OPB text; returns the job resource.

        Cache hits come back already terminal (``state == "done"`` with
        the result attached) — check before polling.
        """
        body: Dict[str, Any] = {"instance": instance}
        if solver is not None:
            body["solver"] = solver
        if options:
            body["options"] = options
        if timeout is not None:
            body["timeout"] = timeout
        if proof:
            body["proof"] = True
        if not cache:
            body["cache"] = False
        if progress_interval is not None:
            body["progress_interval"] = progress_interval
        return self._json("POST", "/jobs", body, expect=202)

    def get(self, job_id: str) -> Dict[str, Any]:
        """``GET /jobs/{id}``: the current job resource."""
        return self._json("GET", "/jobs/%s" % job_id)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """``DELETE /jobs/{id}``: cooperative cancel."""
        return self._json("DELETE", "/jobs/%s" % job_id)

    def health(self) -> Dict[str, Any]:
        """``GET /healthz``: liveness plus queue/cache counters."""
        return self._json("GET", "/healthz")

    def metrics_text(self) -> str:
        """``GET /metrics``: the text exposition, verbatim."""
        status, raw = self._request("GET", "/metrics")
        if status != 200:
            _raise_for_error(status, raw)
        return raw.decode("utf-8")

    # ------------------------------------------------------------------
    def events(self, job_id: str) -> Iterator[Tuple[str, Any]]:
        """``GET /jobs/{id}/events``: stream SSE until the job ends.

        Yields ``(event, data)`` pairs — the full event log from the
        start, then live events as they happen; the generator ends when
        the server closes the stream (job terminal).
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", "/jobs/%s/events" % job_id)
            response = conn.getresponse()
            if response.status != 200:
                _raise_for_error(response.status, response.read())
            event: Optional[str] = None
            data_parts = []
            while True:
                raw = response.readline()
                if not raw:
                    break
                line = raw.decode("utf-8").rstrip("\r\n")
                if line.startswith("event:"):
                    event = line[len("event:"):].strip()
                elif line.startswith("data:"):
                    data_parts.append(line[len("data:"):].strip())
                elif not line and event is not None:
                    yield event, json.loads("".join(data_parts) or "null")
                    event, data_parts = None, []
        finally:
            conn.close()

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll: float = 0.05,
    ) -> Dict[str, Any]:
        """Poll ``GET /jobs/{id}`` until terminal; returns the resource.

        Raises :class:`TimeoutError` if the job is still live after
        ``timeout`` seconds (None = wait forever).
        """
        start = time.monotonic()
        while True:
            job = self.get(job_id)
            if job["state"] in ("done", "cancelled", "failed"):
                return job
            if timeout is not None and time.monotonic() - start > timeout:
                raise TimeoutError(
                    "job %s still %s after %.1fs"
                    % (job_id, job["state"], timeout)
                )
            time.sleep(poll)

    def solve(
        self,
        instance: str,
        solver: Optional[str] = None,
        options: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
        proof: bool = False,
        cache: bool = True,
    ) -> Dict[str, Any]:
        """Submit and block for the result payload (convenience).

        Raises :class:`ServiceError` (code ``internal``) if the job ends
        cancelled or failed instead of done.
        """
        job = self.submit(
            instance,
            solver=solver,
            options=options,
            timeout=timeout,
            proof=proof,
            cache=cache,
        )
        if job["state"] != "done":
            job = self.wait(job["id"], timeout=self.timeout)
        if job["state"] != "done":
            raise ServiceError(
                "internal",
                500,
                "job %s ended %s (%s)"
                % (
                    job["id"],
                    job["state"],
                    job.get("error") or job.get("reason") or "no detail",
                ),
            )
        return job["result"]
