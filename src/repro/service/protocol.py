"""Wire protocol of the solve service: states, events, errors, requests.

Everything the HTTP layer and the client agree on lives here, away from
any asyncio machinery, so the protocol can be validated (and the docs
cross-checked) without starting a server.  ``docs/SERVICE.md`` is the
human-readable reference for this module; the service smoke tests parse
that document and assert it names exactly the states in
:data:`JOB_STATES` and the event types in :data:`SSE_EVENT_TYPES`.
"""

from __future__ import annotations

import io
import json
from typing import Any, Dict, Mapping, Optional

from ..api import canonical_name as resolve_solver
from ..core.options import SolverOptions
from ..pb.instance import InfeasibleConstraintError, PBInstance
from ..pb.opb import OPBError, parse

#: Job lifecycle states (see the state machine in docs/SERVICE.md).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
CANCELLED = "cancelled"
FAILED = "failed"

JOB_STATES = (QUEUED, RUNNING, DONE, CANCELLED, FAILED)

#: States a job never leaves once entered.
TERMINAL_STATES = (DONE, CANCELLED, FAILED)

#: Server-Sent Event types, in the order a fully ordinary job emits
#: them.  Every event the server writes uses one of these names; the
#: smoke test cross-checks the set against docs/SERVICE.md *and*
#: against the events observed on a live stream.
SSE_EVENT_TYPES = (
    "queued",      # job admitted; data carries the queue position
    "started",     # a worker process picked the job up
    "progress",    # periodic solver heartbeat (conflicts/decisions/bounds)
    "incumbent",   # the solver found an improving solution
    "result",      # terminal: the solve finished (possibly from cache)
    "cancelled",   # terminal: client cancel or deadline kill
    "failed",      # terminal: the worker errored or died
)

#: Error code -> HTTP status.  Error bodies are
#: ``{"error": {"code": ..., "message": ...}}``.
ERROR_CODES = {
    "bad_request": 400,
    "unknown_solver": 400,
    "unsupported": 400,
    "not_found": 404,
    "method_not_allowed": 405,
    "conflict": 409,
    "payload_too_large": 413,
    "queue_full": 503,
    "internal": 500,
}

#: Option names accepted in a submission's ``options`` object: the
#: scalar :class:`SolverOptions` knobs (no callbacks, no instruments).
ALLOWED_OPTION_KEYS = frozenset(SolverOptions().describe()) - {
    "profile",
    "progress_interval",
    "poll_interval",
}

#: Submission body size cap (bytes) enforced by the HTTP layer.
MAX_BODY_BYTES = 8 * 1024 * 1024


class ProtocolError(Exception):
    """A request the server rejects; carries the protocol error code."""

    def __init__(self, code: str, message: str):
        if code not in ERROR_CODES:
            raise ValueError("unknown protocol error code %r" % code)
        super().__init__(message)
        self.code = code
        self.status = ERROR_CODES[code]
        self.message = message

    def to_json(self) -> Dict[str, Any]:
        """The JSON error body for this rejection."""
        return {"error": {"code": self.code, "message": self.message}}


class SubmitRequest:
    """A validated job submission.

    Fields mirror the ``POST /jobs`` body documented in
    docs/SERVICE.md: ``instance`` (OPB text, parsed here), ``solver``
    (registry name, resolved to its canonical form), ``options`` (a
    whitelisted subset of the scalar :class:`SolverOptions` knobs),
    ``timeout`` (the per-job deadline in seconds), ``proof`` (attach a
    checkable certificate) and ``cache`` (allow canonical-form cache
    hits; proof jobs always bypass).
    """

    __slots__ = (
        "instance",
        "instance_text",
        "solver",
        "options",
        "timeout",
        "proof",
        "cache",
        "progress_interval",
    )

    def __init__(
        self,
        instance: PBInstance,
        instance_text: str,
        solver: str,
        options: Dict[str, Any],
        timeout: Optional[float],
        proof: bool,
        cache: bool,
        progress_interval: int,
    ):
        self.instance = instance
        self.instance_text = instance_text
        self.solver = solver
        self.options = options
        self.timeout = timeout
        self.proof = proof
        self.cache = cache
        self.progress_interval = progress_interval

    # ------------------------------------------------------------------
    @classmethod
    def from_json(cls, data: Any) -> "SubmitRequest":
        """Validate a decoded ``POST /jobs`` body.

        Raises :class:`ProtocolError` with a client-attributable code on
        any malformed field; nothing about the request is trusted past
        this point.
        """
        if not isinstance(data, dict):
            raise ProtocolError("bad_request", "request body must be a JSON object")
        unknown = set(data) - {
            "instance", "solver", "options", "timeout", "proof", "cache",
            "progress_interval",
        }
        if unknown:
            raise ProtocolError(
                "bad_request", "unknown field(s): %s" % ", ".join(sorted(unknown))
            )
        text = data.get("instance")
        if not isinstance(text, str) or not text.strip():
            raise ProtocolError(
                "bad_request", "'instance' must be non-empty OPB text"
            )
        try:
            instance = parse(io.StringIO(text))
        except (OPBError, InfeasibleConstraintError, ValueError) as exc:
            raise ProtocolError("bad_request", "instance does not parse: %s" % exc)

        solver = data.get("solver", "bsolo-lpr")
        if not isinstance(solver, str):
            raise ProtocolError("bad_request", "'solver' must be a string")
        try:
            solver = resolve_solver(solver)
        except Exception as exc:
            raise ProtocolError("unknown_solver", str(exc))

        raw_options = data.get("options", {})
        if not isinstance(raw_options, dict):
            raise ProtocolError("bad_request", "'options' must be an object")
        bad_keys = set(raw_options) - ALLOWED_OPTION_KEYS
        if bad_keys:
            raise ProtocolError(
                "bad_request",
                "unsupported option(s): %s (allowed: %s)"
                % (
                    ", ".join(sorted(bad_keys)),
                    ", ".join(sorted(ALLOWED_OPTION_KEYS)),
                ),
            )
        try:
            SolverOptions(**raw_options)
        except (TypeError, ValueError) as exc:
            raise ProtocolError("bad_request", "invalid options: %s" % exc)

        timeout = data.get("timeout")
        if timeout is not None:
            if not isinstance(timeout, (int, float)) or isinstance(timeout, bool) \
                    or timeout <= 0:
                raise ProtocolError(
                    "bad_request", "'timeout' must be a positive number of seconds"
                )
            timeout = float(timeout)

        proof = data.get("proof", False)
        if not isinstance(proof, bool):
            raise ProtocolError("bad_request", "'proof' must be a boolean")
        if proof and not solver.startswith("bsolo"):
            raise ProtocolError(
                "unsupported",
                "proof=true requires a bsolo-* solver (solver %r does not "
                "log derivations)" % solver,
            )

        cache = data.get("cache", True)
        if not isinstance(cache, bool):
            raise ProtocolError("bad_request", "'cache' must be a boolean")

        progress_interval = data.get("progress_interval", 200)
        if not isinstance(progress_interval, int) \
                or isinstance(progress_interval, bool) or progress_interval < 1:
            raise ProtocolError(
                "bad_request", "'progress_interval' must be a positive integer"
            )

        return cls(
            instance=instance,
            instance_text=text,
            solver=solver,
            options=dict(raw_options),
            timeout=timeout,
            proof=proof,
            cache=cache,
            progress_interval=progress_interval,
        )


def format_sse(event: str, data: Mapping[str, Any]) -> bytes:
    """Render one Server-Sent Event frame (``event:``/``data:`` lines).

    ``event`` must come from :data:`SSE_EVENT_TYPES`; the JSON payload
    is rendered with sorted keys so traces diff deterministically.
    """
    if event not in SSE_EVENT_TYPES:
        raise ValueError("unknown SSE event type %r" % event)
    return (
        "event: %s\ndata: %s\n\n" % (event, json.dumps(data, sort_keys=True))
    ).encode("utf-8")


def parse_sse(lines) -> Any:
    """Iterate ``(event, data)`` pairs from an SSE line stream.

    Accepts any iterable of ``str`` lines (trailing newlines optional)
    and yields the event name with the decoded JSON payload; used by the
    client and by tests replaying captured streams.
    """
    event: Optional[str] = None
    data_parts = []
    for raw in lines:
        line = raw.rstrip("\r\n")
        if line.startswith("event:"):
            event = line[len("event:"):].strip()
        elif line.startswith("data:"):
            data_parts.append(line[len("data:"):].strip())
        elif not line:
            if event is not None:
                yield event, json.loads("".join(data_parts) or "null")
            event, data_parts = None, []
    if event is not None:
        yield event, json.loads("".join(data_parts) or "null")
