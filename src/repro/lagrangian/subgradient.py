"""Lagrangian relaxation lower bounding (paper Sections 3.2, 4.3).

The constraints of the (reduced) sub-problem are dualized into the
objective with non-negative multipliers ``mu``.  For inequality
constraints ``A x >= b`` the correct penalization is ``mu . (b - A x)``
(Ahuja-Magnanti-Orlin, the paper's reference [12]; the paper's eq. 4/6
carry a sign typo — with ``mu . (A x - b)`` and non-negative data every
``alpha_j`` would be non-negative and the bound trivial).  Hence::

    L(mu) = min_{x in {0,1}^n}  sum_j alpha_j x_j  +  mu . b
    alpha_j = c_j - sum_i mu_i a_ij          (integer-form coefficients)
    x_j(mu) = 1  iff  alpha_j < 0

``L(mu)`` is a lower bound on the PB optimum for every ``mu >= 0``
(Lagrangian bounding principle); ``L* = max_mu L(mu)`` is approached with
the textbook subgradient method: ``mu <- max(0, mu + theta_k g_k)`` with
``g_k = b - A x(mu_k)`` and step ``theta_k = lambda_k (UB - L(mu_k)) /
||g_k||^2``, halving ``lambda`` after a stall.

For bound-conflict explanations (Section 4.3) the responsible set ``S``
holds the constraints with non-zero multipliers; the ``alpha_j`` sign
refinement drops assignments whose flip could only raise the bound.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..pb.constraints import Constraint
from ..pb.instance import PBInstance
from ..lp.relaxation import LowerBound
from ..lp.standard_form import build_lp_data
from ..lp.tolerances import ceil_guarded


class SubgradientOptions:
    """Tuning knobs for the subgradient ascent."""

    def __init__(
        self,
        max_iterations: int = 100,
        initial_lambda: float = 2.0,
        stall_limit: int = 5,
        min_lambda: float = 1e-4,
    ):
        self.max_iterations = max_iterations
        self.initial_lambda = initial_lambda
        self.stall_limit = stall_limit
        self.min_lambda = min_lambda


class LagrangianBound:
    """Lower bound estimation via Lagrangian relaxation + subgradient."""

    name = "lgr"

    def __init__(
        self,
        instance: PBInstance,
        options: Optional[SubgradientOptions] = None,
        multiplier_tol: float = 1e-9,
        reuse_multipliers: bool = True,
    ):
        self._instance = instance
        self._options = options or SubgradientOptions()
        self._multiplier_tol = multiplier_tol
        #: Warm-start each call from the previous call's best multipliers
        #: (consecutive search nodes have similar sub-problems, so the
        #: ascent resumes near the optimum — standard subgradient
        #: practice, Ahuja-Magnanti-Orlin).
        self._reuse_multipliers = reuse_multipliers
        self._mu_memory: Dict[Constraint, float] = {}
        self.num_calls = 0
        self.total_iterations = 0
        self.total_seconds = 0.0
        #: Trace of L(mu) per iteration of the last call (for convergence
        #: studies, paper Section 6 discusses LGR's slow convergence).
        self.last_trace: List[float] = []

    # ------------------------------------------------------------------
    def compute(
        self,
        fixed: Mapping[int, int],
        extra_constraints: Sequence[Constraint] = (),
        upper_target: Optional[float] = None,
        warm_start: Optional[Mapping[Constraint, float]] = None,
    ) -> LowerBound:
        """``P.lower`` via subgradient ascent of ``L(mu)``.

        ``upper_target`` feeds the Polyak step size (defaults to the sum
        of remaining costs); ``warm_start`` may carry LP duals keyed by
        constraint.
        """
        started = time.perf_counter()
        try:
            return self._compute(fixed, extra_constraints, upper_target, warm_start)
        finally:
            self.total_seconds += time.perf_counter() - started

    def stats_dict(self) -> Dict[str, float]:
        """Structured per-bounder stats (merged into ``SolverStats``)."""
        return {
            "calls": self.num_calls,
            "iterations": self.total_iterations,
            "seconds": round(self.total_seconds, 6),
        }

    def _compute(
        self,
        fixed: Mapping[int, int],
        extra_constraints: Sequence[Constraint] = (),
        upper_target: Optional[float] = None,
        warm_start: Optional[Mapping[Constraint, float]] = None,
    ) -> LowerBound:
        self.num_calls += 1
        data = build_lp_data(self._instance, fixed, extra_constraints)
        if data is None:
            return LowerBound(0, infeasible=True)
        m, n = data.num_rows, data.num_columns
        if m == 0:
            return LowerBound(0)

        c = data.c
        A = data.A
        b = data.b
        if upper_target is None:
            upper_target = float(c.sum()) + 1.0

        mu = np.zeros(m)
        source = warm_start if warm_start else (
            self._mu_memory if self._reuse_multipliers else None
        )
        if source:
            for i, row in enumerate(data.rows):
                mu[i] = max(0.0, float(source.get(row, 0.0)))

        options = self._options
        lam = options.initial_lambda
        best_value = -math.inf
        best_mu = mu.copy()
        stall = 0
        self.last_trace = []

        for iteration in range(options.max_iterations):
            alpha = c - mu @ A
            x = (alpha < 0.0).astype(float)
            value = float(alpha[alpha < 0.0].sum() + mu @ b)
            self.last_trace.append(value)
            self.total_iterations += 1
            if value > best_value + 1e-12:
                best_value = value
                best_mu = mu.copy()
                stall = 0
            else:
                stall += 1
                if stall >= options.stall_limit:
                    lam /= 2.0
                    stall = 0
                    if lam < options.min_lambda:
                        break
            g = b - A @ x
            norm = float(g @ g)
            if norm < 1e-12:
                # x(mu) satisfies every dualized row exactly: L(mu) is L*.
                break
            theta = lam * max(upper_target - value, 1e-6) / norm
            mu = np.maximum(0.0, mu + theta * g)

        if best_value == -math.inf:  # pragma: no cover - defensive
            best_value = 0.0
        bound = max(ceil_guarded(best_value), 0)

        if self._reuse_multipliers:
            self._mu_memory = {
                data.rows[i]: float(best_mu[i])
                for i in range(m)
                if best_mu[i] > self._multiplier_tol
            }

        explanation, alpha_by_var = self._explanation(data, best_mu)
        return LowerBound(
            bound,
            explanation=explanation,
            fractional={},
            duals_by_row={
                data.rows[i]: float(best_mu[i]) for i in range(m) if best_mu[i] > self._multiplier_tol
            },
            iterations=len(self.last_trace),
        )

    # ------------------------------------------------------------------
    def _explanation(
        self, data, mu: np.ndarray
    ) -> Tuple[List[Constraint], Dict[int, float]]:
        """The paper's set ``S``: constraints with non-zero multipliers."""
        explanation = [
            data.rows[i] for i in range(data.num_rows) if mu[i] > self._multiplier_tol
        ]
        alpha = data.c - mu @ data.A
        alpha_by_var = {
            data.columns[j]: float(alpha[j]) for j in range(data.num_columns)
        }
        return explanation, alpha_by_var

    # ------------------------------------------------------------------
    def alpha_of_assigned(
        self,
        fixed: Mapping[int, int],
        duals_by_row: Mapping[Constraint, float],
    ) -> Dict[int, float]:
        """``alpha_j`` for *assigned* variables over the S constraints.

        Used by the Section 4.3 refinement: a false literal over variable
        ``j`` can be dropped from ``w_pl`` when flipping ``x_j`` cannot
        lower the bound, i.e. when ``x_j = 0`` and ``alpha_j >= 0``, or
        ``x_j = 1`` and ``alpha_j <= 0`` (corrected signs).
        """
        alpha: Dict[int, float] = {}
        costs = self._instance.objective.costs
        for var in fixed:
            alpha[var] = float(costs.get(var, 0))
        for constraint, mu_i in duals_by_row.items():
            if mu_i <= self._multiplier_tol:
                continue
            weights, _ = constraint.integer_form()
            for var, weight in weights.items():
                if var in alpha:
                    alpha[var] -= mu_i * weight
        return alpha
