"""Lagrangian relaxation lower bounding (paper Sections 3.2 and 4.3)."""

from .subgradient import LagrangianBound, SubgradientOptions

__all__ = ["LagrangianBound", "SubgradientOptions"]
