"""Trace sinks: the no-op null tracer and a buffered JSONL writer.

The solver is instrumented with ``if tracer.enabled: tracer.emit(...)``
guards, so with the default :data:`NULL_TRACER` a solve performs zero
event construction and zero sink writes — tracing must be free when off.

When enabled, :class:`JsonlTracer` writes one JSON object per line::

    {"kind": "run_header", "t": 0.0, "solver": "bsolo", ...}
    {"kind": "decision", "t": 0.000123, "literal": -3, "level": 1}
    ...
    {"kind": "result", "t": 0.042, "status": "optimal", "cost": 4, ...}

``t`` is the monotonic time in seconds since the first event of the
trace.  Events are buffered and flushed in batches so tracing long runs
does not turn into one syscall per decision.

Two properties matter for fleet use (portfolio workers):

* **crash safety** — a finalizer drains the buffer when the tracer is
  garbage-collected or the interpreter exits, so a worker that dies
  without calling :meth:`JsonlTracer.close` still leaves every buffered
  event on disk; a worker killed mid-write leaves at worst one
  truncated *final* line, which :func:`read_trace` tolerates (the trace
  is truncated, never corrupt);
* **clock alignment** — the first record carries an ``epoch`` field
  (wall-clock seconds at the first event), so the portfolio coordinator
  can shift each worker's monotonic ``t`` values onto a common
  timeline (see :mod:`repro.obs.merge`).
"""

from __future__ import annotations

import json
import time
import weakref
from typing import IO, Any, Dict, List, Optional, Union

from .events import Event


def _drain(file: IO[str], buffer: List[str], owns_file: bool) -> None:
    """Finalizer body: flush whatever is buffered, then release the file.

    Takes the file and the (shared, mutated-in-place) buffer list rather
    than the tracer so the finalizer holds no reference that would keep
    the tracer alive.
    """
    try:
        if buffer:
            file.write("\n".join(buffer) + "\n")
            buffer.clear()
        file.flush()
        if owns_file:
            file.close()
    except (OSError, ValueError):
        pass  # interpreter teardown: the file may already be gone


class Tracer:
    """No-op base tracer; also the interface sinks implement.

    ``enabled`` is the contract with instrumented code: call sites must
    skip event construction entirely when it is False.
    """

    enabled = False

    #: Optional label stamped into the run header by the solver (set by
    #: the CLI / harness before solve()).
    instance_label = ""

    def emit(self, event: Event) -> None:
        """Record one event (base class: drop it)."""
        pass

    def flush(self) -> None:
        """Push buffered events to the sink (base class: no-op)."""
        pass

    def close(self) -> None:
        """Release the sink (base class: no-op)."""
        pass

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class NullTracer(Tracer):
    """Disabled tracer (the default everywhere)."""


#: Shared no-op instance: safe because it holds no state.
NULL_TRACER = NullTracer()


class JsonlTracer(Tracer):
    """Buffered JSONL trace writer with monotonic timestamps."""

    enabled = True

    def __init__(
        self,
        sink: Union[str, IO[str]],
        buffer_size: int = 256,
        clock=time.monotonic,
        wall_clock=time.time,
    ):
        if buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        if isinstance(sink, str):
            self._file: IO[str] = open(sink, "w")
            self._owns_file = True
        else:
            self._file = sink
            self._owns_file = False
        self._buffer: List[str] = []
        self._buffer_size = buffer_size
        self._clock = clock
        self._wall_clock = wall_clock
        self._start: Optional[float] = None
        self._closed = False
        self.instance_label = ""
        #: Events accepted so far.
        self.events_emitted = 0
        #: Physical sink writes performed (for overhead accounting).
        self.writes = 0
        # Crash safety: drain the buffer at GC / interpreter exit.  The
        # finalizer captures the buffer *list* (mutated in place by
        # flush) so it always sees the current backlog, and never the
        # tracer itself, so it does not keep the tracer alive.
        self._finalizer = weakref.finalize(
            self, _drain, self._file, self._buffer, self._owns_file
        )

    # ------------------------------------------------------------------
    def emit(self, event: Event) -> None:
        """Buffer one event, stamped with the run-relative time.

        The first event additionally carries ``epoch``: the wall-clock
        time the trace started, for cross-process timeline alignment.
        """
        now = self._clock()
        record: Dict[str, Any] = {"kind": event.kind, "t": 0.0}
        if self._start is None:
            self._start = now
            record["epoch"] = round(self._wall_clock(), 6)
        else:
            record["t"] = round(now - self._start, 6)
        record.update(event.payload())
        self._buffer.append(json.dumps(record, separators=(",", ":"), default=str))
        self.events_emitted += 1
        if len(self._buffer) >= self._buffer_size:
            self.flush()

    def flush(self) -> None:
        """Write the buffered JSONL lines out."""
        if not self._buffer:
            return
        self._file.write("\n".join(self._buffer) + "\n")
        self.writes += 1
        self._buffer.clear()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._closed:
            return
        self._finalizer.detach()
        self.flush()
        self._file.flush()
        if self._owns_file:
            self._file.close()
        self._closed = True


def read_trace(path: str, strict: bool = False) -> List[Dict[str, Any]]:
    """Parse a JSONL trace back into a list of record dicts.

    A worker killed mid-write leaves at worst one truncated *final*
    line; by default it is silently dropped (the trace is truncated, not
    corrupt).  A malformed line anywhere *else* — or the final one under
    ``strict=True`` — raises ``ValueError``: that is real corruption,
    not a crash artifact.
    """
    with open(path) as handle:
        lines = [line.strip() for line in handle]
    while lines and not lines[-1]:
        lines.pop()
    records: List[Dict[str, Any]] = []
    for index, line in enumerate(lines):
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            if index == len(lines) - 1 and not strict:
                break  # truncated tail from a mid-write crash
            raise ValueError(
                "corrupt trace line %d in %s: %r" % (index + 1, path, line[:80])
            )
    return records
