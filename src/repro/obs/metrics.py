"""Low-overhead metrics: counters, gauges and histograms.

The second pillar of the observability layer (the first is event
tracing, :mod:`repro.obs.trace`): cheap *aggregate* instruments that
survive where per-event tracing is too expensive — portfolio fleets,
long benchmark runs, CI jobs.

Design rules, in order of importance:

1. **Zero cost when disabled.**  The shared :data:`NULL_METRICS`
   registry hands out inert instruments and reports ``enabled = False``;
   instrumented code resolves its instruments once (at construction
   time) and guards hot-path updates with a cached boolean, exactly the
   :data:`~repro.obs.trace.NULL_TRACER` discipline.  The propagation
   engines go further and bypass their accounting wrapper entirely when
   neither tracing nor metrics are live.
2. **Deterministic exposition.**  :meth:`MetricsRegistry.render_text`
   and :meth:`MetricsRegistry.as_dict` order families and label sets
   lexicographically, so two runs that did the same work render the
   same report and text diffs are meaningful.
3. **Mergeable across processes.**  :meth:`MetricsRegistry.snapshot`
   produces a plain-dict state that travels over a multiprocessing
   queue; :meth:`MetricsRegistry.merge_snapshot` folds it into another
   registry (counters add, gauges keep the last write, histograms add
   bucket-wise).  The portfolio coordinator uses this to aggregate the
   fleet.

Instruments follow the Prometheus vocabulary:

* :class:`Counter` — monotonically increasing count (``inc``);
* :class:`Gauge` — a value that can go anywhere (``set``/``inc``/``dec``);
* :class:`Histogram` — observation counts in fixed, cumulative-rendered
  buckets plus sum/count (``observe``).

A *family* is a named instrument plus its labeled children::

    registry = MetricsRegistry()
    conflicts = registry.counter("solver_conflicts", "...", labels=("type",))
    conflicts.labels(type="logic").inc()
    print(registry.render_text())
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (seconds-flavoured, spanning
#: microsecond bound calls to multi-second LP solves).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: End-to-end request-latency bucket bounds (seconds), spanning
#: cache-hit microlatencies to multi-minute solves; used by the service
#: layer's ``service_job_seconds`` family (:mod:`repro.service.metrics`).
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

_COUNTER = "counter"
_GAUGE = "gauge"
_HISTOGRAM = "histogram"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge:
    """A value that can rise and fall (queue depth, current bound)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the gauge."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.value -= amount


class Histogram:
    """Observation counts in fixed buckets, plus running sum and count.

    ``buckets`` holds the *upper bounds* of the non-cumulative bins; an
    implicit ``+Inf`` bin catches the tail.  Rendering is cumulative
    (Prometheus ``le`` semantics) so downstream tooling can compute
    quantile estimates.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be a sorted, non-empty sequence")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # + the +Inf tail bin
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> List[Tuple[str, int]]:
        """``(le, count)`` pairs with Prometheus-style cumulative counts."""
        out: List[Tuple[str, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((_format_bound(bound), running))
        out.append(("+Inf", self.count))
        return out


def _format_bound(bound: float) -> str:
    """Render a bucket bound without trailing float noise."""
    text = "%g" % bound
    return text


class _Family:
    """A named instrument family: metadata plus labeled children."""

    __slots__ = ("name", "help", "type", "label_names", "buckets", "_children")

    def __init__(self, name: str, help_text: str, metric_type: str,
                 label_names: Tuple[str, ...],
                 buckets: Optional[Sequence[float]] = None):
        self.name = name
        self.help = help_text
        self.type = metric_type
        self.label_names = label_names
        self.buckets = tuple(buckets) if buckets is not None else None
        #: label-value tuple -> instrument
        self._children: Dict[Tuple[str, ...], Any] = {}

    # ------------------------------------------------------------------
    def labels(self, **label_values: str):
        """The child instrument for one label-value combination."""
        if set(label_values) != set(self.label_names):
            raise ValueError(
                "metric %r takes labels %r, got %r"
                % (self.name, self.label_names, tuple(sorted(label_values)))
            )
        key = tuple(str(label_values[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _default_child(self):
        """The unlabeled child (only valid for label-less families)."""
        if self.label_names:
            raise ValueError(
                "metric %r is labeled %r; use .labels(...)"
                % (self.name, self.label_names)
            )
        return self.labels()

    def _make_child(self):
        if self.type == _COUNTER:
            return Counter()
        if self.type == _GAUGE:
            return Gauge()
        return Histogram(self.buckets if self.buckets is not None else DEFAULT_BUCKETS)

    def children(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """Sorted ``(label_values, instrument)`` pairs."""
        return sorted(self._children.items())


class MetricsRegistry:
    """A process-local collection of metric families.

    ``enabled`` is the contract with instrumented code, mirroring the
    tracer: when False (see :class:`NullMetricsRegistry`) call sites
    must skip instrument updates entirely.
    """

    enabled = True

    def __init__(self):
        self._families: Dict[str, _Family] = {}

    # -- registration ---------------------------------------------------
    def counter(self, name: str, help_text: str = "",
                labels: Sequence[str] = ()):
        """Register (or re-fetch) a counter family.

        Label-less families return the :class:`Counter` directly; labeled
        families return the family, whose :meth:`~_Family.labels` hands
        out children.
        """
        return self._register(name, help_text, _COUNTER, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: Sequence[str] = ()):
        """Register (or re-fetch) a gauge family."""
        return self._register(name, help_text, _GAUGE, labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS):
        """Register (or re-fetch) a histogram family with fixed buckets."""
        return self._register(name, help_text, _HISTOGRAM, labels, buckets)

    def _register(self, name: str, help_text: str, metric_type: str,
                  labels: Sequence[str],
                  buckets: Optional[Sequence[float]] = None):
        label_names = tuple(labels)
        family = self._families.get(name)
        if family is not None:
            if family.type != metric_type or family.label_names != label_names:
                raise ValueError(
                    "metric %r already registered as %s%r"
                    % (name, family.type, family.label_names)
                )
        else:
            family = _Family(name, help_text, metric_type, label_names, buckets)
            self._families[name] = family
        if not label_names:
            return family._default_child()
        return family

    # -- introspection --------------------------------------------------
    def families(self) -> List[_Family]:
        """All families, sorted by name."""
        return [self._families[name] for name in sorted(self._families)]

    def get_value(self, name: str, **label_values) -> Any:
        """Current value of one instrument (test/report convenience).

        Counters/gauges return the scalar; histograms return
        ``{"sum", "count"}``.  Missing metrics/children return None.
        """
        family = self._families.get(name)
        if family is None:
            return None
        key = tuple(str(label_values.get(n, "")) for n in family.label_names)
        child = family._children.get(key)
        if child is None:
            return None
        if isinstance(child, Histogram):
            return {"sum": child.sum, "count": child.count}
        return child.value

    # -- exposition -----------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """Deterministic JSON-safe exposition of every family."""
        out: Dict[str, Any] = {}
        for family in self.families():
            samples = []
            for key, child in family.children():
                labels = dict(zip(family.label_names, key))
                if isinstance(child, Histogram):
                    samples.append(
                        {
                            "labels": labels,
                            "sum": child.sum,
                            "count": child.count,
                            "buckets": [
                                {"le": le, "count": count}
                                for le, count in child.cumulative()
                            ],
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "type": family.type,
                "help": family.help,
                "samples": samples,
            }
        return out

    def render_text(self) -> str:
        """Prometheus-style text exposition (deterministic ordering)."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append("# HELP %s %s" % (family.name, family.help))
            lines.append("# TYPE %s %s" % (family.name, family.type))
            for key, child in family.children():
                labels = _render_labels(family.label_names, key)
                if isinstance(child, Histogram):
                    for le, count in child.cumulative():
                        bucket_labels = _render_labels(
                            family.label_names + ("le",), key + (le,)
                        )
                        lines.append(
                            "%s_bucket%s %d" % (family.name, bucket_labels, count)
                        )
                    lines.append(
                        "%s_sum%s %s"
                        % (family.name, labels, _render_value(child.sum))
                    )
                    lines.append(
                        "%s_count%s %d" % (family.name, labels, child.count)
                    )
                else:
                    lines.append(
                        "%s%s %s"
                        % (family.name, labels, _render_value(child.value))
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    # -- cross-process aggregation --------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Picklable full state, for shipping over a process boundary."""
        snap: Dict[str, Any] = {}
        for family in self.families():
            children = []
            for key, child in family.children():
                if isinstance(child, Histogram):
                    state: Any = {
                        "counts": list(child.counts),
                        "sum": child.sum,
                        "count": child.count,
                    }
                else:
                    state = child.value
                children.append([list(key), state])
            snap[family.name] = {
                "type": family.type,
                "help": family.help,
                "labels": list(family.label_names),
                "buckets": list(family.buckets) if family.buckets else None,
                "children": children,
            }
        return snap

    def merge_snapshot(self, snap: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histogram bins add; gauges take the incoming value
        (last write wins).  Families absent here are created from the
        snapshot's metadata.
        """
        for name in sorted(snap):
            entry = snap[name]
            family = self._families.get(name)
            if family is None:
                family = _Family(
                    name, entry.get("help", ""), entry["type"],
                    tuple(entry.get("labels", ())), entry.get("buckets"),
                )
                self._families[name] = family
            for key_list, state in entry.get("children", ()):
                key = tuple(key_list)
                child = family._children.get(key)
                if child is None:
                    child = family._make_child()
                    family._children[key] = child
                if family.type == _HISTOGRAM:
                    counts = state["counts"]
                    if len(counts) != len(child.counts):
                        raise ValueError(
                            "histogram %r bucket mismatch in snapshot" % name
                        )
                    for index, count in enumerate(counts):
                        child.counts[index] += count
                    child.sum += state["sum"]
                    child.count += state["count"]
                elif family.type == _COUNTER:
                    child.value += state
                else:  # gauge: last write wins
                    child.value = state


def _render_labels(names: Iterable[str], values: Iterable[str]) -> str:
    pairs = [
        '%s="%s"' % (name, str(value).replace("\\", "\\\\").replace('"', '\\"'))
        for name, value in zip(names, values)
    ]
    return "{%s}" % ",".join(pairs) if pairs else ""


def _render_value(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


# ----------------------------------------------------------------------
class _NullInstrument:
    """Inert instrument satisfying every instrument interface."""

    __slots__ = ()

    value = 0
    sum = 0.0
    count = 0

    def inc(self, amount: float = 1) -> None:
        """No-op."""
        pass

    def dec(self, amount: float = 1) -> None:
        """No-op."""
        pass

    def set(self, value: float) -> None:
        """No-op."""
        pass

    def observe(self, value: float) -> None:
        """No-op."""
        pass

    def labels(self, **label_values):
        """No-op: labeled children of a null family are the family."""
        return self


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Disabled registry (the default everywhere).

    Hands out shared inert instruments so construction-time wiring stays
    branch-free, and reports ``enabled = False`` so hot paths skip
    updates entirely.
    """

    enabled = False

    def counter(self, name: str, help_text: str = "", labels: Sequence[str] = ()):
        """An inert counter/family."""
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help_text: str = "", labels: Sequence[str] = ()):
        """An inert gauge/family."""
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help_text: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS):
        """An inert histogram/family."""
        return _NULL_INSTRUMENT

    def families(self) -> List[Any]:
        """Always empty."""
        return []

    def get_value(self, name: str, **label_values) -> Any:
        """Always None: nothing is recorded."""
        return None

    def as_dict(self) -> Dict[str, Any]:
        """Always empty."""
        return {}

    def render_text(self) -> str:
        """Always empty."""
        return ""

    def snapshot(self) -> Dict[str, Any]:
        """Always empty."""
        return {}

    def merge_snapshot(self, snap: Mapping[str, Any]) -> None:
        """Dropped: a disabled registry aggregates nothing."""
        pass


#: Shared no-op instance: safe because it holds no state.
NULL_METRICS = NullMetricsRegistry()

#: Process-wide default registry, used by call sites that opt into
#: metrics without threading a registry explicitly (CLI ``--metrics``).
_default_registry: MetricsRegistry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default registry; returns the old one."""
    global _default_registry
    old = _default_registry
    _default_registry = registry
    return old
