"""Phase timers: exclusive per-phase wall-time accounting.

A :class:`PhaseTimer` maintains a stack of named phases.  Time is
attributed *exclusively*: when a nested phase starts, the parent's
running segment is banked and the clock belongs to the child until it
pops.  Consequently ``sum(totals.values())`` never exceeds the wall
time spanned by the outermost phases — the invariant the profile
report relies on (phases must sum to at most ``stats.elapsed``).

The solver uses the conventional phase names::

    preprocess / propagate / analyze / branching / cuts
    lower_bound.mis / lower_bound.lgr / lower_bound.lpr

With profiling off the solver holds the shared :data:`NULL_TIMER`,
whose ``push``/``pop`` are no-ops.
"""

from __future__ import annotations

import time
from typing import Dict, List


class _PhaseContext:
    """``with timer.phase("name"):`` support."""

    __slots__ = ("_timer", "_name")

    def __init__(self, timer: "PhaseTimer", name: str):
        self._timer = timer
        self._name = name

    def __enter__(self) -> None:
        self._timer.push(self._name)

    def __exit__(self, *exc) -> bool:
        self._timer.pop()
        return False


class PhaseTimer:
    """Stack-based exclusive phase timing.

    ``listener``, when given, is called with the name of the phase that
    became current after every push/pop (the empty string once the stack
    drains) — the hook the hotspot profiler uses to scope its samples to
    solver phases without the solver knowing about the profiler.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter, listener=None):
        self._clock = clock
        # [name, start-of-current-exclusive-segment]
        self._stack: List[List] = []
        #: phase name -> exclusive seconds (banked segments only).
        self.totals: Dict[str, float] = {}
        #: Optional ``callable(current_phase: str)`` phase-change hook.
        self.listener = listener

    # ------------------------------------------------------------------
    def push(self, name: str) -> None:
        """Enter a phase; suspends the enclosing phase's clock."""
        now = self._clock()
        stack = self._stack
        if stack:
            top = stack[-1]
            self.totals[top[0]] = self.totals.get(top[0], 0.0) + now - top[1]
        stack.append([name, now])
        if self.listener is not None:
            self.listener(name)

    def pop(self) -> str:
        """Leave the current phase; resumes the enclosing phase's clock."""
        now = self._clock()
        stack = self._stack
        if not stack:
            raise RuntimeError("PhaseTimer.pop() with no phase active")
        name, since = stack.pop()
        self.totals[name] = self.totals.get(name, 0.0) + now - since
        if stack:
            stack[-1][1] = now
        if self.listener is not None:
            self.listener(stack[-1][0] if stack else "")
        return name

    def phase(self, name: str) -> _PhaseContext:
        """Context-manager form of push/pop."""
        return _PhaseContext(self, name)

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Current phase-nesting depth."""
        return len(self._stack)

    def snapshot(self) -> Dict[str, float]:
        """Current totals, including the still-running top segment."""
        result = dict(self.totals)
        if self._stack:
            name, since = self._stack[-1]
            result[name] = result.get(name, 0.0) + self._clock() - since
        return result


class _NullContext:
    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullPhaseTimer:
    """No-op timer used when profiling is disabled."""

    enabled = False

    @property
    def totals(self) -> Dict[str, float]:
        """Always empty: the null timer records nothing."""
        return {}

    @property
    def depth(self) -> int:
        """Always 0: the null timer tracks no phases."""
        return 0

    def push(self, name: str) -> None:
        """No-op."""
        pass

    def pop(self) -> str:
        """No-op; returns an empty phase name."""
        return ""

    def phase(self, name: str) -> _NullContext:
        """No-op context manager."""
        return _NULL_CONTEXT

    def snapshot(self) -> Dict[str, float]:
        """Always empty: nothing is being timed."""
        return {}


#: Shared no-op instance: safe because it holds no state.
NULL_TIMER = NullPhaseTimer()
