"""Typed search-event records for trace files.

Each event is a small dataclass with a ``kind`` tag; a trace is the
sequence of events one solve emitted, serialized as JSONL (one event per
line, see :mod:`repro.obs.trace`).  The schema mirrors what the paper's
experiments attribute solver behaviour to: decisions, propagation
batches, logic vs. bound conflicts (Section 4), backjumps, restarts,
lower-bound calls per method (Section 3), incumbent updates and cuts
(Section 5).

Events carry *payload* fields only; the tracer stamps the relative
monotonic timestamp ``t`` at emission time, so re-running a search
produces structurally identical traces up to timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Dict, Optional

#: Event kind tags (the ``kind`` field of every JSONL record).
RUN_HEADER = "run_header"
DECISION = "decision"
PROPAGATION = "propagation"
CONFLICT = "conflict"
BACKJUMP = "backjump"
RESTART = "restart"
LOWER_BOUND = "lower_bound"
INCUMBENT = "incumbent"
CUT = "cut"
PROGRESS = "progress"
RESULT = "result"
WORKER_SUMMARY = "worker_summary"

EVENT_KINDS = (
    RUN_HEADER,
    DECISION,
    PROPAGATION,
    CONFLICT,
    BACKJUMP,
    RESTART,
    LOWER_BOUND,
    INCUMBENT,
    CUT,
    PROGRESS,
    RESULT,
    WORKER_SUMMARY,
)


@dataclass
class Event:
    """Base class: every event has a class-level ``kind`` tag."""

    kind: ClassVar[str] = ""

    def payload(self) -> Dict[str, Any]:
        """The event's fields as a plain dict (no kind, no timestamp)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class RunHeaderEvent(Event):
    """First record of every trace: which solver ran on what."""

    kind: ClassVar[str] = RUN_HEADER
    solver: str = ""
    instance: str = ""
    options: Dict[str, Any] = field(default_factory=dict)


@dataclass
class DecisionEvent(Event):
    """A branching decision opening a new level."""

    kind: ClassVar[str] = DECISION
    literal: int = 0
    level: int = 0


@dataclass
class PropagationEvent(Event):
    """One call to BCP: how many implications it produced."""

    kind: ClassVar[str] = PROPAGATION
    count: int = 0
    level: int = 0
    conflict: bool = False


@dataclass
class ConflictEvent(Event):
    """A logic conflict (violated constraint) or a bound conflict
    (``path + lower >= upper``, paper Section 4)."""

    kind: ClassVar[str] = CONFLICT
    type: str = "logic"  # "logic" | "bound"
    level: int = 0


@dataclass
class BackjumpEvent(Event):
    """Non-chronological backtrack performed by conflict analysis."""

    kind: ClassVar[str] = BACKJUMP
    from_level: int = 0
    to_level: int = 0
    learned_size: int = 0


@dataclass
class RestartEvent(Event):
    """The restart scheduler cleared the decision stack."""

    kind: ClassVar[str] = RESTART
    conflicts: int = 0


@dataclass
class LowerBoundEvent(Event):
    """One lower-bound estimation (Section 3) and its outcome."""

    kind: ClassVar[str] = LOWER_BOUND
    method: str = ""  # "mis" | "lgr" | "lpr"
    value: int = 0  # bound on the remaining cost
    path: int = 0  # cost of the assignments so far
    level: int = 0
    infeasible: bool = False
    pruned: bool = False


@dataclass
class IncumbentEvent(Event):
    """A new best solution (upper bound improvement)."""

    kind: ClassVar[str] = INCUMBENT
    cost: int = 0
    decisions: int = 0
    conflicts: int = 0


@dataclass
class CutEvent(Event):
    """A cutting constraint learned from an improved solution
    (Section 5, eq. 10-13)."""

    kind: ClassVar[str] = CUT
    size: int = 0


@dataclass
class ProgressEvent(Event):
    """Periodic heartbeat (every N conflicts)."""

    kind: ClassVar[str] = PROGRESS
    conflicts: int = 0
    decisions: int = 0
    best: Optional[int] = None
    lower: Optional[int] = None


@dataclass
class ResultEvent(Event):
    """Last record of every trace: the solve outcome."""

    kind: ClassVar[str] = RESULT
    status: str = ""
    cost: Optional[int] = None
    decisions: int = 0
    conflicts: int = 0


@dataclass
class WorkerSummaryEvent(Event):
    """Synthesized by the portfolio trace merger: one worker's outcome.

    Merged timelines append one of these per worker so ``obs report``
    can render per-worker phase totals and the straggler summary without
    re-deriving them from the raw event stream.
    """

    kind: ClassVar[str] = WORKER_SUMMARY
    worker_id: int = 0
    label: str = ""
    solver: str = ""
    status: str = ""
    cost: Optional[int] = None
    elapsed: float = 0.0
    events: int = 0
    phase_times: Dict[str, float] = field(default_factory=dict)


#: kind tag -> event class, for re-hydrating parsed trace records.
EVENT_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        RunHeaderEvent,
        DecisionEvent,
        PropagationEvent,
        ConflictEvent,
        BackjumpEvent,
        RestartEvent,
        LowerBoundEvent,
        IncumbentEvent,
        CutEvent,
        ProgressEvent,
        ResultEvent,
        WorkerSummaryEvent,
    )
}


def event_from_record(record: Dict[str, Any]) -> Event:
    """Rebuild a typed event from a parsed JSONL record.

    Unknown payload keys (and the ``t`` timestamp) are ignored so traces
    stay readable across schema additions.
    """
    kind = record.get("kind")
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError("unknown event kind %r" % (kind,))
    known = {f.name for f in fields(cls)}
    return cls(**{key: value for key, value in record.items() if key in known})
