"""Observability: tracing, metrics, phase timers, profiling, reports.

The measurement layer every performance claim is judged against:

* :mod:`repro.obs.events` — typed search-event records (decision,
  propagation batch, logic/bound conflict, backjump, restart, lower
  bound call, incumbent update, cut, progress, result, worker summary);
* :mod:`repro.obs.trace` — the no-op :data:`NULL_TRACER` (zero overhead
  when disabled) and the crash-safe buffered :class:`JsonlTracer` sink;
* :mod:`repro.obs.metrics` — Counter/Gauge/Histogram families in a
  :class:`MetricsRegistry` with deterministic exposition and
  cross-process snapshot merging (:data:`NULL_METRICS` when off);
* :mod:`repro.obs.timers` — :class:`PhaseTimer` with exclusive-time
  accounting per search phase;
* :mod:`repro.obs.prof` — the opt-in :class:`HotspotProfiler`
  (phase-scoped collapsed stacks + self-time tables);
* :mod:`repro.obs.merge` — portfolio worker-trace merging onto one
  aligned timeline, plus the per-worker/straggler reports;
* :mod:`repro.obs.report` — profile tables and gap-vs-time summaries.

Typical use::

    from repro import JsonlTracer, SolverOptions, solve

    with JsonlTracer("run.jsonl") as tracer:
        result = solve(instance, SolverOptions(tracer=tracer, profile=True))
    print(result.stats.phase_times)
"""

from .events import (
    BACKJUMP,
    CONFLICT,
    CUT,
    DECISION,
    EVENT_KINDS,
    EVENT_TYPES,
    INCUMBENT,
    LOWER_BOUND,
    PROGRESS,
    PROPAGATION,
    RESTART,
    RESULT,
    RUN_HEADER,
    WORKER_SUMMARY,
    BackjumpEvent,
    ConflictEvent,
    CutEvent,
    DecisionEvent,
    Event,
    IncumbentEvent,
    LowerBoundEvent,
    ProgressEvent,
    PropagationEvent,
    RestartEvent,
    ResultEvent,
    RunHeaderEvent,
    WorkerSummaryEvent,
    event_from_record,
)
from .merge import (
    format_worker_report,
    merge_trace_files,
    merge_traces,
    straggler_summary,
    worker_spans,
    write_records,
)
from .metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    default_registry,
    set_default_registry,
)
from .prof import HotspotProfiler, format_hotspots
from .report import format_profile, format_progress, gap_history, trace_summary
from .timers import NULL_TIMER, NullPhaseTimer, PhaseTimer
from .trace import NULL_TRACER, JsonlTracer, NullTracer, Tracer, read_trace

__all__ = [
    "BACKJUMP",
    "CONFLICT",
    "CUT",
    "DECISION",
    "DEFAULT_BUCKETS",
    "EVENT_KINDS",
    "EVENT_TYPES",
    "INCUMBENT",
    "LATENCY_BUCKETS",
    "LOWER_BOUND",
    "NULL_METRICS",
    "NULL_TIMER",
    "NULL_TRACER",
    "PROGRESS",
    "PROPAGATION",
    "RESTART",
    "RESULT",
    "RUN_HEADER",
    "WORKER_SUMMARY",
    "BackjumpEvent",
    "ConflictEvent",
    "Counter",
    "CutEvent",
    "DecisionEvent",
    "Event",
    "Gauge",
    "Histogram",
    "HotspotProfiler",
    "IncumbentEvent",
    "JsonlTracer",
    "LowerBoundEvent",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NullPhaseTimer",
    "NullTracer",
    "PhaseTimer",
    "ProgressEvent",
    "PropagationEvent",
    "RestartEvent",
    "ResultEvent",
    "RunHeaderEvent",
    "Tracer",
    "WorkerSummaryEvent",
    "default_registry",
    "event_from_record",
    "format_hotspots",
    "format_profile",
    "format_progress",
    "format_worker_report",
    "gap_history",
    "merge_trace_files",
    "merge_traces",
    "read_trace",
    "set_default_registry",
    "straggler_summary",
    "trace_summary",
    "worker_spans",
    "write_records",
]
