"""Observability: search-event tracing, phase timers, profile reports.

The measurement layer every performance claim is judged against:

* :mod:`repro.obs.events` — typed search-event records (decision,
  propagation batch, logic/bound conflict, backjump, restart, lower
  bound call, incumbent update, cut, progress, result);
* :mod:`repro.obs.trace` — the no-op :data:`NULL_TRACER` (zero overhead
  when disabled) and the buffered :class:`JsonlTracer` sink;
* :mod:`repro.obs.timers` — :class:`PhaseTimer` with exclusive-time
  accounting per search phase;
* :mod:`repro.obs.report` — profile tables and gap-vs-time summaries.

Typical use::

    from repro import JsonlTracer, SolverOptions, solve

    with JsonlTracer("run.jsonl") as tracer:
        result = solve(instance, SolverOptions(tracer=tracer, profile=True))
    print(result.stats.phase_times)
"""

from .events import (
    BACKJUMP,
    CONFLICT,
    CUT,
    DECISION,
    EVENT_KINDS,
    EVENT_TYPES,
    INCUMBENT,
    LOWER_BOUND,
    PROGRESS,
    PROPAGATION,
    RESTART,
    RESULT,
    RUN_HEADER,
    BackjumpEvent,
    ConflictEvent,
    CutEvent,
    DecisionEvent,
    Event,
    IncumbentEvent,
    LowerBoundEvent,
    ProgressEvent,
    PropagationEvent,
    RestartEvent,
    ResultEvent,
    RunHeaderEvent,
    event_from_record,
)
from .report import format_profile, format_progress, gap_history, trace_summary
from .timers import NULL_TIMER, NullPhaseTimer, PhaseTimer
from .trace import NULL_TRACER, JsonlTracer, NullTracer, Tracer, read_trace

__all__ = [
    "BACKJUMP",
    "CONFLICT",
    "CUT",
    "DECISION",
    "EVENT_KINDS",
    "EVENT_TYPES",
    "INCUMBENT",
    "LOWER_BOUND",
    "NULL_TIMER",
    "NULL_TRACER",
    "PROGRESS",
    "PROPAGATION",
    "RESTART",
    "RESULT",
    "RUN_HEADER",
    "BackjumpEvent",
    "ConflictEvent",
    "CutEvent",
    "DecisionEvent",
    "Event",
    "IncumbentEvent",
    "JsonlTracer",
    "LowerBoundEvent",
    "NullPhaseTimer",
    "NullTracer",
    "PhaseTimer",
    "ProgressEvent",
    "PropagationEvent",
    "RestartEvent",
    "ResultEvent",
    "RunHeaderEvent",
    "Tracer",
    "event_from_record",
    "format_profile",
    "format_progress",
    "gap_history",
    "read_trace",
    "trace_summary",
]
