"""Human-readable rendering of profiles and trace progress.

Two consumers:

* ``--profile`` renders the phase-time table from a finished solve's
  ``stats.phase_times`` (live stats path);
* trace post-processing renders a gap-vs-time summary from the JSONL
  records of :mod:`repro.obs.trace` (offline path).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .events import CONFLICT, INCUMBENT, LOWER_BOUND, PROGRESS, RESULT


def format_profile(
    phase_times: Mapping[str, float],
    elapsed: Optional[float] = None,
    counters: Optional[Mapping[str, Any]] = None,
) -> str:
    """Render the per-phase wall-time breakdown as an aligned table.

    Phases are sorted by time spent, descending; when ``elapsed`` is
    given, untimed time (main-loop overhead, bookkeeping) shows up as an
    ``(other)`` row so the column sums to the total.  ``counters``
    appends observability counters below the table (e.g.
    ``uncertified_prunes`` on certifying runs, so the cost of proof
    logging is visible next to the phases that paid it); zero/None
    values are suppressed.
    """
    items: List[Tuple[str, float]] = sorted(
        phase_times.items(), key=lambda item: (-item[1], item[0])
    )
    timed = sum(phase_times.values())
    total = elapsed if elapsed is not None and elapsed > timed else timed
    rows = [("phase", "seconds", "share")]
    for name, seconds in items:
        share = seconds / total if total > 0 else 0.0
        rows.append((name, "%.6f" % seconds, "%5.1f%%" % (100.0 * share)))
    if elapsed is not None and elapsed > timed:
        other = elapsed - timed
        share = other / total if total > 0 else 0.0
        rows.append(("(other)", "%.6f" % other, "%5.1f%%" % (100.0 * share)))
    rows.append(("total", "%.6f" % total, "100.0%"))
    table = _align(rows)
    if counters:
        extras = [
            (name, str(value))
            for name, value in sorted(counters.items())
            if value
        ]
        if extras:
            table += "\n" + _align([("counter", "value")] + extras)
    return table


def gap_history(
    events: Sequence[Mapping[str, Any]]
) -> List[Dict[str, Any]]:
    """Extract the incumbent / lower-bound trajectory from a trace.

    Returns ``[{"t", "best", "lower"}, ...]`` points, one per event that
    changed either side of the gap.  ``lower`` tracks root-level
    (level 0) lower-bound calls — the only ones valid for the whole
    instance — and progress heartbeats.
    """
    points: List[Dict[str, Any]] = []
    best: Optional[int] = None
    lower: Optional[int] = None
    for record in events:
        kind = record.get("kind")
        changed = False
        if kind == INCUMBENT:
            best = record.get("cost")
            changed = True
        elif kind == LOWER_BOUND:
            if record.get("level") == 0 and not record.get("infeasible"):
                candidate = record.get("path", 0) + record.get("value", 0)
                if lower is None or candidate > lower:
                    lower = candidate
                    changed = True
        elif kind == PROGRESS:
            if record.get("best") is not None:
                best = record["best"]
            if record.get("lower") is not None:
                lower = record["lower"]
            changed = True
        if changed:
            points.append({"t": record.get("t", 0.0), "best": best, "lower": lower})
    return points


def format_progress(events: Sequence[Mapping[str, Any]]) -> str:
    """Gap-vs-time summary table of one trace."""
    points = gap_history(events)
    rows = [("t", "best", "lower", "gap")]
    for point in points:
        best, lower = point["best"], point["lower"]
        gap = (
            str(best - lower)
            if best is not None and lower is not None
            else "-"
        )
        rows.append(
            (
                "%.3f" % point["t"],
                str(best) if best is not None else "-",
                str(lower) if lower is not None else "-",
                gap,
            )
        )
    return _align(rows)


def trace_summary(events: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Aggregate counts of one parsed trace (kind -> occurrences, plus
    the final status when a result record is present).

    On a merged multi-worker timeline the summary additionally lists the
    distinct worker ids under ``workers`` and the status becomes the
    *best* worker status (optimal beats satisfiable beats the rest).
    """
    kinds: Dict[str, int] = {}
    status: Optional[str] = None
    conflicts = {"logic": 0, "bound": 0}
    workers: Dict[int, bool] = {}
    rank = {"optimal": 3, "unsatisfiable": 3, "satisfiable": 2}
    for record in events:
        kind = record.get("kind", "?")
        kinds[kind] = kinds.get(kind, 0) + 1
        if record.get("worker_id") is not None:
            workers[record["worker_id"]] = True
        if kind == CONFLICT:
            conflicts[record.get("type", "logic")] = (
                conflicts.get(record.get("type", "logic"), 0) + 1
            )
        elif kind == RESULT:
            candidate = record.get("status")
            if status is None or rank.get(candidate, 1) > rank.get(status, 1):
                status = candidate
    summary: Dict[str, Any] = {
        "kinds": kinds, "conflicts": conflicts, "status": status,
    }
    if workers:
        summary["workers"] = sorted(workers)
    return summary


def _align(rows: Sequence[Tuple[str, ...]]) -> str:
    widths = [0] * max(len(row) for row in rows)
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    for row in rows:
        lines.append(
            "  ".join(
                cell.ljust(widths[index]) if index == 0 else cell.rjust(widths[index])
                for index, cell in enumerate(row)
            ).rstrip()
        )
    return "\n".join(lines)
