"""Hotspot profiler: phase-scoped self-time capture via ``sys.setprofile``.

The tool that answers "where does the wall-clock actually go" when the
phase timer's coarse buckets are not enough (ROADMAP open item 1: simplex
iterations dropped 73-91% yet grout wall-clock regressed — *which
function* absorbed the saving?).

:class:`HotspotProfiler` installs a ``sys.setprofile`` hook while the
solve runs, maintains the live Python/C call stack, and attributes
elapsed time to the function on top of it.  Two views are accumulated:

* **self time** per ``(phase, function)`` — rendered by
  :func:`format_hotspots` as a top-N table keyed by solver phase;
* **collapsed stacks** per ``(phase, stack)`` — one
  ``phase;mod:fn;mod:fn <microseconds>`` line per unique stack, the
  interchange format flamegraph tooling consumes directly.

Phase scoping piggybacks on :class:`~repro.obs.timers.PhaseTimer`: pass
the profiler's :meth:`~HotspotProfiler.phase_listener` as the timer's
``listener`` and every sample lands in the solver phase that was active
when it was taken (samples outside any phase land in ``(main)``).

This is *opt-in* instrumentation: the hook costs roughly an order of
magnitude in slowdown, so it never runs unless requested
(``SolverOptions(hotspot=...)`` / CLI ``--hotspot``).  CPython does not
re-enter the profile hook for calls the hook itself makes, so the
accounting code needs no re-entrancy guard.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional, TextIO, Tuple, Union

#: Phase label used for samples taken outside any timer phase.
MAIN_PHASE = "(main)"


def _code_label(frame) -> str:
    """``module:function`` label for a Python frame."""
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    # keep the last two dotted components: "repro.lp.simplex" -> "lp.simplex"
    parts = module.rsplit(".", 2)
    short = ".".join(parts[-2:]) if len(parts) > 1 else module
    return "%s:%s" % (short, code.co_name)


def _c_label(func) -> str:
    """``module:function`` label for a C-level callable."""
    module = getattr(func, "__module__", None) or "builtins"
    name = getattr(func, "__name__", None) or repr(func)
    return "%s:%s" % (module, name)


class HotspotProfiler:
    """Collect per-phase self-time and collapsed stacks during a solve.

    Use as a context manager around the region of interest, or pass via
    ``SolverOptions(hotspot=profiler)`` and let the solver start/stop it::

        prof = HotspotProfiler()
        result = solve(instance, SolverOptions(profile=True, hotspot=prof))
        print(prof.format_top(10))
        prof.write_collapsed("solve.folded")
    """

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        #: live call stack of ``module:fn`` labels
        self._stack: List[str] = []
        #: incremental ``;``-joined prefixes of the stack (index i covers
        #: stack[:i+1]) so banking a sample is O(1), not O(depth)
        self._joined: List[str] = []
        self._phase = MAIN_PHASE
        self._last: Optional[float] = None
        self._active = False
        #: (phase, function) -> exclusive seconds
        self.self_times: Dict[Tuple[str, str], float] = {}
        #: (phase, collapsed-stack) -> exclusive seconds
        self.stacks: Dict[Tuple[str, str], float] = {}
        #: profile events processed (for overhead accounting)
        self.samples = 0

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Install the profile hook (idempotent)."""
        if self._active:
            return
        self._active = True
        self._last = self._clock()
        sys.setprofile(self._hook)

    def stop(self) -> None:
        """Remove the profile hook (idempotent)."""
        if not self._active:
            return
        sys.setprofile(None)
        self._bank(self._clock())
        self._active = False
        self._stack.clear()
        self._joined.clear()

    def __enter__(self) -> "HotspotProfiler":
        self.start()
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # -- phase scoping --------------------------------------------------
    def phase_listener(self, phase: str) -> None:
        """Phase-change callback for ``PhaseTimer(listener=...)``.

        Called with the currently active phase name (empty string when
        the phase stack is empty); banks the running sample into the old
        phase before switching.
        """
        if self._active:
            self._bank(self._clock())
        self._phase = phase if phase else MAIN_PHASE

    # -- the hook -------------------------------------------------------
    def _bank(self, now: float) -> None:
        """Attribute the elapsed segment to the current stack top."""
        last = self._last
        self._last = now
        if last is None:
            return
        dt = now - last
        if dt <= 0.0 or not self._stack:
            return
        phase = self._phase
        leaf = (phase, self._stack[-1])
        self.self_times[leaf] = self.self_times.get(leaf, 0.0) + dt
        stack_key = (phase, self._joined[-1])
        self.stacks[stack_key] = self.stacks.get(stack_key, 0.0) + dt

    def _hook(self, frame, event, arg):
        """The ``sys.setprofile`` callback (not re-entered by CPython)."""
        now = self._clock()
        self._bank(now)
        self.samples += 1
        if event == "call":
            label = _code_label(frame)
            self._joined.append(
                self._joined[-1] + ";" + label if self._joined else label
            )
            self._stack.append(label)
        elif event == "c_call":
            label = _c_label(arg)
            self._joined.append(
                self._joined[-1] + ";" + label if self._joined else label
            )
            self._stack.append(label)
        elif event in ("return", "c_return", "c_exception"):
            # frames already live when the hook was installed return
            # without a matching push: ignore their pops
            if self._stack:
                self._stack.pop()
                self._joined.pop()
        self._last = self._clock()  # exclude hook time from attribution

    # -- output ---------------------------------------------------------
    def total_seconds(self) -> float:
        """Total attributed self-time across phases."""
        return sum(self.self_times.values())

    def top(self, n: int = 10) -> Dict[str, List[Tuple[str, float]]]:
        """Per-phase top-``n`` functions by self time, descending."""
        by_phase: Dict[str, Dict[str, float]] = {}
        for (phase, func), seconds in self.self_times.items():
            by_phase.setdefault(phase, {})[func] = seconds
        return {
            phase: sorted(funcs.items(), key=lambda kv: (-kv[1], kv[0]))[:n]
            for phase, funcs in sorted(by_phase.items())
        }

    def collapsed_lines(self) -> List[str]:
        """Flamegraph-collapsed lines ``phase;stack <microseconds>``.

        Deterministically ordered (lexicographic by stack); zero-weight
        stacks are dropped.
        """
        lines: List[str] = []
        for (phase, stack) in sorted(self.stacks):
            usec = int(round(self.stacks[(phase, stack)] * 1e6))
            if usec > 0:
                lines.append("%s;%s %d" % (phase, stack, usec))
        return lines

    def write_collapsed(self, sink: Union[str, TextIO]) -> int:
        """Write the collapsed-stack profile; returns the line count."""
        lines = self.collapsed_lines()
        text = "\n".join(lines) + ("\n" if lines else "")
        if isinstance(sink, str):
            with open(sink, "w") as handle:
                handle.write(text)
        else:
            sink.write(text)
        return len(lines)

    def format_top(self, n: int = 10) -> str:
        """Render the per-phase top-``n`` self-time table."""
        return format_hotspots(self, n)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe summary: totals plus the per-phase top table."""
        return {
            "total_seconds": round(self.total_seconds(), 6),
            "samples": self.samples,
            "phases": {
                phase: [
                    {"function": func, "seconds": round(seconds, 6)}
                    for func, seconds in entries
                ]
                for phase, entries in self.top(10).items()
            },
        }


def format_hotspots(profiler: HotspotProfiler, n: int = 10) -> str:
    """Aligned per-phase top-``n`` self-time table for a profiler.

    Shares the table aesthetics of
    :func:`repro.obs.report.format_profile`: one block per phase, rows
    sorted by self time descending with each function's share of the
    phase.
    """
    total = profiler.total_seconds()
    blocks: List[str] = []
    for phase, entries in profiler.top(n).items():
        phase_total = sum(seconds for _, seconds in entries)
        rows: List[Tuple[str, str, str]] = [("function", "self-seconds", "share")]
        for func, seconds in entries:
            share = seconds / phase_total if phase_total > 0 else 0.0
            rows.append((func, "%.6f" % seconds, "%5.1f%%" % (100.0 * share)))
        widths = [max(len(row[i]) for row in rows) for i in range(3)]
        lines = ["phase %s  (%.6fs attributed)" % (phase, phase_total)]
        for row in rows:
            lines.append(
                "  %s  %s  %s"
                % (
                    row[0].ljust(widths[0]),
                    row[1].rjust(widths[1]),
                    row[2].rjust(widths[2]),
                )
            )
        blocks.append("\n".join(lines))
    header = "hotspots: %.6fs attributed over %d samples" % (
        total, profiler.samples,
    )
    return "\n\n".join([header] + blocks) if blocks else header
