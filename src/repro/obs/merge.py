"""Merging per-worker portfolio traces into one fleet timeline.

Every portfolio worker writes its own :class:`~repro.obs.trace.JsonlTracer`
file with timestamps relative to *its* first event.  To see the fleet as
one timeline the coordinator (or the ``python -m repro obs merge`` CLI)
aligns the clocks and interleaves the events:

* each worker trace's first record carries ``epoch`` — the wall-clock
  time of its first event (stamped by the tracer);
* the earliest epoch across workers becomes the merged timeline's zero;
  every record's ``t`` is shifted by its worker's offset from that zero;
* every merged record gains a ``worker_id`` field;
* one synthesized ``worker_summary`` record per worker (outcome, phase
  totals, event count) is appended so reports need not re-derive them.

Workers whose trace lacks an epoch (hand-written fixtures, pre-epoch
traces) merge with offset 0 — ordering within the worker is preserved,
cross-worker alignment degrades gracefully.

:func:`worker_spans` and :func:`format_worker_report` turn a merged
timeline back into the per-worker phase totals and the straggler
summary rendered by ``python -m repro obs report``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .events import RESULT, RUN_HEADER, WORKER_SUMMARY
from .report import _align
from .trace import read_trace


def merge_traces(
    traces: Sequence[Tuple[int, Sequence[Mapping[str, Any]]]],
    summaries: Optional[Mapping[int, Mapping[str, Any]]] = None,
) -> List[Dict[str, Any]]:
    """Merge per-worker record lists into one aligned timeline.

    ``traces`` is ``[(worker_id, records), ...]``; ``summaries``
    optionally maps worker ids to summary payloads (label, solver,
    status, cost, elapsed, phase_times) used to synthesize the
    ``worker_summary`` records — workers without an entry get a summary
    derived from their own ``run_header``/``result`` events.
    """
    epochs: Dict[int, Optional[float]] = {}
    for worker_id, records in traces:
        epoch = records[0].get("epoch") if records else None
        epochs[worker_id] = epoch
    known = [epoch for epoch in epochs.values() if epoch is not None]
    base = min(known) if known else 0.0

    merged: List[Dict[str, Any]] = []
    tails: List[Dict[str, Any]] = []
    for worker_id, records in traces:
        epoch = epochs[worker_id]
        offset = (epoch - base) if epoch is not None else 0.0
        last_t = 0.0
        derived: Dict[str, Any] = {
            "worker_id": worker_id,
            "label": "",
            "solver": "",
            "status": "",
            "cost": None,
            "phase_times": {},
        }
        count = 0
        for record in records:
            out = dict(record)
            out["worker_id"] = worker_id
            out["t"] = round(offset + float(record.get("t", 0.0)), 6)
            out.pop("epoch", None)
            merged.append(out)
            last_t = max(last_t, out["t"])
            count += 1
            kind = record.get("kind")
            if kind == RUN_HEADER:
                derived["solver"] = record.get("solver", "")
                derived["label"] = record.get("instance", "")
            elif kind == RESULT:
                derived["status"] = record.get("status", "")
                derived["cost"] = record.get("cost")
        summary = dict(summaries.get(worker_id, {})) if summaries else {}
        for key, value in derived.items():
            summary.setdefault(key, value)
        summary.setdefault("elapsed", round(last_t - offset, 6))
        tails.append(
            {
                "kind": WORKER_SUMMARY,
                "t": last_t,
                "worker_id": worker_id,
                "label": summary.get("label", ""),
                "solver": summary.get("solver", ""),
                "status": summary.get("status", ""),
                "cost": summary.get("cost"),
                "elapsed": summary.get("elapsed", 0.0),
                "events": count,
                "phase_times": summary.get("phase_times") or {},
            }
        )
    merged.sort(key=lambda record: (record.get("t", 0.0), record["worker_id"]))
    merged.extend(sorted(tails, key=lambda record: record["worker_id"]))
    return merged


def merge_trace_files(
    output: str,
    inputs: Sequence[str],
    summaries: Optional[Mapping[int, Mapping[str, Any]]] = None,
) -> int:
    """Merge worker trace files into ``output``; returns the record count.

    Worker ids are assigned from the input order (0, 1, ...), matching
    the portfolio runner's ``<trace>.w<id>`` naming.
    """
    traces = [
        (worker_id, read_trace(path)) for worker_id, path in enumerate(inputs)
    ]
    merged = merge_traces(traces, summaries)
    write_records(output, merged)
    return len(merged)


def write_records(path: str, records: Sequence[Mapping[str, Any]]) -> None:
    """Write records as JSONL (one compact object per line)."""
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, separators=(",", ":"), default=str))
            handle.write("\n")


# ----------------------------------------------------------------------
def worker_spans(
    records: Sequence[Mapping[str, Any]]
) -> List[Dict[str, Any]]:
    """Per-worker activity spans of a merged timeline.

    Returns one entry per worker (sorted by id): first/last aligned
    timestamps, event count, and the ``worker_summary`` payload when the
    timeline carries one.
    """
    spans: Dict[int, Dict[str, Any]] = {}
    for record in records:
        worker_id = record.get("worker_id")
        if worker_id is None:
            continue
        t = float(record.get("t", 0.0))
        span = spans.get(worker_id)
        if span is None:
            span = spans[worker_id] = {
                "worker_id": worker_id,
                "first_t": t,
                "last_t": t,
                "events": 0,
                "summary": None,
            }
        if record.get("kind") == WORKER_SUMMARY:
            span["summary"] = dict(record)
            span["last_t"] = max(span["last_t"], t)
            continue
        span["events"] += 1
        span["first_t"] = min(span["first_t"], t)
        span["last_t"] = max(span["last_t"], t)
    return [spans[worker_id] for worker_id in sorted(spans)]


def straggler_summary(
    records: Sequence[Mapping[str, Any]]
) -> Dict[str, Any]:
    """Identify the straggling worker of a merged timeline.

    The straggler is the worker whose last event lands latest; the
    summary reports how far it trailed the *median* finisher — the
    portfolio's wind-down cost.
    """
    spans = worker_spans(records)
    if not spans:
        return {"workers": 0, "straggler": None, "lag_seconds": 0.0}
    ends = sorted(span["last_t"] for span in spans)
    median = ends[len(ends) // 2]
    worst = max(spans, key=lambda span: span["last_t"])
    label = ""
    if worst["summary"] is not None:
        label = worst["summary"].get("label") or worst["summary"].get("solver", "")
    return {
        "workers": len(spans),
        "straggler": worst["worker_id"],
        "straggler_label": label,
        "end_t": round(worst["last_t"], 6),
        "median_end_t": round(median, 6),
        "lag_seconds": round(worst["last_t"] - median, 6),
    }


def format_worker_report(records: Sequence[Mapping[str, Any]]) -> str:
    """Render per-worker phase totals and the straggler summary.

    The report ``python -m repro obs report`` prints for merged
    timelines: one row per worker (status, span, events, top phases)
    followed by the straggler line.
    """
    spans = worker_spans(records)
    if not spans:
        return "no worker events (not a merged timeline?)"
    rows: List[Tuple[str, ...]] = [
        ("worker", "label", "status", "start", "end", "events", "top phases")
    ]
    for span in spans:
        summary = span["summary"] or {}
        phases = summary.get("phase_times") or {}
        top = ", ".join(
            "%s %.3fs" % (name, seconds)
            for name, seconds in sorted(
                phases.items(), key=lambda kv: (-kv[1], kv[0])
            )[:3]
        )
        rows.append(
            (
                "w%d" % span["worker_id"],
                str(summary.get("label", "") or "-"),
                str(summary.get("status", "") or "-"),
                "%.3f" % span["first_t"],
                "%.3f" % span["last_t"],
                str(span["events"]),
                top or "-",
            )
        )
    lines = [_align(rows)]
    straggler = straggler_summary(records)
    if straggler["straggler"] is not None:
        lines.append(
            "straggler: w%d%s finished at %.3fs, %+.3fs vs median %.3fs"
            % (
                straggler["straggler"],
                " (%s)" % straggler["straggler_label"]
                if straggler.get("straggler_label")
                else "",
                straggler["end_t"],
                straggler["lag_seconds"],
                straggler["median_end_t"],
            )
        )
    return "\n".join(lines)
