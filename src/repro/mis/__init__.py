"""MIS lower bounding (the classical bound the paper compares against)."""

from .independent_set import MISBound, constraint_min_cost

__all__ = ["MISBound", "constraint_min_cost"]
