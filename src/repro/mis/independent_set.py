"""Maximum-independent-set-of-constraints lower bounding.

The classical bound for branch-and-bound covering solvers (paper
references [5, 9, 15], reviewed in Section 3): pick a set of pairwise
variable-disjoint unsatisfied constraints; since they share no variables,
the minimum costs of satisfying each of them add up to a valid lower
bound on the remaining cost.

Per-constraint cost: the *fractional covering knapsack* optimum — sort
the constraint's free literals by cost per unit of coefficient and fill
greedily, allowing a fractional last literal.  This equals the LP bound
of the single-constraint sub-problem, hence never overestimates the
integer minimum (negative literals cost nothing to make true, so they are
taken first).

Selection is greedy by contribution density (bound contribution divided
by the number of free variables), the standard heuristic for approximate
maximum independent sets of constraints.

Incremental evaluation
----------------------
Consecutive search nodes differ by a handful of trail assignments, so
:class:`MISBound` keeps one :class:`_ConstraintState` per constraint:
the unit-cost term ordering is computed once (costs are static), and the
last ``(value, false_literals, free_vars)`` evaluation is cached and
re-used until a variable of the constraint is assigned or unassigned.
Invalidation is driven by a :class:`~repro.engine.assignment.TrailDelta`
feed (see :meth:`MISBound.attach_trail`) instead of rescanning the full
``fixed`` mapping; without an attached trail every call conservatively
re-evaluates everything, which is exactly the cold behaviour (the
greedy selection itself is always re-run — it is global and cheap
relative to the per-constraint knapsacks).
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..pb.constraints import Constraint
from ..pb.instance import PBInstance
from ..pb.literals import variable
from ..lp.relaxation import LowerBound
from ..lp.tolerances import ceil_guarded


def constraint_min_cost(
    constraint: Constraint,
    fixed: Mapping[int, int],
    costs: Mapping[int, int],
) -> Tuple[Optional[float], List[int], Set[int]]:
    """Fractional min cost of satisfying ``constraint`` under ``fixed``.

    Returns ``(cost, false_literals, free_variables)``; cost is ``None``
    when the constraint is already satisfied, ``math.inf`` when it cannot
    be satisfied any more.
    """
    rhs = constraint.rhs
    false_literals: List[int] = []
    free: List[Tuple[int, int]] = []  # (coef, literal)
    free_vars: Set[int] = set()
    for coef, lit in constraint.terms:
        var = variable(lit)
        value = fixed.get(var)
        if value is None:
            free.append((coef, lit))
            free_vars.add(var)
            continue
        lit_true = (value == 1) == (lit > 0)
        if lit_true:
            rhs -= coef
        else:
            false_literals.append(lit)
    if rhs <= 0:
        return None, false_literals, free_vars
    supply = sum(coef for coef, _ in free)
    if supply < rhs:
        return math.inf, false_literals, free_vars

    # Fractional knapsack cover: cheapest cost per unit of coefficient
    # first.  A negative literal becomes true by assigning 0, which never
    # costs anything in the paper's model.
    def unit_cost(term: Tuple[int, int]) -> float:
        coef, lit = term
        cost = costs.get(lit, 0) if lit > 0 else 0
        return cost / coef

    free.sort(key=unit_cost)
    remaining = rhs
    total = 0.0
    for coef, lit in free:
        if remaining <= 0:
            break
        take = min(coef, remaining)
        cost = costs.get(lit, 0) if lit > 0 else 0
        total += cost * (take / coef)
        remaining -= take
    return total, false_literals, free_vars


class _ConstraintState:
    """Per-constraint incremental state.

    ``sorted_terms`` is the unit-cost (stable) ordering of *all* terms,
    computed once — restricting it to the currently free terms yields
    exactly the order :func:`constraint_min_cost` would sort its free
    list into, so the cached evaluation below is bit-for-bit identical
    to the cold computation.
    """

    __slots__ = ("constraint", "sorted_terms", "variables", "result", "valid")

    def __init__(self, constraint: Constraint, costs: Mapping[int, int]):
        self.constraint = constraint

        def unit_cost(term: Tuple[int, int]) -> float:
            coef, lit = term
            cost = costs.get(lit, 0) if lit > 0 else 0
            return cost / coef

        self.sorted_terms: Tuple[Tuple[int, int], ...] = tuple(
            sorted(constraint.terms, key=unit_cost)
        )
        self.variables = frozenset(variable(lit) for _, lit in constraint.terms)
        self.result: Optional[Tuple[Optional[float], List[int], Set[int]]] = None
        self.valid = False

    def evaluate(
        self, fixed: Mapping[int, int], costs: Mapping[int, int]
    ) -> Tuple[Optional[float], List[int], Set[int]]:
        """Identical outcome to :func:`constraint_min_cost`, minus the
        per-call sort."""
        constraint = self.constraint
        rhs = constraint.rhs
        false_literals: List[int] = []
        free_vars: Set[int] = set()
        supply = 0
        for coef, lit in constraint.terms:
            var = lit if lit > 0 else -lit
            value = fixed.get(var)
            if value is None:
                free_vars.add(var)
                supply += coef
                continue
            if (value == 1) == (lit > 0):
                rhs -= coef
            else:
                false_literals.append(lit)
        if rhs <= 0:
            return None, false_literals, free_vars
        if supply < rhs:
            return math.inf, false_literals, free_vars
        remaining = rhs
        total = 0.0
        for coef, lit in self.sorted_terms:
            if remaining <= 0:
                break
            var = lit if lit > 0 else -lit
            if fixed.get(var) is not None:
                continue
            take = min(coef, remaining)
            cost = costs.get(lit, 0) if lit > 0 else 0
            total += cost * (take / coef)
            remaining -= take
        return total, false_literals, free_vars


class MISBound:
    """Greedy maximum independent set of constraints lower bound."""

    name = "mis"

    def __init__(self, instance: PBInstance, metrics=None):
        self._instance = instance
        self._costs = instance.objective.costs
        # Metrics (optional): cache hit/miss counters resolved once; the
        # per-constraint loop only touches plain ints, the counters are
        # updated in one batch per call.
        live = metrics if (metrics is not None and metrics.enabled) else None
        if live is not None:
            family = live.counter(
                "mis_cache", "MIS constraint-state cache outcomes",
                labels=("outcome",),
            )
            self._m_hits = family.labels(outcome="hit")
            self._m_misses = family.labels(outcome="miss")
        else:
            self._m_hits = None
            self._m_misses = None
        self._states = [
            _ConstraintState(constraint, self._costs)
            for constraint in instance.constraints
        ]
        #: var -> the instance-constraint states it appears in.
        self._touching: Dict[int, List[_ConstraintState]] = {}
        for state in self._states:
            for var in state.variables:
                self._touching.setdefault(var, []).append(state)
        #: States for the extra (cut) constraints of the current call,
        #: keyed by constraint; rebuilt whenever the cut list changes.
        self._extra_states: Dict[Constraint, _ConstraintState] = {}
        self._extras_key: Optional[Tuple[Constraint, ...]] = None
        self._delta = None  # TrailDelta once attach_trail() is called
        self.num_calls = 0
        self.total_seconds = 0.0
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    def attach_trail(self, trail) -> None:
        """Enable delta-driven invalidation: future calls re-evaluate
        only the constraints touching variables assigned/unassigned on
        ``trail`` since the previous call."""
        self._delta = trail.register_delta()
        for state in self._states:
            state.valid = False
        for state in self._extra_states.values():
            state.valid = False

    def detach_trail(self, trail) -> None:
        """Reverse of :meth:`attach_trail`: stop consuming the trail's
        change feed.  Sessions call this before discarding a bounder
        (``pop``/``set_objective`` rebuilds) so the trail does not keep
        feeding a dead delta forever."""
        if self._delta is not None:
            trail.unregister_delta(self._delta)
            self._delta = None

    def stats_dict(self) -> Dict[str, float]:
        """Structured per-bounder stats (merged into ``SolverStats``)."""
        return {
            "calls": self.num_calls,
            "seconds": round(self.total_seconds, 6),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    def compute(
        self,
        fixed: Mapping[int, int],
        extra_constraints: Sequence[Constraint] = (),
    ) -> LowerBound:
        """``P.lower`` from a variable-disjoint set of constraints."""
        started = time.perf_counter()
        hits_before, misses_before = self.cache_hits, self.cache_misses
        try:
            return self._compute(fixed, extra_constraints)
        finally:
            self.total_seconds += time.perf_counter() - started
            if self._m_hits is not None:
                self._m_hits.inc(self.cache_hits - hits_before)
                self._m_misses.inc(self.cache_misses - misses_before)

    # ------------------------------------------------------------------
    def _sync_extras(
        self, extras: Tuple[Constraint, ...]
    ) -> List[_ConstraintState]:
        """(Re)build the cut-constraint states when the cut list changes,
        keeping still-present constraints' cached evaluations."""
        if extras != self._extras_key:
            old = self._extra_states
            self._extra_states = {}
            for constraint in extras:
                state = old.get(constraint)
                if state is None:
                    state = _ConstraintState(constraint, self._costs)
                self._extra_states[constraint] = state
            self._extras_key = extras
        return [self._extra_states[constraint] for constraint in extras]

    def _compute(
        self,
        fixed: Mapping[int, int],
        extra_constraints: Sequence[Constraint] = (),
    ) -> LowerBound:
        self.num_calls += 1
        costs = self._costs
        extra_states = self._sync_extras(tuple(extra_constraints))

        if self._delta is None:
            changed: Optional[Set[int]] = None  # no feed: re-evaluate all
        else:
            changed = self._delta.drain()
        if changed is None:
            for state in self._states:
                state.valid = False
            for state in extra_states:
                state.valid = False
        elif changed:
            touching = self._touching
            for var in changed:
                for state in touching.get(var, ()):
                    state.valid = False
            for state in extra_states:
                if not changed.isdisjoint(state.variables):
                    state.valid = False

        candidates: List[Tuple[float, Constraint, List[int], Set[int]]] = []
        for state in self._states + extra_states:
            if state.valid:
                self.cache_hits += 1
            else:
                state.result = state.evaluate(fixed, costs)
                state.valid = True
                self.cache_misses += 1
            value, false_literals, free_vars = state.result
            if value is None:
                continue
            if value == math.inf:
                return LowerBound(0, infeasible=True)
            if value <= 0 or not free_vars:
                continue
            candidates.append((value, state.constraint, false_literals, free_vars))

        # Greedy by contribution density; ties by raw contribution.
        candidates.sort(key=lambda item: (-item[0] / len(item[3]), -item[0]))
        used_vars: Set[int] = set()
        total = 0.0
        explanation: List[Constraint] = []
        for value, constraint, false_literals, free_vars in candidates:
            if free_vars & used_vars:
                continue
            used_vars |= free_vars
            total += value
            explanation.append(constraint)

        bound = ceil_guarded(total)
        return LowerBound(max(bound, 0), explanation=explanation)
