"""Maximum-independent-set-of-constraints lower bounding.

The classical bound for branch-and-bound covering solvers (paper
references [5, 9, 15], reviewed in Section 3): pick a set of pairwise
variable-disjoint unsatisfied constraints; since they share no variables,
the minimum costs of satisfying each of them add up to a valid lower
bound on the remaining cost.

Per-constraint cost: the *fractional covering knapsack* optimum — sort
the constraint's free literals by cost per unit of coefficient and fill
greedily, allowing a fractional last literal.  This equals the LP bound
of the single-constraint sub-problem, hence never overestimates the
integer minimum (negative literals cost nothing to make true, so they are
taken first).

Selection is greedy by contribution density (bound contribution divided
by the number of free variables), the standard heuristic for approximate
maximum independent sets of constraints.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..pb.constraints import Constraint
from ..pb.instance import PBInstance
from ..pb.literals import variable
from ..lp.relaxation import LowerBound


def constraint_min_cost(
    constraint: Constraint,
    fixed: Mapping[int, int],
    costs: Mapping[int, int],
) -> Tuple[Optional[float], List[int], Set[int]]:
    """Fractional min cost of satisfying ``constraint`` under ``fixed``.

    Returns ``(cost, false_literals, free_variables)``; cost is ``None``
    when the constraint is already satisfied, ``math.inf`` when it cannot
    be satisfied any more.
    """
    rhs = constraint.rhs
    false_literals: List[int] = []
    free: List[Tuple[int, int]] = []  # (coef, literal)
    free_vars: Set[int] = set()
    for coef, lit in constraint.terms:
        var = variable(lit)
        value = fixed.get(var)
        if value is None:
            free.append((coef, lit))
            free_vars.add(var)
            continue
        lit_true = (value == 1) == (lit > 0)
        if lit_true:
            rhs -= coef
        else:
            false_literals.append(lit)
    if rhs <= 0:
        return None, false_literals, free_vars
    supply = sum(coef for coef, _ in free)
    if supply < rhs:
        return math.inf, false_literals, free_vars

    # Fractional knapsack cover: cheapest cost per unit of coefficient
    # first.  A negative literal becomes true by assigning 0, which never
    # costs anything in the paper's model.
    def unit_cost(term: Tuple[int, int]) -> float:
        coef, lit = term
        cost = costs.get(lit, 0) if lit > 0 else 0
        return cost / coef

    free.sort(key=unit_cost)
    remaining = rhs
    total = 0.0
    for coef, lit in free:
        if remaining <= 0:
            break
        take = min(coef, remaining)
        cost = costs.get(lit, 0) if lit > 0 else 0
        total += cost * (take / coef)
        remaining -= take
    return total, false_literals, free_vars


class MISBound:
    """Greedy maximum independent set of constraints lower bound."""

    name = "mis"

    def __init__(self, instance: PBInstance):
        self._instance = instance
        self.num_calls = 0
        self.total_seconds = 0.0

    def stats_dict(self) -> Dict[str, float]:
        """Structured per-bounder stats (merged into ``SolverStats``)."""
        return {
            "calls": self.num_calls,
            "seconds": round(self.total_seconds, 6),
        }

    def compute(
        self,
        fixed: Mapping[int, int],
        extra_constraints: Sequence[Constraint] = (),
    ) -> LowerBound:
        """``P.lower`` from a variable-disjoint set of constraints."""
        started = time.perf_counter()
        try:
            return self._compute(fixed, extra_constraints)
        finally:
            self.total_seconds += time.perf_counter() - started

    def _compute(
        self,
        fixed: Mapping[int, int],
        extra_constraints: Sequence[Constraint] = (),
    ) -> LowerBound:
        self.num_calls += 1
        costs = self._instance.objective.costs
        candidates: List[Tuple[float, Constraint, List[int], Set[int]]] = []
        for constraint in list(self._instance.constraints) + list(extra_constraints):
            value, false_literals, free_vars = constraint_min_cost(
                constraint, fixed, costs
            )
            if value is None:
                continue
            if value == math.inf:
                return LowerBound(0, infeasible=True)
            if value <= 0 or not free_vars:
                continue
            candidates.append((value, constraint, false_literals, free_vars))

        # Greedy by contribution density; ties by raw contribution.
        candidates.sort(key=lambda item: (-item[0] / len(item[3]), -item[0]))
        used_vars: Set[int] = set()
        total = 0.0
        explanation: List[Constraint] = []
        for value, constraint, false_literals, free_vars in candidates:
            if free_vars & used_vars:
                continue
            used_vars |= free_vars
            total += value
            explanation.append(constraint)

        bound = int(math.ceil(total - 1e-6))
        return LowerBound(max(bound, 0), explanation=explanation)
