"""Shared fixtures and helpers for the benchmark suite.

Every bench uses ``benchmark.pedantic(..., rounds=1)`` — solver runs are
seconds-long, so statistical repetition is wasted; the interesting output
is the relative ordering across solver configurations, which the benches
additionally assert.
"""

import pytest


def run_once(benchmark, fn):
    """Benchmark a solve exactly once and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def bench_once():
    return run_once
