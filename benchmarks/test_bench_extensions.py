"""Ablation A-ext: the post-paper extensions.

Measures PB (cutting-plane) learning, Luby restarts, phase saving and
covering reductions against the baseline configuration — same optimum
required, timing and node counts reported.
"""

import pytest

from repro.benchgen import generate_covering, generate_ptl_mapping
from repro.core import BsoloSolver, SolverOptions

TIME_LIMIT = 10.0

CONFIGS = {
    "baseline": {},
    "pb-learning": {"pb_learning": True},
    "restarts": {"restarts": True, "restart_interval": 50},
    "phase-saving": {"phase_saving": True},
    "no-covering-reductions": {"covering_reductions": False},
}


@pytest.fixture(scope="module")
def covering():
    return generate_covering(
        minterms=60, implicants=30, density=0.12, max_cost=60, seed=55
    )


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_extension_configs(benchmark, covering, config):
    def solve_once():
        options = SolverOptions(
            lower_bound="mis", time_limit=TIME_LIMIT, **CONFIGS[config]
        )
        return BsoloSolver(covering, options).solve()

    result = benchmark.pedantic(solve_once, rounds=1, iterations=1)
    benchmark.extra_info["status"] = result.status
    benchmark.extra_info["decisions"] = result.stats.decisions


def test_all_configs_agree(covering):
    costs = set()
    for config, overrides in CONFIGS.items():
        options = SolverOptions(
            lower_bound="mis", time_limit=TIME_LIMIT, **overrides
        )
        result = BsoloSolver(covering, options).solve()
        if result.solved:
            costs.add(result.best_cost)
    assert len(costs) == 1


def test_pb_learning_on_general_constraints():
    """PB learning actually fires on coefficient-heavy instances."""
    instance = generate_ptl_mapping(nodes=12, extra_edges=6, seed=3)
    options = SolverOptions(
        lower_bound="plain", pb_learning=True, time_limit=TIME_LIMIT
    )
    solver = BsoloSolver(instance, options)
    result = solver.solve()
    assert result.solved
    assert solver.stats.pb_resolvents >= 0  # counter wired through
