"""Table 1, rows [16] (acc-tight:*): pure PB satisfaction.

Paper shape: no cost function means no lower bounding — every bsolo
variant runs the identical search (footnote a); the SAT-based solvers are
fast while the MILP baseline ("cplex") times out on most instances.
"""

import pytest

from repro.benchgen import generate_scheduling
from repro.experiments import BSOLO_NAMES, run_one

TIME_LIMIT = 5.0
SOLVERS = ("pbs", "galena", "cplex", "bsolo-plain", "bsolo-mis", "bsolo-lgr", "bsolo-lpr")


@pytest.fixture(scope="module")
def instance():
    return generate_scheduling(teams=10, seed=1997)


@pytest.mark.parametrize("solver", SOLVERS)
def test_acc_family(benchmark, instance, solver):
    record = benchmark.pedantic(
        lambda: run_one(solver, instance, "acc", TIME_LIMIT),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["status"] = record.result.status
    assert record.result.status in ("satisfiable", "unknown")


def test_acc_footnote_a(instance):
    """All bsolo variants perform the identical search without a cost
    function (Table 1 footnote a)."""
    decisions = set()
    for solver in BSOLO_NAMES:
        record = run_one(solver, instance, "acc", TIME_LIMIT)
        assert record.result.status == "satisfiable"
        assert record.result.stats.lower_bound_calls == 0
        decisions.add(record.result.stats.decisions)
    assert len(decisions) == 1


def test_acc_milp_weakness(instance):
    """The SAT-based engines beat the MILP baseline on tight satisfaction
    instances (paper: CPLEX shows "time" on most acc-tight rows)."""
    sat_based = run_one("bsolo-lpr", instance, "acc", TIME_LIMIT)
    milp = run_one("cplex", instance, "acc", TIME_LIMIT)
    assert sat_based.solved
    assert (not milp.solved) or milp.seconds >= sat_based.seconds
