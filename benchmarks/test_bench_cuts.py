"""Ablation A-cuts: the Section 5 constraint generation.

Measures bsolo with and without the knapsack (eq. 10) and
cardinality-derived (eq. 11-13) cuts on a routing instance whose
exactly-one constraints feed eq. 11.
"""

import pytest

from repro.benchgen import generate_ptl_mapping, generate_routing
from repro.core import BsoloSolver, SolverOptions

TIME_LIMIT = 10.0


@pytest.fixture(scope="module")
def instance():
    return generate_routing(rows=5, cols=5, nets=10, capacity=2, detours=3, seed=11)


@pytest.mark.parametrize(
    "knapsack,cardinality",
    [(True, True), (True, False), (False, False)],
    ids=["both", "knapsack-only", "none"],
)
def test_cut_ablation(benchmark, instance, knapsack, cardinality):
    def solve_once():
        options = SolverOptions(
            lower_bound="mis",
            upper_bound_cuts=knapsack,
            cardinality_cuts=cardinality,
            time_limit=TIME_LIMIT,
        )
        return BsoloSolver(instance, options).solve()

    result = benchmark.pedantic(solve_once, rounds=1, iterations=1)
    benchmark.extra_info["status"] = result.status
    benchmark.extra_info["cuts_added"] = result.stats.cuts_added
    benchmark.extra_info["decisions"] = result.stats.decisions


def test_cuts_do_not_change_optimum(instance):
    costs = set()
    for knapsack, cardinality in ((True, True), (True, False), (False, False)):
        options = SolverOptions(
            lower_bound="mis",
            upper_bound_cuts=knapsack,
            cardinality_cuts=cardinality,
            time_limit=TIME_LIMIT,
        )
        result = BsoloSolver(instance, options).solve()
        if result.solved:
            costs.add(result.best_cost)
    assert len(costs) <= 1


def test_cardinality_cuts_fire_on_exactly_one_structures():
    """PTL instances carry exactly-one constraints, so eq. 13 cuts are
    generated whenever a solution improves."""
    instance = generate_ptl_mapping(nodes=10, extra_edges=5, seed=2)
    options = SolverOptions(
        lower_bound="mis", cardinality_cuts=True, time_limit=TIME_LIMIT
    )
    solver = BsoloSolver(instance, options)
    result = solver.solve()
    assert result.solved
    assert solver.stats.cuts_added > solver.stats.solutions_found
