"""Table 1, rows [17] (5xp1.b, 9sym.b, ...): MCNC covering.

Paper shape: the covering family is the hardest for every solver (many
"ub" entries); the MILP baseline is strongest, and among bsolo variants
the ordering by total solved is preserved at the aggregate level.
"""

import pytest

from repro.benchgen import generate_covering
from repro.experiments import run_one

TIME_LIMIT = 5.0
SOLVERS = ("pbs", "galena", "cplex", "bsolo-plain", "bsolo-mis", "bsolo-lgr", "bsolo-lpr")


@pytest.fixture(scope="module")
def instance():
    return generate_covering(
        minterms=90, implicants=46, density=0.11, max_cost=120, seed=1993
    )


@pytest.mark.parametrize("solver", SOLVERS)
def test_mcnc_family(benchmark, instance, solver):
    record = benchmark.pedantic(
        lambda: run_one(solver, instance, "mcnc", TIME_LIMIT),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["status"] = record.result.status
    benchmark.extra_info["best_cost"] = record.result.best_cost
    assert record.result.status in ("optimal", "unknown")


def test_mcnc_incumbents_agree():
    """All solvers that finish agree on the optimum."""
    instance = generate_covering(
        minterms=60, implicants=30, density=0.12, max_cost=60, seed=1991
    )
    costs = set()
    for solver in SOLVERS:
        record = run_one(solver, instance, "mcnc", TIME_LIMIT)
        if record.solved:
            costs.add(record.result.best_cost)
    assert len(costs) == 1
