"""Ablation A-ncb: non-chronological vs chronological bound backtracking.

Section 4 proposes learning the bound-conflict clause ``w_bc`` and
backtracking non-chronologically; the straightforward alternative blames
every decision and backtracks one level.  The bench compares both on a
routing instance where bound conflicts dominate.
"""

import pytest

from repro.benchgen import generate_covering, generate_routing
from repro.core import BsoloSolver, SolverOptions

TIME_LIMIT = 10.0


@pytest.fixture(scope="module")
def instance():
    return generate_routing(rows=5, cols=5, nets=10, capacity=2, detours=3, seed=9)


@pytest.mark.parametrize("learning", [True, False], ids=["ncb", "chrono"])
def test_bound_backtracking(benchmark, instance, learning):
    def solve_once():
        options = SolverOptions(
            lower_bound="lpr",
            bound_conflict_learning=learning,
            time_limit=TIME_LIMIT,
        )
        return BsoloSolver(instance, options).solve()

    result = benchmark.pedantic(solve_once, rounds=1, iterations=1)
    benchmark.extra_info["status"] = result.status
    benchmark.extra_info["decisions"] = result.stats.decisions
    benchmark.extra_info["backjump_total"] = result.stats.backjump_total


def test_same_optimum_both_modes(instance):
    """The backtracking mode must not change the answer."""
    costs = set()
    for learning in (True, False):
        options = SolverOptions(
            lower_bound="lpr",
            bound_conflict_learning=learning,
            time_limit=TIME_LIMIT,
        )
        result = BsoloSolver(instance, options).solve()
        if result.solved:
            costs.add(result.best_cost)
    assert len(costs) <= 1


def test_ncb_explores_no_more_nodes():
    """Clause learning from bound conflicts should not increase the
    decision count on a covering instance (usually it shrinks it)."""
    instance = generate_covering(
        minterms=40, implicants=22, density=0.15, max_cost=30, seed=5
    )
    counts = {}
    for learning in (True, False):
        options = SolverOptions(
            lower_bound="lpr",
            bound_conflict_learning=learning,
            time_limit=TIME_LIMIT,
        )
        solver = BsoloSolver(instance, options)
        result = solver.solve()
        assert result.solved
        counts[learning] = solver.stats.decisions
    assert counts[True] <= counts[False] * 2  # never catastrophically worse
