"""Ablation A-cov: classical covering B&B vs the hybrid bsolo.

The paper's position: bsolo merges the covering branch-and-bound lineage
([5, 15], our scherzo-like baseline) with SAT techniques.  This bench
compares both (plus bsolo-hybrid, the MIS-prefilter extension) on an
MCNC-style covering instance.
"""

import pytest

from repro.benchgen import generate_covering
from repro.experiments import run_one

TIME_LIMIT = 8.0
SOLVERS = ("scherzo", "bsolo-mis", "bsolo-lpr", "bsolo-hybrid")


@pytest.fixture(scope="module")
def instance():
    return generate_covering(
        minterms=60, implicants=30, density=0.12, max_cost=60, seed=77
    )


@pytest.mark.parametrize("solver", SOLVERS)
def test_covering_solvers(benchmark, instance, solver):
    record = benchmark.pedantic(
        lambda: run_one(solver, instance, "cov", TIME_LIMIT),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["status"] = record.result.status
    benchmark.extra_info["best_cost"] = record.result.best_cost


def test_agreement(instance):
    costs = set()
    for solver in SOLVERS:
        record = run_one(solver, instance, "cov", TIME_LIMIT)
        if record.solved:
            costs.add(record.result.best_cost)
    assert len(costs) == 1
