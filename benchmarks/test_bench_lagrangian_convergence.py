"""Ablation A-lgr: subgradient convergence (Section 6 discussion).

"bsolo with LPR is significantly more efficient than bsolo with LGR.
This is motivated by the slow convergence observed for the Lagrangian
relaxation on most instances."  The bench quantifies that: bound quality
as a function of subgradient iterations, against the LP bound (which one
simplex solve reaches exactly).
"""

import pytest

from repro.benchgen import generate_covering
from repro.lagrangian import LagrangianBound, SubgradientOptions
from repro.lp import LPRelaxationBound


@pytest.fixture(scope="module")
def instance():
    return generate_covering(
        minterms=60, implicants=30, density=0.12, max_cost=60, seed=31
    )


@pytest.mark.parametrize("iterations", [10, 40, 160, 640])
def test_lgr_iterations(benchmark, instance, iterations):
    bounder = LagrangianBound(
        instance, SubgradientOptions(max_iterations=iterations)
    )
    bound = benchmark(lambda: bounder.compute({}))
    benchmark.extra_info["bound"] = bound.value


def test_lpr_single_solve(benchmark, instance):
    bounder = LPRelaxationBound(instance)
    bound = benchmark(lambda: bounder.compute({}))
    benchmark.extra_info["bound"] = bound.value


def test_convergence_is_monotone_and_slow(instance):
    """More subgradient iterations never hurt, and even hundreds may not
    reach the LP bound — the paper's explanation for LGR < LPR."""
    lpr = LPRelaxationBound(instance).compute({}).value
    values = []
    for iterations in (10, 40, 160, 640):
        bound = LagrangianBound(
            instance, SubgradientOptions(max_iterations=iterations)
        ).compute({})
        values.append(bound.value)
    assert values == sorted(values)  # monotone in iteration budget
    assert all(value <= lpr for value in values)  # weak duality
