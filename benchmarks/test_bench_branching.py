"""Ablation A-branch: LP-guided branching vs plain VSIDS (Section 5).

"Branching is restricted to variables for which the LP solution is not
integer.  Of these variables, the one closest to 0.5 is selected."  The
bench compares bsolo-LPR with and without that rule.
"""

import pytest

from repro.benchgen import generate_ptl_mapping, generate_routing
from repro.core import BsoloSolver, SolverOptions

TIME_LIMIT = 10.0


@pytest.fixture(scope="module")
def instance():
    return generate_ptl_mapping(nodes=16, extra_edges=8, seed=77)


@pytest.mark.parametrize("lp_guided", [True, False], ids=["lp-guided", "vsids"])
def test_branching_ablation(benchmark, instance, lp_guided):
    def solve_once():
        options = SolverOptions(
            lower_bound="lpr",
            lp_guided_branching=lp_guided,
            time_limit=TIME_LIMIT,
        )
        return BsoloSolver(instance, options).solve()

    result = benchmark.pedantic(solve_once, rounds=1, iterations=1)
    benchmark.extra_info["status"] = result.status
    benchmark.extra_info["decisions"] = result.stats.decisions


def test_same_optimum_both_heuristics(instance):
    costs = set()
    for lp_guided in (True, False):
        options = SolverOptions(
            lower_bound="lpr",
            lp_guided_branching=lp_guided,
            time_limit=TIME_LIMIT,
        )
        result = BsoloSolver(instance, options).solve()
        if result.solved:
            costs.add(result.best_cost)
    assert len(costs) <= 1


def test_lp_guidance_reduces_decisions_on_routing():
    """On routing, branching on fractional route selectors focuses the
    search; require it not to blow up the node count."""
    instance = generate_routing(rows=5, cols=5, nets=8, capacity=2, detours=3, seed=21)
    decisions = {}
    for lp_guided in (True, False):
        options = SolverOptions(
            lower_bound="lpr",
            lp_guided_branching=lp_guided,
            time_limit=TIME_LIMIT,
        )
        solver = BsoloSolver(instance, options)
        result = solver.solve()
        assert result.solved
        decisions[lp_guided] = solver.stats.decisions
    assert decisions[True] <= decisions[False] * 3
