"""Table 1, rows [2] (grout-4-3-*): global routing.

Paper shape: bsolo with lower bounding (MIS/LGR/LPR) solves the routing
instances while plain bsolo and the PBS-like linear search return only
upper bounds; the MILP baseline is fast.
"""

import pytest

from repro.benchgen import generate_routing
from repro.experiments import run_one

TIME_LIMIT = 5.0
SOLVERS = ("pbs", "galena", "cplex", "bsolo-plain", "bsolo-mis", "bsolo-lgr", "bsolo-lpr")


@pytest.fixture(scope="module")
def instance():
    return generate_routing(rows=6, cols=6, nets=14, capacity=2, detours=5, seed=2005)


@pytest.mark.parametrize("solver", SOLVERS)
def test_grout_family(benchmark, instance, solver):
    record = benchmark.pedantic(
        lambda: run_one(solver, instance, "grout", TIME_LIMIT),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["status"] = record.result.status
    benchmark.extra_info["best_cost"] = record.result.best_cost
    # soundness: whoever solves must agree on optimality later; here just
    # require a sane outcome
    assert record.result.status in ("optimal", "unknown", "satisfiable")


def test_grout_shape():
    """Lower bounding beats plain search on routing (paper's key claim)."""
    instance = generate_routing(
        rows=6, cols=6, nets=14, capacity=2, detours=5, seed=2005
    )
    lpr = run_one("bsolo-lpr", instance, "grout", TIME_LIMIT)
    plain = run_one("bsolo-plain", instance, "grout", TIME_LIMIT)
    assert lpr.solved
    if plain.solved:
        # if plain finishes too, LPR must not be grossly slower
        assert lpr.seconds <= plain.seconds * 20
