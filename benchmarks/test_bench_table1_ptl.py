"""Table 1, rows [18] (9symml, C432, ...): mixed PTL/CMOS synthesis.

Paper shape: the SAT-based solvers without lower bounding (PBS, Galena,
bsolo plain) mostly return "ub" entries; bsolo-LGR and especially
bsolo-LPR solve the family; the MILP baseline excels (the relaxation is
tight for this model).
"""

import pytest

from repro.benchgen import generate_ptl_mapping
from repro.experiments import run_one

TIME_LIMIT = 5.0
SOLVERS = ("pbs", "galena", "cplex", "bsolo-plain", "bsolo-mis", "bsolo-lgr", "bsolo-lpr")


@pytest.fixture(scope="module")
def instance():
    return generate_ptl_mapping(nodes=18, extra_edges=9, seed=432)


@pytest.mark.parametrize("solver", SOLVERS)
def test_ptl_family(benchmark, instance, solver):
    record = benchmark.pedantic(
        lambda: run_one(solver, instance, "ptl", TIME_LIMIT),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["status"] = record.result.status
    benchmark.extra_info["best_cost"] = record.result.best_cost
    assert record.result.status in ("optimal", "unknown")


def test_ptl_shape():
    """bsolo-LPR solves the synthesis instance that plain cannot."""
    instance = generate_ptl_mapping(nodes=18, extra_edges=9, seed=432)
    lpr = run_one("bsolo-lpr", instance, "ptl", TIME_LIMIT)
    plain = run_one("bsolo-plain", instance, "ptl", TIME_LIMIT)
    assert lpr.solved
    if plain.solved:
        assert plain.result.best_cost == lpr.result.best_cost
    else:
        # plain's incumbent can be no better than the LPR optimum
        assert plain.result.best_cost >= lpr.result.best_cost
