"""Ablation A-lb: tightness and cost of the three lower bound procedures.

Section 3 claims: the LPR bound is "often higher" than the MIS bound, and
LGR can approach LPR but converges slowly.  These benches measure both
the bound values at the root of covering/routing instances and the time
each procedure takes.
"""

import pytest

from repro.benchgen import generate_covering, generate_routing
from repro.lagrangian import LagrangianBound, SubgradientOptions
from repro.lp import LPRelaxationBound
from repro.mis import MISBound


@pytest.fixture(scope="module")
def covering():
    return generate_covering(
        minterms=60, implicants=30, density=0.12, max_cost=60, seed=1
    )


@pytest.fixture(scope="module")
def routing():
    return generate_routing(rows=5, cols=5, nets=10, capacity=2, detours=3, seed=1)


def _bounders(instance):
    return {
        "mis": MISBound(instance),
        "lgr": LagrangianBound(instance, SubgradientOptions(max_iterations=100)),
        "lpr": LPRelaxationBound(instance),
    }


@pytest.mark.parametrize("method", ["mis", "lgr", "lpr"])
def test_root_bound_covering(benchmark, covering, method):
    bounder = _bounders(covering)[method]
    bound = benchmark(lambda: bounder.compute({}))
    benchmark.extra_info["bound"] = bound.value
    assert bound.value >= 0


@pytest.mark.parametrize("method", ["mis", "lgr", "lpr"])
def test_root_bound_routing(benchmark, routing, method):
    bounder = _bounders(routing)[method]
    bound = benchmark(lambda: bounder.compute({}))
    benchmark.extra_info["bound"] = bound.value
    assert bound.value >= 0


def test_lpr_at_least_as_tight_as_mis(covering, routing):
    """Section 3.1: 'It is also often the case that the linear programming
    relaxation bound is higher than the one obtained with the MIS
    approach.'"""
    for instance in (covering, routing):
        mis = MISBound(instance).compute({}).value
        lpr = LPRelaxationBound(instance).compute({}).value
        assert lpr >= mis


def test_lgr_between_mis_and_lpr_with_enough_iterations(covering):
    """With generous iteration budgets the subgradient bound approaches
    the LP bound from below (integrality property of the 0/1 box)."""
    mis = MISBound(covering).compute({}).value
    lgr = LagrangianBound(
        covering, SubgradientOptions(max_iterations=800)
    ).compute({}).value
    lpr = LPRelaxationBound(covering).compute({}).value
    assert lgr <= lpr
    assert lgr >= min(mis, lpr)  # not worse than both
