"""Pure PB satisfaction: round-robin sports scheduling (acc-tight style).

The paper's [16] family has no cost function, so no lower bounding
happens and every bsolo variant performs the identical search (Table 1's
footnote a).  This example verifies that behaviour and decodes the
schedule.

Run:  python examples/scheduling_sat.py
"""

from repro.benchgen import generate_scheduling
from repro.core import BsoloSolver, SolverOptions


def main() -> None:
    teams = 6
    instance = generate_scheduling(teams=teams, seed=3)
    print("scheduling instance:", instance)
    assert instance.is_satisfaction

    decisions = {}
    result = None
    for method in ("plain", "mis", "lgr", "lpr"):
        solver = BsoloSolver(instance, SolverOptions(lower_bound=method))
        result = solver.solve()
        decisions[method] = result.stats.decisions
        print(
            "bsolo-%-5s %s  decisions=%d  lb_calls=%d"
            % (
                method,
                result.status,
                result.stats.decisions,
                result.stats.lower_bound_calls,
            )
        )
    print(
        "identical searches (footnote a):",
        len(set(decisions.values())) == 1,
    )

    # decode the schedule from the last model
    print("\nschedule:")
    by_round = {}
    for var, name in instance.variable_names.items():
        if result.best_assignment.get(var) == 1 and name.startswith("m_"):
            _, i, j, r = name.split("_")
            by_round.setdefault(int(r[1:]), []).append((int(i), int(j)))
    for round_index in sorted(by_round):
        games = " ".join(
            "%d-%d" % (i, j) for i, j in sorted(by_round[round_index])
        )
        print("  round %d: %s" % (round_index, games))


if __name__ == "__main__":
    main()
