"""Visualize subgradient convergence (the paper's LGR-vs-LPR discussion).

Section 6: "bsolo with LPR is significantly more efficient than bsolo
with LGR.  This is motivated by the slow convergence observed for the
Lagrangian relaxation on most instances."  This example plots (in ASCII)
L(mu) per subgradient iteration against the LP bound, which one simplex
solve attains exactly.

Run:  python examples/lagrangian_convergence.py
"""

from repro.benchgen import generate_covering
from repro.lagrangian import LagrangianBound, SubgradientOptions
from repro.lp import LPRelaxationBound


def ascii_plot(trace, reference, width=64, height=14):
    """Tiny ASCII line plot of the trace with a reference level."""
    low = min(min(trace), 0.0)
    high = max(max(trace), reference) * 1.05 + 1e-9
    rows = [[" "] * width for _ in range(height)]

    def row_of(value):
        scaled = (value - low) / (high - low)
        return height - 1 - int(scaled * (height - 1))

    ref_row = row_of(reference)
    for col in range(width):
        rows[ref_row][col] = "-"
    for col in range(width):
        index = int(col * (len(trace) - 1) / max(width - 1, 1))
        rows[row_of(trace[index])][col] = "*"
    lines = ["".join(row) for row in rows]
    lines.append("*" * 0 + "iterations 1..%d   (--- = LP bound %.1f)" % (len(trace), reference))
    return "\n".join(lines)


def main() -> None:
    instance = generate_covering(
        minterms=60, implicants=30, density=0.12, max_cost=60, seed=31
    )
    print("instance:", instance)

    lpr = LPRelaxationBound(instance).compute({})
    print("LP relaxation bound: %d (one simplex solve, %d iterations)"
          % (lpr.value, lpr.iterations))

    lgr = LagrangianBound(
        instance,
        SubgradientOptions(max_iterations=400),
        reuse_multipliers=False,
    )
    bound = lgr.compute({})
    print(
        "Lagrangian bound after %d subgradient iterations: %d"
        % (len(lgr.last_trace), bound.value)
    )
    print()
    print(ascii_plot(lgr.last_trace, float(lpr.value)))
    print()
    milestones = [1, 10, 50, 100, 200, 400]
    best = float("-inf")
    running = []
    for index, value in enumerate(lgr.last_trace, start=1):
        best = max(best, value)
        if index in milestones:
            running.append((index, best))
    for index, value in running:
        print("  after %4d iterations: best L(mu) = %8.2f" % (index, value))


if __name__ == "__main__":
    main()
