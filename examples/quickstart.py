"""Quickstart: model a small pseudo-boolean optimization problem and solve it.

A tiny gate-sizing flavoured example: three optional buffers, at least one
on each of two nets, the two expensive ones mutually exclusive, minimize
total area.

Run:  python examples/quickstart.py
"""

from repro import PBModel, SolverOptions, solve


def main() -> None:
    model = PBModel()
    a, b, c = model.new_variables("buf_a", "buf_b", "buf_c")

    # each net needs at least one buffer
    model.add_clause([a, b])       # net 1: a or b
    model.add_clause([b, c])       # net 2: b or c
    # the two big buffers cannot share the row
    model.add_at_most([a, c], 1)
    # minimize area
    model.minimize([(5, a), (3, b), (4, c)])

    instance = model.build()
    print("instance:", instance)

    # Solve with each lower-bounding configuration from the paper.
    for method in ("plain", "mis", "lgr", "lpr"):
        result = solve(instance, SolverOptions(lower_bound=method))
        chosen = [
            name
            for var, name in instance.variable_names.items()
            if result.best_assignment.get(var) == 1
        ]
        print(
            "%-5s -> %s, cost %d, buffers %s, %d decisions"
            % (
                method,
                result.status,
                result.best_cost,
                chosen,
                result.stats.decisions,
            )
        )


if __name__ == "__main__":
    main()
