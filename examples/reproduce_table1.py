"""Regenerate the paper's Table 1 (scaled) and check its claims.

Runs all seven solver configurations (pbs / galena / cplex reimplementations
and bsolo plain / MIS / LGR / LPR) over the four instance families, prints
the table in the paper's layout, and validates the qualitative claims:

1. within bsolo, #solved(plain) <= #solved(MIS), and
   #solved(plain) <= #solved(LGR) <= #solved(LPR)  (paper: 14/19/26/35);
2. bsolo-LPR solves at least as many as PBS-like and Galena-like;
3. the MILP baseline struggles on the pure-satisfaction (acc) family;
4. on acc, every bsolo variant performs the identical search (footnote a).

Run:  python examples/reproduce_table1.py [--fast] [--stats-jsonl FILE]

With ``--stats-jsonl`` every run's structured stats (decisions,
conflicts, lower-bound calls, phase times, ...) are persisted as JSONL
for later trajectory analysis.
"""

import sys
import time

from repro.experiments import format_table1, generate_table1, solved_counts


def main() -> None:
    fast = "--fast" in sys.argv
    stats_path = None
    if "--stats-jsonl" in sys.argv:
        stats_path = sys.argv[sys.argv.index("--stats-jsonl") + 1]
    # LPR needs ~3s on the largest default instances; below 4s the shape
    # claims are not expected to hold.
    time_limit = 4.0 if fast else 6.0
    count = 2 if fast else 5

    print(
        "regenerating Table 1: %d instances/family, %.0fs budget/run ..."
        % (count, time_limit)
    )
    start = time.monotonic()
    result = generate_table1(time_limit=time_limit, count=count)
    print(format_table1(result))
    print()

    totals = result.solved_by_solver()
    claim1 = result.bsolo_ordering_holds()
    claim2 = totals["bsolo-lpr"] >= max(totals["pbs"], totals["galena"])
    acc_records = result.per_family["acc"]
    acc_counts = solved_counts(acc_records)
    claim3 = acc_counts["cplex"] <= min(
        acc_counts["pbs"], acc_counts["galena"], acc_counts["bsolo-lpr"]
    )
    claim4 = result.acc_rows_identical_for_bsolo()

    print("claim 1 (plain <= MIS, plain <= LGR <= LPR): %s" % claim1)
    print("claim 2 (LPR >= PBS-like, Galena-like):      %s" % claim2)
    print("claim 3 (MILP weakest on acc family):        %s" % claim3)
    print("claim 4 (bsolo variants identical on acc):   %s" % claim4)
    print("wall time: %.0fs" % (time.monotonic() - start))
    if stats_path:
        written = result.dump_stats_jsonl(stats_path)
        print("wrote %d per-run stat records to %s" % (written, stats_path))


if __name__ == "__main__":
    main()
