"""Two-level logic minimization as binate covering (MCNC-style workload).

Builds a covering instance (every minterm of the target function must be
covered by a selected implicant; some implicants exclude or require
others), compares all four bsolo lower-bounding configurations, and
prints the lower bound each method computes at the root — illustrating
the tightness ordering the paper discusses in Section 3.

Run:  python examples/logic_covering.py
"""

from repro.benchgen import generate_covering
from repro.core import BsoloSolver, SolverOptions
from repro.lagrangian import LagrangianBound, SubgradientOptions
from repro.lp import LPRelaxationBound
from repro.mis import MISBound


def main() -> None:
    instance = generate_covering(
        minterms=40, implicants=22, density=0.15, max_cost=30, seed=7
    )
    print("covering instance:", instance)

    # Root lower bounds (Section 3): MIS vs Lagrangian vs LP relaxation.
    mis = MISBound(instance).compute({})
    lgr = LagrangianBound(
        instance, SubgradientOptions(max_iterations=200)
    ).compute({})
    lpr = LPRelaxationBound(instance).compute({})
    print(
        "root lower bounds: MIS=%d  LGR=%d  LPR=%d"
        % (mis.value, lgr.value, lpr.value)
    )

    for method in ("plain", "mis", "lgr", "lpr"):
        solver = BsoloSolver(
            instance, SolverOptions(lower_bound=method, time_limit=30.0)
        )
        result = solver.solve()
        print(
            "bsolo-%-5s %s cost=%s  decisions=%d  bound_conflicts=%d  %.2fs"
            % (
                method,
                result.status,
                result.best_cost,
                result.stats.decisions,
                result.stats.bound_conflicts,
                result.stats.elapsed,
            )
        )


if __name__ == "__main__":
    main()
