"""Ablation study: which of bsolo's techniques carry the weight?

Runs the full feature grid (bound-conflict learning, Section 5 cuts,
LP-guided branching, preprocessing, covering reductions, and the
post-paper extensions) on a small covering suite, then sweeps instance
size to find where lower bounding overtakes plain search.

Run:  python examples/ablation_study.py
"""

from repro.benchgen import generate_covering
from repro.experiments import (
    crossover_size,
    format_ablations,
    format_sweep,
    run_ablations,
    scaling_sweep,
)


def main() -> None:
    instances = [
        generate_covering(
            minterms=40, implicants=22, density=0.15, max_cost=30, seed=seed
        )
        for seed in range(3)
    ]
    print("== feature ablations (bsolo-LPR on 3 covering instances) ==")
    records = run_ablations(instances, time_limit=10.0)
    print(format_ablations(records))

    print()
    print("== scaling sweep: PTL mapping, plain vs LPR ==")
    points = scaling_sweep(
        "ptl",
        sizes=[8, 12, 16, 18],
        solver_names=("bsolo-plain", "bsolo-lpr"),
        time_limit=6.0,
    )
    print(format_sweep(points))
    size = crossover_size(points, "bsolo-lpr", "bsolo-plain")
    if size is None:
        print("no crossover within the sweep")
    else:
        print("LPR overtakes plain search from size %d" % size)


if __name__ == "__main__":
    main()
