"""Global routing with channel capacities (the paper's "grout" workload).

Generates a congested 5x5 global-routing instance (each net picks one of
its candidate routes, channels have capacity 2), solves it with bsolo-LPR
and the plain variant, and prints the routes the optimizer picked —
showing how much search the lower bound saves.

Run:  python examples/routing_design.py
"""

from repro.benchgen import generate_routing
from repro.core import BsoloSolver, SolverOptions


def main() -> None:
    instance = generate_routing(
        rows=5, cols=5, nets=8, capacity=2, detours=3, seed=42
    )
    stats = instance.statistics()
    print(
        "routing instance: %d route variables, %d constraints "
        "(%d exactly-one pairs + capacities)"
        % (stats["variables"], stats["constraints"], stats["cardinality"])
    )

    results = {}
    for method in ("plain", "lpr"):
        solver = BsoloSolver(
            instance, SolverOptions(lower_bound=method, time_limit=30.0)
        )
        result = solver.solve()
        results[method] = result
        print(
            "bsolo-%-5s %s  wirelength=%s  decisions=%d  lb_calls=%d  %.2fs"
            % (
                method,
                result.status,
                result.best_cost,
                result.stats.decisions,
                result.stats.lower_bound_calls,
                result.stats.elapsed,
            )
        )

    best = results["lpr"]
    if best.best_assignment:
        routes = [
            name
            for var, name in sorted(instance.variable_names.items())
            if best.best_assignment.get(var) == 1
        ]
        print("selected routes:", " ".join(routes))


if __name__ == "__main__":
    main()
