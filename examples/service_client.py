"""Solve-as-a-service client tour: submit, stream, certify, cache.

Starts an in-process service (``BackgroundServer`` — the same code path
as ``python -m repro serve``, bound to an ephemeral port), then walks
the whole protocol from the client side:

1. submit a job and poll it to completion;
2. stream a second job's Server-Sent Events live;
3. request a proof-carrying solve and independently re-check the
   certificate with :class:`repro.certify.ProofChecker`;
4. resubmit the first instance under a different variable numbering and
   watch the canonicalized-instance cache answer it instantly.

Run:  python examples/service_client.py

Protocol reference: docs/SERVICE.md.
"""

import io

from repro import parse
from repro.certify import ProofChecker
from repro.service import BackgroundServer, ServiceClient, ServiceConfig

#: A small gate-sizing flavoured instance (same shape as quickstart.py).
INSTANCE = """\
min: +5 x1 +3 x2 +4 x3;
+1 x1 +1 x2 >= 1;
+1 x2 +1 x3 >= 1;
+1 ~x1 +1 ~x3 >= 1;
"""

#: The same problem with the variables renumbered (1->4, 2->9, 3->2) —
#: the service's canonical cache must recognize the equivalence.
RENAMED = """\
min: +5 x4 +3 x9 +4 x2;
+1 x4 +1 x9 >= 1;
+1 x9 +1 x2 >= 1;
+1 ~x4 +1 ~x2 >= 1;
"""


def main() -> None:
    config = ServiceConfig(port=0, workers=2, default_deadline=30.0)
    with BackgroundServer(config) as server:
        client = ServiceClient(port=server.port)

        # 1. submit and wait
        job = client.submit(INSTANCE, solver="bsolo-lpr")
        final = client.wait(job["id"], timeout=60.0)
        result = final["result"]
        print(
            "solve     -> %s, cost %s, model %s"
            % (result["status"], result["cost"], result["model"])
        )

        # 2. stream a fresh job's events (cache bypassed so it solves)
        job = client.submit(INSTANCE, solver="bsolo-lpr", cache=False)
        print("events    ->", end=" ")
        for event, _data in client.events(job["id"]):
            print(event, end=" ")
        print()

        # 3. a certified solve: the proof rides along in the result and
        # is re-checked here, independently of the solver
        job = client.submit(INSTANCE, solver="bsolo-lpr", proof=True)
        final = client.wait(job["id"], timeout=60.0)
        outcome = ProofChecker(parse(io.StringIO(INSTANCE))).check_text(
            final["result"]["proof"]
        )
        print(
            "certified -> checker says %s at cost %s"
            % (outcome.status, outcome.cost)
        )

        # 4. the renamed duplicate is answered from the cache, with the
        # model translated into *this* submission's variable numbering
        job = client.submit(RENAMED, solver="bsolo-lpr")
        result = job["result"]  # terminal immediately: no queueing
        print(
            "cache hit -> cached=%s, cost %s, model %s"
            % (result["cached"], result["cost"], result["model"])
        )
        print("cache     ->", client.health()["cache"])


if __name__ == "__main__":
    main()
